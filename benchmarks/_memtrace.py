"""Shared peak-allocation measurement for the benchmark suite.

One implementation serves ``bench_vectorized.py``, ``bench_batch.py``, and
``check_regression.py`` so the regression gate and the recorded
``BENCH_micro.json`` baselines can never drift onto different measurement
conventions.  Importable both under pytest (which puts this directory on
``sys.path`` for the bench modules) and from ``check_regression.py`` run as
a script from anywhere (it inserts this directory itself).
"""

from __future__ import annotations

import tracemalloc

__all__ = ["traced_peak_mb"]


def traced_peak_mb(fn) -> float:
    """Peak tracemalloc-tracked allocations (MB) while running ``fn``.

    NumPy registers its buffer allocations with tracemalloc, so this captures
    the engine's array footprint without OS-level RSS noise.  Do not combine
    with wall-clock timing: tracing adds per-allocation overhead.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6
