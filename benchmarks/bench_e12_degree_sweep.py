"""Benchmark E12 — degree sweep across the Algorithm 1 / Algorithm 2 regimes.

Regenerates the table comparing the two algorithms as the degree grows from a
small constant up to ~2·log₂ n.
"""

from __future__ import annotations

from repro.experiments.exp_degree_sweep import run_experiment


def test_e12_degree_sweep(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    assert all(row["success_rate"] == 1.0 for row in table.rows)
    degrees = {row["d"] for row in table.rows}
    assert len(degrees) >= 3
