"""Benchmark E5 — push vs pull vs push&pull on complete graphs (Karp et al.).

Regenerates the complete-graph comparison: the pull/push&pull endgame is far
shorter than push's, which is where the O(n log log n) economy comes from.
"""

from __future__ import annotations

from repro.experiments.exp_push_vs_pull import run_experiment


def test_e5_push_vs_pull(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    rows = table.to_records()
    sizes = sorted({row["n"] for row in rows})
    for n in sizes:
        push_tail = next(r["tail_rounds"] for r in rows if r["protocol"] == "push" and r["n"] == n)
        pull_tail = next(r["tail_rounds"] for r in rows if r["protocol"] == "pull" and r["n"] == n)
        assert pull_tail < push_tail
