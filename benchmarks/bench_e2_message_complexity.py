"""Benchmark E2 — message complexity (O(n log log n) vs Θ(n log n)).

Regenerates the "transmissions per node vs n" table together with the
scaling-law fits that distinguish the two growth laws.
"""

from __future__ import annotations

from repro.experiments.exp_message_complexity import run_experiment


def test_e2_message_complexity(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    assert all(row["tx_per_node"] > 0 for row in table.rows)
    # The per-protocol scaling-law notes must be present (they carry the
    # qualitative conclusion of the experiment).
    assert any("best-fitting growth law" in note for note in table.notes)
