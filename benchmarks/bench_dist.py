"""Benchmarks for the parallel sweep executor (repro.dist).

The smoke test runs an E1-scale round-complexity sweep serially and with two
worker processes, asserts the merged result is **bit-identical** to the
serial one (per-round history included — parallelism must never change a
number), and measures the speedup.  The speedup floor is only asserted when
the machine actually has more than one usable core: on a single-core
container the parallel run cannot beat serial, so there the test instead
bounds the orchestration overhead (wire serialisation, checkpoint-format
round trip, pool management) to at most 2x.

Recorded numbers live in ``BENCH_micro.json`` under ``parallel_sweep_e1``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.exp_round_complexity import scenario as e1_scenario
from repro.experiments.workloads import SweepSizes
from repro.spec import run_spec

#: E1-scale: 3 protocols x 3 sizes x 20 seeds = 9 grid points, 180 runs —
#: heavy enough that per-point compute dominates pool startup and the
#: workers' duplicate graph builds.
BENCH_SIZES = SweepSizes(sizes=[2048, 4096, 8192], repetitions=20)


def usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.mark.smoke
def test_parallel_e1_sweep_parity_and_speedup(capsys):
    spec = e1_scenario(sizes=BENCH_SIZES)

    start = time.perf_counter()
    serial = run_spec(spec)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_spec(spec, workers=2)
    parallel_seconds = time.perf_counter() - start

    # Bit-identical merging: the whole point of the label-keyed seeding.
    serial_results = serial.results()
    parallel_results = parallel.results()
    assert len(serial_results) == len(parallel_results) == 180
    for ours, theirs in zip(serial_results, parallel_results):
        assert ours.history == theirs.history
        assert ours == theirs

    speedup = serial_seconds / parallel_seconds
    cpus = usable_cpus()
    with capsys.disabled():
        print()
        print(
            json.dumps(
                {
                    "bench": "parallel_sweep_e1",
                    "grid_points": len(serial.points),
                    "runs": len(serial_results),
                    "cpus": cpus,
                    "serial_seconds": round(serial_seconds, 3),
                    "workers2_seconds": round(parallel_seconds, 3),
                    "speedup": round(speedup, 3),
                }
            )
        )

    if cpus >= 2:
        # Real parallel hardware: two workers must deliver a real speedup.
        assert speedup >= 1.2, (
            f"2-worker sweep only {speedup:.2f}x faster than serial "
            f"on {cpus} cpus"
        )
    else:
        # Single core: parallelism cannot win; bound the overhead instead.
        assert speedup >= 0.5, (
            f"2-worker sweep {1 / speedup:.2f}x slower than serial on one "
            "cpu — orchestration overhead regressed"
        )


@pytest.mark.smoke
def test_sharded_execution_overhead_is_bounded(capsys):
    """Running the grid as two merged shards stays close to one serial run."""
    from repro.dist import merge_runs

    spec = e1_scenario(sizes=SweepSizes(sizes=[1024, 2048], repetitions=5))

    start = time.perf_counter()
    serial = run_spec(spec)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = merge_runs([run_spec(spec, shard=(i, 2)) for i in range(2)])
    sharded_seconds = time.perf_counter() - start

    assert merged.results() == serial.results()
    with capsys.disabled():
        print()
        print(
            json.dumps(
                {
                    "bench": "sharded_e1_two_shards",
                    "serial_seconds": round(serial_seconds, 3),
                    "sharded_seconds": round(sharded_seconds, 3),
                }
            )
        )
    # Shards re-derive graphs their sibling already built, so allow slack;
    # anything beyond 3x means the shard path grew a real inefficiency.
    assert sharded_seconds <= max(3.0 * serial_seconds, serial_seconds + 1.0)
