#!/usr/bin/env python
"""Compare current hot-path timings *and memory* against BENCH_micro.json.

Re-measures the micro-benchmark medians (graph generation and one broadcast
per engine/protocol at n = 4096, plus the 20-seed batched push sweep) and the
tracemalloc peak of the headline allocations (million-node push broadcast,
batched sweep), and fails — exit code 1 — if any of them regressed beyond the
tolerance factor over its recorded baseline.  Intended for CI: it is a coarse
tripwire for "someone made the hot path 2× slower" or "someone doubled the
engine's footprint" (e.g. a state array silently going back to int64), not a
precision benchmark, so the default tolerance is generous to absorb runner
jitter.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--tolerance 2.0]

Baselines are re-recorded by editing BENCH_micro.json (see its "recorded"
field); do that deliberately whenever an engine's hot path changes shape.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _memtrace import traced_peak_mb  # noqa: E402

from repro.core.config import SimulationConfig  # noqa: E402
from repro.core.engine import run_broadcast, run_broadcast_batch  # noqa: E402
from repro.core.rng import RandomSource  # noqa: E402
from repro.failures.churn import UniformChurn  # noqa: E402
from repro.graphs.configuration_model import (  # noqa: E402
    pairing_multigraph,
    random_regular_graph,
)
from repro.protocols.algorithm1 import Algorithm1  # noqa: E402
from repro.protocols.algorithm2 import Algorithm2  # noqa: E402
from repro.protocols.push import PushProtocol  # noqa: E402
from repro.protocols.quasirandom import QuasirandomPushProtocol  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_micro.json"
N, D = 4096, 8
SWEEP_SEEDS = list(range(20))


def median_ms(fn, repetitions: int = 5) -> float:
    """Median wall-clock of ``fn`` in milliseconds (first call warms caches)."""
    fn()
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def measure_current() -> dict:
    """Re-run every baseline measurement and return name -> median ms."""
    vector = SimulationConfig(engine="vectorized", collect_round_history=False)
    graph = random_regular_graph(N, D, RandomSource(seed=2), strategy="repair")
    graph.csr()

    def broadcast(protocol_factory):
        return lambda: run_broadcast(graph, protocol_factory(), seed=3, config=vector)

    return {
        "generate_regular_graph_4096": median_ms(
            lambda: random_regular_graph(
                N, D, RandomSource(seed=1), strategy="repair"
            ),
            repetitions=3,
        ),
        "pairing_multigraph_1e6_d8": median_ms(
            lambda: pairing_multigraph(1_000_000, 8, RandomSource(seed=1)),
            repetitions=3,
        ),
        "push_vectorized_4096": median_ms(
            broadcast(lambda: PushProtocol(n_estimate=N))
        ),
        "algorithm1_vectorized_4096": median_ms(
            broadcast(lambda: Algorithm1(n_estimate=N))
        ),
        "algorithm2_vectorized_4096": median_ms(
            broadcast(lambda: Algorithm2(n_estimate=N))
        ),
        "quasirandom_vectorized_4096": median_ms(
            broadcast(lambda: QuasirandomPushProtocol(n_estimate=N))
        ),
        "batched_push_sweep_20x_4096": median_ms(
            lambda: run_broadcast_batch(
                graph, PushProtocol(n_estimate=N), SWEEP_SEEDS, config=vector
            ),
            repetitions=3,
        ),
        # Dynamic membership: tombstones + stub-stealing joins must stay a
        # small constant factor over the static algorithm1 broadcast.
        "algorithm1_churn_vectorized_4096": median_ms(
            lambda: run_broadcast(
                graph,
                Algorithm1(n_estimate=N),
                seed=3,
                config=vector,
                churn_model=UniformChurn(
                    leave_rate=0.01, join_rate=0.01, target_degree=D
                ),
            )
        ),
    }


def measure_memory() -> dict:
    """Tracemalloc peaks of the headline engine allocations, name -> MB.

    Kept separate from the timing pass: tracing every allocation skews
    wall-clock, so a measurement participates in exactly one of the two.
    """
    vector = SimulationConfig(engine="vectorized", collect_round_history=False)
    graph_4096 = random_regular_graph(N, D, RandomSource(seed=2), strategy="repair")
    graph_4096.csr()
    graph_4096.csr_stats()
    graph_million = pairing_multigraph(1_000_000, 8, RandomSource(seed=7))
    graph_million.csr()
    graph_million.csr_stats()

    def million_push():
        run_broadcast(
            graph_million, PushProtocol(n_estimate=1_000_000), seed=11, config=vector
        )

    def batched_sweep():
        run_broadcast_batch(
            graph_4096, PushProtocol(n_estimate=N), SWEEP_SEEDS, config=vector
        )

    graph_100k = pairing_multigraph(100_000, 8, RandomSource(seed=7))
    graph_100k.csr()
    graph_100k.csr_stats()

    def churn_100k():
        run_broadcast(
            graph_100k,
            Algorithm1(n_estimate=100_000),
            seed=11,
            config=vector,
            churn_model=UniformChurn(
                leave_rate=0.01, join_rate=0.01, target_degree=8
            ),
        )

    million_push()  # warm graph-side caches out of the traces
    batched_sweep()
    churn_100k()
    return {
        "push_broadcast_1e6_peak": traced_peak_mb(million_push),
        "batched_push_sweep_20x_4096_peak": traced_peak_mb(batched_sweep),
        "churn_broadcast_1e5_peak": traced_peak_mb(churn_100k),
    }


def baseline_map(recorded: dict) -> dict:
    """Flatten the BENCH_micro.json baselines into name -> ms."""
    baselines = recorded["baselines_ms"]
    return {
        "generate_regular_graph_4096": baselines["generate_regular_graph_4096"],
        "pairing_multigraph_1e6_d8": baselines["pairing_multigraph_1e6_d8"]["ms"],
        "push_vectorized_4096": baselines["push_broadcast_4096"]["vectorized"],
        "algorithm1_vectorized_4096": baselines["algorithm1_broadcast_4096"]["vectorized"],
        "algorithm2_vectorized_4096": baselines["algorithm2_broadcast_4096"]["vectorized"],
        "quasirandom_vectorized_4096": baselines["quasirandom_broadcast_4096"]["vectorized"],
        "batched_push_sweep_20x_4096": baselines["batched_push_sweep_20x_4096"]["batched"],
        "algorithm1_churn_vectorized_4096": baselines["algorithm1_churn_4096"]["vectorized"],
    }


def memory_baseline_map(recorded: dict) -> dict:
    """Flatten the BENCH_micro.json memory baselines into name -> MB."""
    memory = recorded["memory_mb"]
    return {
        "push_broadcast_1e6_peak": memory["push_broadcast_1e6_peak"]["mb"],
        "batched_push_sweep_20x_4096_peak": memory[
            "batched_push_sweep_20x_4096_peak"
        ]["mb"],
        "churn_broadcast_1e5_peak": memory["churn_broadcast_1e5_peak"]["mb"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when current/baseline exceeds this factor (default 2.0)",
    )
    args = parser.parse_args(argv)

    recorded = json.loads(BASELINE_PATH.read_text())
    baselines = baseline_map(recorded)
    current = measure_current()
    memory_baselines = memory_baseline_map(recorded)
    memory_current = measure_memory()

    width = max(
        len(name) for name in list(current) + list(memory_current)
    )
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  ratio")
    for name, now in current.items():
        base = baselines[name]
        ratio = now / base
        marker = ""
        if ratio > args.tolerance:
            marker = "  << REGRESSION"
            regressions.append((name, base, now, ratio))
        print(f"{name:<{width}}  {base:>8.1f}ms  {now:>8.1f}ms  {ratio:5.2f}x{marker}")
    for name, now in memory_current.items():
        base = memory_baselines[name]
        ratio = now / base
        marker = ""
        if ratio > args.tolerance:
            marker = "  << REGRESSION"
            regressions.append((name, base, now, ratio))
        print(f"{name:<{width}}  {base:>8.1f}MB  {now:>8.1f}MB  {ratio:5.2f}x{marker}")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.tolerance:.1f}x the recorded baseline "
            f"(recorded {recorded['recorded']}).",
            file=sys.stderr,
        )
        return 1
    print(f"\nAll benchmarks within {args.tolerance:.1f}x of the recorded baselines.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
