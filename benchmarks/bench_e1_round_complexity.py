"""Benchmark E1 — round complexity (paper Theorems 2 and 3).

Regenerates the "rounds vs network size" table: Algorithm 1 and the classical
baselines all finish in O(log n) rounds, with Algorithm 1 at or below the
push&pull baseline and well below push.
"""

from __future__ import annotations

from repro.experiments.exp_round_complexity import run_experiment


def test_e1_round_complexity(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    # Sanity of the regenerated table: every configuration completed and the
    # normalised round count stays bounded (the O(log n) claim).
    assert all(row["success_rate"] == 1.0 for row in table.rows)
    assert all(row["rounds_over_log2n"] < 5.0 for row in table.rows)
