"""Benchmark E4 — Algorithm 1 phase dynamics and the α ablation.

Regenerates the per-phase profile (growth in Phase 1, decay in Phase 2, the
single pull round of Phase 3) and the α sweep.
"""

from __future__ import annotations

from repro.experiments.exp_phase_dynamics import run_experiment


def test_e4_phase_dynamics(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    profile = {row["phase"]: row for row in table.rows if row["block"] == "profile"}
    # Phase 1: exponential growth at O(n) transmissions.
    assert profile["phase1"]["growth_factor"] > 1.2
    assert profile["phase1"]["transmissions"] <= 4 * profile["phase1"]["informed_end"] * 2
    # Phase 3 is one pull round.
    assert profile["phase3"]["rounds"] == 1
    # All alpha settings in the ablation complete.
    ablation = [row for row in table.rows if row["block"] == "alpha-ablation"]
    assert all(row["success_rate"] == 1.0 for row in ablation)
