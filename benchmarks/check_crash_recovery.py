#!/usr/bin/env python
"""CI tripwire: a ``kill -9``'d streaming sweep must resume bit-identically.

Two checks, both against the bundled E1 scenario:

1. **Kill -9 survival** — a subprocess runs ``python -m repro run-spec
   --stream-dir ... --fault-plan <kill-9 plan>`` and is SIGKILL'd by the
   ``kill-after-records`` rule the instant the second record reaches the
   sink.  The parent verifies the process actually died by signal, then
   resumes the same stream directory and requires the merged table to be
   identical to a serial run: same rows, columns, notes, and title.

2. **O(segments) streamed merge** — a stream directory is filled with a
   fixed number of interleaved sorted runs (segments) and consumed through
   :func:`repro.dist.stream_payloads` while tracing peak allocations.
   Growing the *point count* 10x while holding the *segment count* fixed
   must not grow the merge's peak memory by more than ``--max-growth``
   (default 3x): the merge holds one record per segment, never the grid.
   The measured peaks are the ``streamed_merge_*`` baselines recorded in
   ``BENCH_micro.json``.

Usage::

    PYTHONPATH=src python benchmarks/check_crash_recovery.py \
        [--spec examples/specs/e1_round_complexity.json] \
        [--points 300] [--scale 10] [--segments 8] [--max-growth 3.0]
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _memtrace import traced_peak_mb  # noqa: E402

from repro.dist import StreamingResultSink, stream_payloads  # noqa: E402
from repro.faultinject import bundled_stream_plans, save_plan  # noqa: E402
from repro.spec import load_spec, run_spec  # noqa: E402

DEFAULT_SPEC = REPO_ROOT / "examples" / "specs" / "e1_round_complexity.json"


def check_kill9(spec_path: str, spec) -> int:
    """SIGKILL a streaming CLI sweep mid-flight; resume must match serial."""
    point_count = spec.sweep.size if spec.sweep else 1
    serial_table = run_spec(spec).to_table()
    with tempfile.TemporaryDirectory() as tmp:
        stream_dir = Path(tmp) / "stream"
        plan_path = save_plan(
            bundled_stream_plans(point_count, include_kill=True)["kill-9"],
            Path(tmp) / "kill9.json",
        )
        start = time.perf_counter()
        victim = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "run-spec",
                spec_path,
                "--stream-dir",
                str(stream_dir),
                "--fault-plan",
                str(plan_path),
            ],
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=300,
        )
        if victim.returncode != -signal.SIGKILL:
            print(
                f"KILL9 FAILURE: victim exited {victim.returncode}, expected "
                f"-{signal.SIGKILL} (SIGKILL)\n{victim.stderr}",
                file=sys.stderr,
            )
            return 1
        survived = [r["index"] for r in stream_payloads(stream_dir, spec)]
        resumed = run_spec(spec, stream_dir=stream_dir, resume=True)
        elapsed = time.perf_counter() - start
        resumed_table = resumed.to_table()
    mismatched = [
        attribute
        for attribute in ("title", "columns", "rows", "notes")
        if getattr(serial_table, attribute) != getattr(resumed_table, attribute)
    ]
    if not survived:
        mismatched.append("no durable records survived the kill")
    if mismatched:
        print(
            "KILL9 FAILURE: resumed table differs from serial in "
            f"{', '.join(mismatched)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"kill-9 survival {elapsed:.2f}s: SIGKILL after record "
        f"{len(survived)}, resume recovered {resumed.provenance['points_resumed']} "
        "point(s) from disk and matched the serial table bit-identically"
    )
    return 0


def _build_stream(directory: Path, spec, points: int, segments: int) -> None:
    """Fill ``directory`` with ``segments`` interleaved sorted runs.

    Appending run 2's first index after run 1's last (a descending jump)
    rolls the sink to a fresh segment, so the directory ends up with
    exactly ``segments`` sorted segment files — the on-disk shape of a
    parallel sweep whose workers completed points out of order.
    """
    sink = StreamingResultSink(directory, spec, durable=False)
    for run in range(segments):
        for index in range(run, points, segments):
            sink.append(
                {
                    "index": index,
                    "label": f"point-{index}",
                    "results": [
                        {"seed": s, "rounds": 10 + (index + s) % 7, "informed": 4096}
                        for s in range(10)
                    ],
                }
            )
    sink.close()


def check_merge_memory(
    spec, points: int, scale: int, segments: int, max_growth: float
) -> int:
    """Peak merge memory must stay ~flat as points grow ``scale``x."""
    peaks = {}
    for label, count in (("small", points), ("large", points * scale)):
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp)
            _build_stream(directory, spec, count, segments)
            seen = {"records": 0}

            def consume():
                previous = -1
                for payload in stream_payloads(directory, spec):
                    index = int(payload["index"])
                    if index <= previous:
                        raise AssertionError("merge emitted indices out of order")
                    previous = index
                    seen["records"] += 1

            peaks[label] = traced_peak_mb(consume)
            if seen["records"] != count:
                print(
                    f"MERGE FAILURE: streamed {seen['records']} of {count} "
                    "records",
                    file=sys.stderr,
                )
                return 1
    growth = peaks["large"] / peaks["small"]
    verdict = "OK" if growth <= max_growth else "FAILURE"
    print(
        f"streamed merge memory: {points} points -> {peaks['small']:.2f} MB "
        f"peak, {points * scale} points -> {peaks['large']:.2f} MB peak "
        f"({growth:.2f}x growth for {scale}x data across {segments} "
        f"segments; limit {max_growth:.1f}x) {verdict}"
    )
    if growth > max_growth:
        print(
            f"MERGE MEMORY FAILURE: peak grew {growth:.2f}x for {scale}x "
            "data — the merge is no longer O(segments)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--spec", default=str(DEFAULT_SPEC), help="scenario spec file to run"
    )
    parser.add_argument(
        "--points", type=int, default=300, help="base synthetic point count"
    )
    parser.add_argument(
        "--scale", type=int, default=10, help="data growth factor (default 10x)"
    )
    parser.add_argument(
        "--segments", type=int, default=8, help="sorted runs per stream dir"
    )
    parser.add_argument(
        "--max-growth",
        type=float,
        default=3.0,
        help="max allowed peak-memory growth for --scale x data (default 3.0)",
    )
    args = parser.parse_args(argv)

    spec = load_spec(args.spec)
    print(f"spec: {spec.name}")
    exit_code = check_kill9(args.spec, spec)
    exit_code = (
        check_merge_memory(
            spec, args.points, args.scale, args.segments, args.max_growth
        )
        or exit_code
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
