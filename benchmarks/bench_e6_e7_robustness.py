"""Benchmark E6/E7 — robustness to message loss and size-estimate error.

Regenerates the loss-probability sweep and the size-estimate sweep for
Algorithm 1 (with push as a comparison baseline for the loss block).
"""

from __future__ import annotations

from repro.experiments.exp_robustness import run_experiment


def test_e6_e7_robustness(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    loss_rows = [row for row in table.rows if row["block"] == "message-loss"]
    estimate_rows = [row for row in table.rows if row["block"] == "size-estimate"]
    # Limited loss and constant-factor estimate errors never break completion.
    assert all(row["success_rate"] == 1.0 for row in loss_rows)
    assert all(row["success_rate"] == 1.0 for row in estimate_rows)
