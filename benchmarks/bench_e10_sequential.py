"""Benchmark E10 — the sequentialised memory variant (footnote 2).

Regenerates the comparison between four simultaneous distinct calls and the
sequential one-call-with-memory model: ~4x the rounds, comparable cost.
"""

from __future__ import annotations

from repro.experiments.exp_sequential import run_experiment


def test_e10_sequential_variant(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    rows = table.to_records()
    sizes = sorted({row["n"] for row in rows})
    for n in sizes:
        simultaneous = next(
            r for r in rows if r["protocol"] == "algorithm1" and r["n"] == n
        )
        sequential = next(
            r for r in rows if r["protocol"] == "algorithm1-sequential" and r["n"] == n
        )
        assert sequential["success_rate"] == 1.0
        assert sequential["rounds_mean"] > 2 * simultaneous["rounds_mean"]
