"""Benchmark E8 — broadcast under membership churn.

Regenerates the churn-rate sweep: with a few percent of the network replaced
per round, the surviving peers still all receive the message.
"""

from __future__ import annotations

from repro.experiments.exp_churn import run_experiment


def test_e8_churn(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    algorithm_rows = [row for row in table.rows if row["protocol"] == "algorithm1"]
    assert all(row["informed_fraction"] > 0.95 for row in algorithm_rows)
