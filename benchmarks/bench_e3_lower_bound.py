"""Benchmark E3 — the Ω(n·log n / log d) lower bound for the one-call model.

Regenerates the degree sweep and size sweep comparing the best one-call
protocol against the four-choice Algorithm 1 and against the bound's value.
"""

from __future__ import annotations

from repro.experiments.exp_lower_bound import run_experiment


def test_e3_lower_bound(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    one_call = [row for row in table.rows if row["protocol"] == "push-pull-1"]
    # The one-call measurements always dominate the (unit-constant) bound
    # shape up to a modest factor.
    assert all(row["ratio_to_bound"] > 0.5 for row in one_call)
    # The bound column decreases as the degree increases (the 1/log d shape).
    degree_rows = [row for row in one_call if row["sweep"] == "degree"]
    bounds = [row["bound_per_node"] for row in degree_rows]
    assert bounds == sorted(bounds, reverse=True)
