"""Benchmarks of the vectorized engine's dynamic-membership (churn) mode.

Two tiers, mirroring ``bench_vectorized.py``:

* ``-m smoke`` — the churn regime's headline speedup: one Algorithm 1
  broadcast under per-round uniform churn at ``n = 4096`` must run ≥ 20×
  faster on the vectorized engine (tombstoned CSR rows, batched stub-stealing
  joins) than on the scalar engine (real graph surgery per event).
* ``-m perf`` — the regime the churn mode exists for: an E8-style sweep
  (four churn rates × two protocols × three seeds) at ``n = 10⁵``, required
  to finish inside the repo's 30 s budget, plus a tracemalloc ceiling on a
  single ``n = 10⁵`` churn broadcast.

Run with ``pytest benchmarks/bench_churn.py``; tier-1 (`pytest` from the
repo root) does not collect this file.
"""

from __future__ import annotations

import time

import pytest

from _memtrace import traced_peak_mb
from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.rng import RandomSource
from repro.experiments.runner import repeat_broadcast
from repro.failures.churn import UniformChurn
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push_pull import PushPullProtocol

CHURN_SPEEDUP_FLOOR = 20.0
SWEEP_BUDGET_SECONDS = 30.0
#: Traced-allocation ceiling for one n=10⁵ churn broadcast.  The membership
#: layer (alive mask, id remap, compaction scratch) must stay a small
#: constant factor over the static engine's footprint at the same n.
CHURN_1E5_PEAK_BUDGET_MB = 60.0

N_SMOKE, N_PERF, D = 4096, 100_000, 8
E8_RATES = [(0.0, 0.0), (0.005, 0.005), (0.01, 0.01), (0.02, 0.02)]


def _churn(leave=0.01, join=0.01):
    return UniformChurn(leave_rate=leave, join_rate=join, target_degree=D)


def _best_of(runs, fn):
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.smoke
def test_churn_4096_speedup():
    graph = random_regular_graph(N_SMOKE, D, RandomSource(seed=2), strategy="repair")
    graph.csr()

    def run(engine, graph_for_run):
        return run_broadcast(
            graph_for_run,
            Algorithm1(n_estimate=N_SMOKE),
            seed=3,
            config=SimulationConfig(engine=engine, collect_round_history=False),
            churn_model=_churn(),
        )

    # Scalar churn mutates the graph, so each timing run gets a fresh copy;
    # the copy happens outside the timed window.
    scalar_time = float("inf")
    for _ in range(3):
        fresh = graph.copy()
        start = time.perf_counter()
        scalar_result = run("scalar", fresh)
        scalar_time = min(scalar_time, time.perf_counter() - start)
    vector_time, vector_result = _best_of(5, lambda: run("vectorized", graph))

    assert scalar_result.success and vector_result.success
    assert vector_result.metadata["engine"] == "vectorized"
    speedup = scalar_time / vector_time
    print(
        f"\nalgorithm1+churn n={N_SMOKE}: scalar {scalar_time * 1e3:.1f} ms, "
        f"vectorized {vector_time * 1e3:.2f} ms, speedup {speedup:.0f}x"
    )
    assert speedup >= CHURN_SPEEDUP_FLOOR, (
        f"churn speedup {speedup:.1f}x under the {CHURN_SPEEDUP_FLOOR}x floor"
    )


@pytest.mark.perf
def test_e8_churn_sweep_100k():
    """The E8 grid at n = 10⁵ — four churn rates × two protocols × 3 seeds."""
    graph = pairing_multigraph(N_PERF, D, RandomSource(seed=7))
    graph.csr()
    protocols = {
        "algorithm1": lambda n_est: Algorithm1(n_estimate=n_est),
        "push-pull": lambda n_est: PushPullProtocol(n_estimate=n_est),
    }

    start = time.perf_counter()
    fractions = {}
    for leave, join in E8_RATES:
        for name, factory in protocols.items():
            results = repeat_broadcast(
                graph=graph,
                protocol_factory=factory,
                n_estimate=N_PERF,
                seeds=[11, 12, 13],
                config=SimulationConfig(collect_round_history=False),
                churn_factory=(
                    (lambda lr=leave, jr=join: _churn(lr, jr))
                    if (leave or join)
                    else None
                ),
            )
            assert all(r.metadata["engine"] == "vectorized" for r in results)
            fractions[(name, leave)] = sum(
                r.final_informed / r.metadata.get("final_node_count", r.n)
                for r in results
            ) / len(results)
    elapsed = time.perf_counter() - start

    grid = len(E8_RATES) * len(protocols) * 3
    print(
        f"\nE8 sweep n={N_PERF}: {grid} runs in {elapsed:.1f}s "
        f"({elapsed / grid * 1e3:.0f} ms/run)"
    )
    assert elapsed < SWEEP_BUDGET_SECONDS, (
        f"churn sweep took {elapsed:.1f}s, budget {SWEEP_BUDGET_SECONDS}s"
    )
    # The paper's robustness claim at scale.  Algorithm 1 transmits for a
    # bounded schedule, so peers that join after dissemination winds down
    # stay uninformed until the next update (E8's table note); at n = 10⁵ a
    # 1% join rate adds 1000 such peers per trailing round, which caps the
    # surviving-informed fraction well below 1 even though every peer
    # present during the broadcast is reached.
    for (name, leave), fraction in fractions.items():
        floor = 0.999 if leave == 0.0 else 0.75
        assert fraction > floor, f"{name} at leave_rate={leave}: {fraction:.3f}"


@pytest.mark.perf
def test_churn_broadcast_100k_peak_memory():
    graph = pairing_multigraph(N_PERF, D, RandomSource(seed=7))
    graph.csr()
    graph.csr_stats()

    def churn_run():
        run_broadcast(
            graph,
            Algorithm1(n_estimate=N_PERF),
            seed=11,
            config=SimulationConfig(collect_round_history=False),
            churn_model=_churn(),
        )

    churn_run()  # warm graph-side caches out of the trace
    peak = traced_peak_mb(churn_run)
    print(f"\nchurn broadcast n={N_PERF} peak: {peak:.1f} MB")
    assert peak < CHURN_1E5_PEAK_BUDGET_MB, (
        f"peak {peak:.1f} MB over the {CHURN_1E5_PEAK_BUDGET_MB} MB budget"
    )
