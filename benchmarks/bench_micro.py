"""Micro-benchmarks of the substrates (not tied to a paper table).

These measure the two hot paths of the library — configuration-model graph
generation and a full Algorithm 1 broadcast — so performance regressions in
the simulator itself are visible separately from the experiment tables.
"""

from __future__ import annotations

from repro.core.engine import run_broadcast
from repro.core.rng import RandomSource
from repro.graphs.configuration_model import random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push import PushProtocol


def test_generate_regular_graph_4096(benchmark):
    result = benchmark(
        lambda: random_regular_graph(4096, 8, RandomSource(seed=1), strategy="repair")
    )
    assert result.node_count == 4096


def test_algorithm1_broadcast_4096(benchmark):
    graph = random_regular_graph(4096, 8, RandomSource(seed=2), strategy="repair")
    result = benchmark(lambda: run_broadcast(graph, Algorithm1(n_estimate=4096), seed=3))
    assert result.success


def test_push_broadcast_4096(benchmark):
    graph = random_regular_graph(4096, 8, RandomSource(seed=2), strategy="repair")
    result = benchmark(lambda: run_broadcast(graph, PushProtocol(n_estimate=4096), seed=3))
    assert result.success
