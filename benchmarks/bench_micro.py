"""Micro-benchmarks of the substrates (not tied to a paper table).

These measure the hot paths of the library — configuration-model graph
generation and full broadcasts on both round engines — so performance
regressions in the simulator itself are visible separately from the
experiment tables.  The broadcast benchmarks are parametrized over the
``engine`` knob; comparing the ``scalar`` and ``vectorized`` rows of one run
gives the current speedup (see ``BENCH_micro.json`` for recorded baselines).
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.rng import RandomSource
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push import PushProtocol

ENGINES = ["scalar", "vectorized"]


def test_generate_regular_graph_4096(benchmark):
    result = benchmark(
        lambda: random_regular_graph(4096, 8, RandomSource(seed=1), strategy="repair")
    )
    assert result.node_count == 4096


@pytest.mark.perf
def test_pairing_multigraph_million_nodes(benchmark):
    """The raw pairing draw at n = 10^6 (direct permutation-inverse CSR build).

    This is the construction path of the million-node broadcast benches; the
    build avoids the O(m log m) stable argsort over the 2m stubs entirely
    (see ``pairing_multigraph``) and is asserted bit-identical to the
    edge-array build in tests/test_configuration_model.py.
    """
    result = benchmark(lambda: pairing_multigraph(1_000_000, 8, RandomSource(seed=1)))
    assert result.node_count == 1_000_000
    assert result.edge_count == 4_000_000


@pytest.mark.parametrize("engine", ENGINES)
def test_algorithm1_broadcast_4096(benchmark, engine):
    graph = random_regular_graph(4096, 8, RandomSource(seed=2), strategy="repair")
    config = SimulationConfig(engine=engine)
    result = benchmark(
        lambda: run_broadcast(graph, Algorithm1(n_estimate=4096), seed=3, config=config)
    )
    assert result.success
    assert result.metadata["engine"] == engine


@pytest.mark.parametrize("engine", ENGINES)
def test_push_broadcast_4096(benchmark, engine):
    graph = random_regular_graph(4096, 8, RandomSource(seed=2), strategy="repair")
    config = SimulationConfig(engine=engine)
    result = benchmark(
        lambda: run_broadcast(graph, PushProtocol(n_estimate=4096), seed=3, config=config)
    )
    assert result.success
    assert result.metadata["engine"] == engine
