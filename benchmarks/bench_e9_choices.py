"""Benchmark E9 — how many distinct choices per round are needed.

Regenerates the fanout ablation: 4 (and already 3) choices drive the Phase-1
epidemic supercritically, while a single choice stalls.
"""

from __future__ import annotations

from repro.experiments.exp_choices_ablation import run_experiment


def test_e9_choices_ablation(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    by_fanout = {row["fanout"]: row for row in table.rows}
    assert by_fanout[4]["success_rate"] == 1.0
    assert by_fanout[3]["success_rate"] == 1.0
    # One choice leaves phase 1 essentially stalled relative to four choices.
    assert by_fanout[1]["informed_after_phase1"] < 0.1 * by_fanout[4]["informed_after_phase1"]
