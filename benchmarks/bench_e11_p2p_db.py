"""Benchmark E11 — replicated-database maintenance over a P2P overlay.

Regenerates the gossip-rule comparison for concurrent updates, with and
without churn (the paper's motivating application).
"""

from __future__ import annotations

from repro.experiments.exp_p2p_db import run_experiment


def test_e11_replicated_database(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    static_rows = [row for row in table.rows if row["leave_rate"] == 0.0]
    assert all(row["replication_rate"] == 1.0 for row in static_rows)
    push = next(r for r in static_rows if r["rule"] == "push")
    algorithm1 = next(r for r in static_rows if r["rule"] == "algorithm1")
    # The paper's rule converges in fewer rounds than push-only mongering.
    assert algorithm1["convergence_rounds"] < push["convergence_rounds"]
