"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one of the paper-reproduction experiments
(E1–E12; see DESIGN.md §4 and EXPERIMENTS.md).  The pattern is always the
same: run the experiment once under ``benchmark.pedantic`` (the interesting
output is the table, not a timing distribution) and print the resulting table
so it appears in the pytest output next to the timing.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks from a source checkout without installation.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(SRC))


@pytest.fixture
def run_table_benchmark(benchmark, capsys):
    """Run an experiment exactly once under the benchmark fixture and print it."""

    def runner(experiment_callable, *args, **kwargs):
        table = benchmark.pedantic(
            experiment_callable, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(table.render())
        return table

    return runner
