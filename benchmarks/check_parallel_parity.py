#!/usr/bin/env python
"""CI tripwire: a parallel run of a bundled spec must equal the serial run.

Executes one bundled example scenario twice — serially and with worker
processes — and fails (exit code 1) unless the merged table is identical to
the serial one: same rows, columns, notes, title, and recorded scenario
spec.  Only ``metadata["distributed"]`` (worker count, wall-clock, shard
layout) may differ, because that block records *how* the table was produced,
never *what* it contains.

``--chaos`` additionally replays every bundled fault plan
(:func:`repro.faultinject.bundled_plans`) against the parallel run: worker
kills, double transient errors, timeout stalls, and torn checkpoint writes
must all be survived **bit-identically** to the serial table, and the
poison-point plan must quarantine exactly its designed point while every
other row still matches the serial run.  The chaos phase finishes with a
churn-under-worker-faults plan: the bundled dynamic-membership sweep
(``examples/specs/e8_churn.json``) run under the worker-kill plan must also
recover bit-identically — vectorized churn state (tombstones, joins, node
compaction) must survive a mid-sweep pool restart.

Usage::

    PYTHONPATH=src python benchmarks/check_parallel_parity.py \
        [--spec examples/specs/e1_round_complexity.json] [--workers 2] [--chaos]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.spec import load_spec, run_spec  # noqa: E402

DEFAULT_SPEC = REPO_ROOT / "examples" / "specs" / "e1_round_complexity.json"
CHURN_SPEC = REPO_ROOT / "examples" / "specs" / "e8_churn.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--spec", default=str(DEFAULT_SPEC), help="scenario spec file to run"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker process count (default 2)"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "also replay every bundled fault plan against the parallel run "
            "and require bit-identical recovery (poison plan: exact quarantine)"
        ),
    )
    args = parser.parse_args(argv)

    spec = load_spec(args.spec)
    point_count = spec.sweep.size if spec.sweep else 1
    print(f"spec: {spec.name} ({point_count} points)")

    start = time.perf_counter()
    serial_table = run_spec(spec).to_table()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_table = run_spec(spec, workers=args.workers).to_table()
    parallel_seconds = time.perf_counter() - start

    failures = []
    for attribute in ("title", "columns", "rows", "notes"):
        if getattr(serial_table, attribute) != getattr(parallel_table, attribute):
            failures.append(attribute)
    if serial_table.metadata.get("spec") != parallel_table.metadata.get("spec"):
        failures.append("metadata.spec")
    if "distributed" not in parallel_table.metadata:
        failures.append("metadata.distributed (missing provenance)")

    print(
        f"serial {serial_seconds:.2f}s vs {args.workers} workers "
        f"{parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x)"
    )
    if failures:
        print(
            f"PARITY FAILURE: parallel table differs in {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(
        "parallel table identical to serial "
        f"({len(serial_table.rows)} rows, "
        f"{parallel_table.metadata['distributed']['points_total']} points)"
    )
    if args.chaos:
        return run_chaos(spec, point_count, args.workers, serial_table)
    return 0


def run_chaos(spec, point_count, workers, serial_table) -> int:
    """Replay every bundled fault plan; require bit-identical recovery."""
    import tempfile

    from repro.dist import RetryPolicy
    from repro.faultinject import bundled_plans

    # The 2s point budget sits far above the real per-point runtime
    # (~20ms for the bundled E1 spec) and well below the injected 8s
    # stall, so stall detection fires only for the injected fault.
    retry = RetryPolicy(
        max_attempts=3, backoff_seconds=0.01, backoff_max_seconds=0.1,
        timeout_seconds=2.0,
    )
    exit_code = 0
    for name, plan in bundled_plans(point_count, stall_duration=8.0).items():
        start = time.perf_counter()
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            chaos_table = run_spec(
                spec,
                workers=workers,
                retry=retry,
                fault_plan=plan,
                checkpoint_dir=checkpoint_dir,
            ).to_table()
        elapsed = time.perf_counter() - start
        provenance = chaos_table.metadata["distributed"]
        recovery = (
            f"retries={provenance['retries']} "
            f"pool_restarts={provenance['pool_restarts']}"
        )
        if name == "poison-point":
            # The one designed-to-fail plan: exactly the poisoned point is
            # quarantined, every surviving row still matches the serial run.
            poisoned = point_count - 1
            quarantined = [f["index"] for f in provenance["failures"]]
            surviving = [
                row for i, row in enumerate(serial_table.rows) if i != poisoned
            ]
            if quarantined != [poisoned] or chaos_table.rows != surviving:
                print(
                    f"CHAOS FAILURE [{name}]: expected exactly point "
                    f"{poisoned} quarantined with all other rows serial-"
                    f"identical; got quarantined={quarantined}",
                    file=sys.stderr,
                )
                exit_code = 1
                continue
            print(
                f"chaos [{name}] {elapsed:.2f}s: quarantined point "
                f"{poisoned} only, {len(surviving)} surviving rows "
                f"identical ({recovery})"
            )
            continue
        mismatched = [
            attribute
            for attribute in ("title", "columns", "rows", "notes")
            if getattr(serial_table, attribute)
            != getattr(chaos_table, attribute)
        ]
        if provenance["failures"]:
            mismatched.append(f"unexpected quarantine {provenance['failures']}")
        if mismatched:
            print(
                f"CHAOS FAILURE [{name}]: differs from serial in "
                f"{', '.join(mismatched)}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        print(
            f"chaos [{name}] {elapsed:.2f}s: survived bit-identically "
            f"({recovery})"
        )
    return (
        exit_code
        or run_stream_chaos(spec, point_count, workers, serial_table)
        or run_churn_chaos(workers)
    )


def run_churn_chaos(workers) -> int:
    """Worker-kill recovery over the bundled churn sweep, bit-identically.

    Dynamic membership stresses exactly the state a restarted worker must
    rebuild from nothing but the spec and seeds: tombstoned CSR rows,
    stub-stealing joins, and node-axis compactions.  The recovered table must
    equal the clean serial run bit for bit.
    """
    import tempfile

    from repro.dist import RetryPolicy
    from repro.faultinject import bundled_plans

    spec = load_spec(CHURN_SPEC)
    point_count = spec.sweep.size if spec.sweep else 1
    serial_table = run_spec(spec).to_table()
    plan = bundled_plans(point_count, stall_duration=8.0)["worker-kill"]
    retry = RetryPolicy(
        max_attempts=3, backoff_seconds=0.01, backoff_max_seconds=0.1,
        timeout_seconds=30.0,
    )
    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        chaos_table = run_spec(
            spec,
            workers=workers,
            retry=retry,
            fault_plan=plan,
            checkpoint_dir=checkpoint_dir,
        ).to_table()
    elapsed = time.perf_counter() - start
    provenance = chaos_table.metadata["distributed"]
    mismatched = [
        attribute
        for attribute in ("title", "columns", "rows", "notes")
        if getattr(serial_table, attribute) != getattr(chaos_table, attribute)
    ]
    if provenance["failures"]:
        mismatched.append(f"unexpected quarantine {provenance['failures']}")
    if mismatched:
        print(
            f"CHURN CHAOS FAILURE [worker-kill]: differs from serial in "
            f"{', '.join(mismatched)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"churn chaos [worker-kill] {elapsed:.2f}s: {spec.name} survived "
        f"bit-identically ({len(chaos_table.rows)} rows, "
        f"retries={provenance['retries']} "
        f"pool_restarts={provenance['pool_restarts']})"
    )
    return 0


def run_stream_chaos(spec, point_count, workers, serial_table) -> int:
    """Replay every bundled disk-fault plan against the streaming sink.

    ``torn-write`` and ``enospc`` interrupt the sweep mid-flight; the resumed
    run against the same ``stream_dir`` must recover the durable prefix and
    finish bit-identically to the serial table.  ``fsync-error`` must be
    retried transparently within a single run.  (The lethal ``kill-9`` plan
    is exercised by ``check_crash_recovery.py`` in a subprocess.)
    """
    import tempfile

    from repro.dist import SinkFullError, SweepInterrupted
    from repro.faultinject import bundled_stream_plans

    exit_code = 0
    for name, plan in bundled_stream_plans(point_count).items():
        start = time.perf_counter()
        with tempfile.TemporaryDirectory() as stream_dir:
            recovery = "clean first pass"
            try:
                result = run_spec(
                    spec, workers=workers, fault_plan=plan, stream_dir=stream_dir
                )
            except (SinkFullError, SweepInterrupted) as fault:
                recovery = f"resumed after {type(fault).__name__}"
                result = run_spec(
                    spec, workers=workers, stream_dir=stream_dir, resume=True
                )
            chaos_table = result.to_table()
            stream_stats = result.provenance.get("stream") or {}
        elapsed = time.perf_counter() - start
        mismatched = [
            attribute
            for attribute in ("title", "columns", "rows", "notes")
            if getattr(serial_table, attribute) != getattr(chaos_table, attribute)
        ]
        if name in ("torn-write", "enospc") and recovery == "clean first pass":
            mismatched.append("fault never fired (expected an interrupted run)")
        if mismatched:
            print(
                f"STREAM CHAOS FAILURE [{name}]: differs from serial in "
                f"{', '.join(mismatched)}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        print(
            f"stream chaos [{name}] {elapsed:.2f}s: survived bit-identically "
            f"({recovery}, segments={stream_stats.get('segments')}, "
            f"quarantined={stream_stats.get('torn_quarantined')})"
        )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
