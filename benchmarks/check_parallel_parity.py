#!/usr/bin/env python
"""CI tripwire: a parallel run of a bundled spec must equal the serial run.

Executes one bundled example scenario twice — serially and with worker
processes — and fails (exit code 1) unless the merged table is identical to
the serial one: same rows, columns, notes, title, and recorded scenario
spec.  Only ``metadata["distributed"]`` (worker count, wall-clock, shard
layout) may differ, because that block records *how* the table was produced,
never *what* it contains.

Usage::

    PYTHONPATH=src python benchmarks/check_parallel_parity.py \
        [--spec examples/specs/e1_round_complexity.json] [--workers 2]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.spec import load_spec, run_spec  # noqa: E402

DEFAULT_SPEC = REPO_ROOT / "examples" / "specs" / "e1_round_complexity.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--spec", default=str(DEFAULT_SPEC), help="scenario spec file to run"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker process count (default 2)"
    )
    args = parser.parse_args(argv)

    spec = load_spec(args.spec)
    print(f"spec: {spec.name} ({spec.sweep.size if spec.sweep else 1} points)")

    start = time.perf_counter()
    serial_table = run_spec(spec).to_table()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_table = run_spec(spec, workers=args.workers).to_table()
    parallel_seconds = time.perf_counter() - start

    failures = []
    for attribute in ("title", "columns", "rows", "notes"):
        if getattr(serial_table, attribute) != getattr(parallel_table, attribute):
            failures.append(attribute)
    if serial_table.metadata.get("spec") != parallel_table.metadata.get("spec"):
        failures.append("metadata.spec")
    if "distributed" not in parallel_table.metadata:
        failures.append("metadata.distributed (missing provenance)")

    print(
        f"serial {serial_seconds:.2f}s vs {args.workers} workers "
        f"{parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x)"
    )
    if failures:
        print(
            f"PARITY FAILURE: parallel table differs in {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"parallel table identical to serial "
        f"({len(serial_table.rows)} rows, "
        f"{parallel_table.metadata['distributed']['points_total']} points)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
