"""Benchmarks of the batched vectorized engine (multi-seed sweeps).

What the batch dimension buys depends on the regime:

* versus the **scalar per-seed loop** — the fallback engine every sweep used
  before vectorization — a batched sweep is two orders of magnitude faster;
  the ``≥ 5×`` floor asserted here is deliberately conservative.
* versus the **vectorized per-seed loop** the win is the amortised per-run
  setup and per-round dispatch, so it is largest at small ``n`` (~2× at
  n=256) and tapers toward parity at n=4096, where a push sweep is
  compute-bound on ~40k channel operations per run that both sides must
  perform (each batch row is bit-identical to the corresponding single run,
  which pins the per-replication draw sequences).  The assert is therefore a
  regression guard (the batch must never be meaningfully slower), with the
  measured ratios printed and recorded in ``BENCH_micro.json``.

Run with ``pytest benchmarks/bench_batch.py -m smoke``; tier-1 does not
collect this file.
"""

from __future__ import annotations

import math
import time

import pytest

from _memtrace import traced_peak_mb
from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast, run_broadcast_batch
from repro.core.rng import RandomSource
from repro.experiments.runner import ExperimentRunner
from repro.graphs.configuration_model import random_regular_graph
from repro.graphs.families import gnp_graph
from repro.protocols.push import PushProtocol

SWEEP_SEEDS = list(range(20))
SCALAR_LOOP_SPEEDUP_FLOOR = 5.0
# Coarse tripwire, not a precision gate: the documented n=4096 ratio is
# ~1.0x, but shared CI runners jitter badly, so only a structural regression
# (batch clearly slower than the loop it replaces) should fail the build.
VEC_LOOP_RATIO_CEILING = 1.75
SMALL_N_SPEEDUP_FLOOR = 1.3


@pytest.fixture(scope="module")
def graph_4096():
    graph = random_regular_graph(4096, 8, RandomSource(seed=2), strategy="repair")
    graph.csr()
    return graph


def _best_of(repetitions, fn):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.smoke
def test_batched_push_sweep_4096(graph_4096):
    vector_config = SimulationConfig(engine="vectorized", collect_round_history=False)
    scalar_config = SimulationConfig(engine="scalar", collect_round_history=False)

    batch_time = _best_of(
        3,
        lambda: run_broadcast_batch(
            graph_4096, PushProtocol(n_estimate=4096), SWEEP_SEEDS, config=vector_config
        ),
    )
    loop_time = _best_of(
        3,
        lambda: [
            run_broadcast(
                graph_4096, PushProtocol(n_estimate=4096), seed=s, config=vector_config
            )
            for s in SWEEP_SEEDS
        ],
    )
    # The scalar loop runs at ~300 ms/run; sample a few seeds and scale (the
    # margin over the floor is ~30×, so the extrapolation noise is harmless).
    scalar_sample = SWEEP_SEEDS[:4]
    scalar_time = _best_of(
        1,
        lambda: [
            run_broadcast(
                graph_4096, PushProtocol(n_estimate=4096), seed=s, config=scalar_config
            )
            for s in scalar_sample
        ],
    ) * (len(SWEEP_SEEDS) / len(scalar_sample))

    print(
        f"\npush sweep 20x n=4096: scalar loop {scalar_time * 1e3:.0f} ms (extrapolated), "
        f"vectorized loop {loop_time * 1e3:.1f} ms, batch {batch_time * 1e3:.1f} ms "
        f"-> {scalar_time / batch_time:.0f}x vs scalar, "
        f"{loop_time / batch_time:.2f}x vs vectorized loop"
    )
    assert scalar_time / batch_time >= SCALAR_LOOP_SPEEDUP_FLOOR
    assert batch_time <= VEC_LOOP_RATIO_CEILING * loop_time


@pytest.mark.smoke
def test_batched_sweep_small_n_wins_on_dispatch():
    # At small n per-run setup and per-round dispatch dominate, which is
    # exactly what the batch amortises.
    graph = random_regular_graph(256, 8, RandomSource(seed=2), strategy="repair")
    graph.csr()
    config = SimulationConfig(engine="vectorized", collect_round_history=False)
    batch_time = _best_of(
        5,
        lambda: run_broadcast_batch(
            graph, PushProtocol(n_estimate=256), SWEEP_SEEDS, config=config
        ),
    )
    loop_time = _best_of(
        5,
        lambda: [
            run_broadcast(graph, PushProtocol(n_estimate=256), seed=s, config=config)
            for s in SWEEP_SEEDS
        ],
    )
    print(
        f"\npush sweep 20x n=256: vectorized loop {loop_time * 1e3:.1f} ms, "
        f"batch {batch_time * 1e3:.1f} ms ({loop_time / batch_time:.2f}x)"
    )
    assert loop_time / batch_time >= SMALL_N_SPEEDUP_FLOOR


@pytest.mark.perf
def test_long_tail_compaction_sweep():
    """The row-compaction stress case recorded in BENCH_micro.json.

    50 seeds of a push broadcast (extended horizon) over one gnp graph at the
    connectivity threshold: half the replications finish by round ~60 while
    stragglers chase pendant vertices for up to ~140 rounds, so the batch
    spends most of its rounds with a small live ensemble.  Asserted here:

    * compaction on and off are bit-identical (spot-checked on counters;
      the full per-round parity suite is tests/test_engine_compaction.py);
    * compaction is never meaningfully slower than carrying the dead rows;
    * the dense-era engine baseline (PR 4: ~9.8 s on the reference
      container, recorded in BENCH_micro.json) is beaten by >= 1.3x — the
      active-set kernels plus compaction are what removed the dead-row and
      full-scan work.  The wall-clock assert is against the compaction-off
      ratio only (cross-machine constants are unstable); the baseline ratio
      is recorded, not asserted.
    """
    n = 1 << 16
    graph = gnp_graph(n, math.log(n) / n, RandomSource(seed=5))
    graph.csr()
    graph.csr_stats()
    seeds = list(range(50))

    def sweep(compaction):
        config = SimulationConfig(
            engine="vectorized",
            collect_round_history=False,
            batch_row_compaction=compaction,
        )
        return run_broadcast_batch(
            graph,
            PushProtocol(n_estimate=n, horizon_override=250),
            seeds,
            config=config,
        )

    on_time = _best_of(2, lambda: sweep(True))
    off_time = _best_of(2, lambda: sweep(False))
    on_results = sweep(True)
    off_results = sweep(False)
    assert all(r.success for r in on_results)
    completions = sorted(r.rounds_to_completion for r in on_results)
    assert completions[-1] - completions[25] >= 20, "expected a long tail"
    assert [
        (r.rounds_to_completion, r.total_transmissions) for r in on_results
    ] == [(r.rounds_to_completion, r.total_transmissions) for r in off_results]

    peak_mb = traced_peak_mb(lambda: sweep(True))

    print(
        f"\nlong-tail 50x gnp n={n}: compaction on {on_time:.2f} s, "
        f"off {off_time:.2f} s ({off_time / on_time:.2f}x), "
        f"completions median {completions[25]} max {completions[-1]}, "
        f"peak {peak_mb:.0f} MB"
    )
    # Compaction must never cost wall-clock; its structural win over the
    # dense engine is recorded in BENCH_micro.json (pr4_engine_ms).
    assert on_time <= off_time * 1.25


@pytest.mark.smoke
def test_round_complexity_style_sweep_completes_in_seconds():
    # The representative E1 shape: 5 sizes x 20 seeds, graphs cached by the
    # runner, every configuration batched.  The scalar engine needed minutes
    # for this; the whole batched sweep must finish in single-digit seconds
    # (graph generation included).
    runner = ExperimentRunner(master_seed=7, repetitions=20)
    start = time.perf_counter()
    for n in (256, 512, 1024, 2048, 4096):
        results = runner.broadcast(
            n, 8, lambda m: PushProtocol(n_estimate=m), label="bench-e1"
        )
        assert len(results) == 20
        assert all(r.success for r in results)
        assert all(r.metadata.get("batch_size") == 20 for r in results)
    elapsed = time.perf_counter() - start
    print(f"\nE1-style batched sweep (5 sizes x 20 seeds): {elapsed:.2f} s")
    assert elapsed < 10.0
