"""Benchmark E13 — the product-with-K5 counterexample (paper Conclusions).

Regenerates the matched-size comparison between a plain random regular graph
and the Cartesian product of a random regular graph with K5.
"""

from __future__ import annotations

from repro.experiments.exp_counterexample import run_experiment


def test_e13_counterexample(run_table_benchmark):
    table = run_table_benchmark(run_experiment, quick=True)
    assert len(table.rows) == 4
    assert all(row["success_rate"] == 1.0 for row in table.rows)
    topologies = {row["topology"] for row in table.rows}
    assert topologies == {"random-regular", "product-K5"}
