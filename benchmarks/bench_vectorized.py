"""Micro-benchmarks of the vectorized round engine.

Two tiers:

* ``-m smoke`` — seconds-scale checks that the bulk engine actually delivers
  its headline speedup over the scalar engine at ``n = 4096`` (the ISSUE's
  acceptance bar is ≥ 10×; the measured margin is far larger, so a genuine
  regression trips the assertion long before it reaches 10×).
* ``-m perf`` — the million-node regime the vectorized engine exists for: a
  full push broadcast over a configuration-model multigraph with
  ``n = 10⁶``, required to finish in well under 30 s.

Run with ``pytest benchmarks/bench_vectorized.py`` (add ``-m smoke`` to skip
the million-node sweep); tier-1 (`pytest` from the repo root) does not collect
this file.
"""

from __future__ import annotations

import time

import pytest

from _memtrace import traced_peak_mb
from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.rng import RandomSource
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.algorithm2 import Algorithm2
from repro.protocols.push import PushProtocol
from repro.protocols.quasirandom import QuasirandomPushProtocol

SPEEDUP_FLOOR = 10.0
MILLION_NODE_BUDGET_SECONDS = 30.0
#: Traced-allocation ceiling for one million-node push broadcast.  The
#: active-set engine measures ~42 MB (was ~67 MB before the dtype audit and
#: scratch buffers — see BENCH_micro.json "memory_mb"); the budget leaves
#: headroom for allocator jitter while still catching a structural
#: regression (e.g. an accidental int64 state array) long before 2×.
MILLION_NODE_PEAK_BUDGET_MB = 55.0


@pytest.fixture(scope="module")
def graph_4096():
    return random_regular_graph(4096, 8, RandomSource(seed=2), strategy="repair")


def _best_of(runs, fn):
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_speedup(graph, protocol_factory, seed):
    scalar_config = SimulationConfig(engine="scalar", collect_round_history=False)
    vector_config = SimulationConfig(engine="vectorized", collect_round_history=False)
    scalar_time, scalar_result = _best_of(
        3, lambda: run_broadcast(graph, protocol_factory(), seed=seed, config=scalar_config)
    )
    vector_time, vector_result = _best_of(
        5, lambda: run_broadcast(graph, protocol_factory(), seed=seed, config=vector_config)
    )
    assert scalar_result.success and vector_result.success
    return scalar_time / vector_time, scalar_time, vector_time


@pytest.mark.smoke
def test_push_4096_speedup(graph_4096):
    speedup, scalar_time, vector_time = _measure_speedup(
        graph_4096, lambda: PushProtocol(n_estimate=4096), seed=3
    )
    print(
        f"\npush n=4096: scalar {scalar_time * 1e3:.1f} ms, "
        f"vectorized {vector_time * 1e3:.2f} ms, speedup {speedup:.0f}x"
    )
    assert speedup >= SPEEDUP_FLOOR


@pytest.mark.smoke
def test_algorithm1_4096_speedup(graph_4096):
    speedup, scalar_time, vector_time = _measure_speedup(
        graph_4096, lambda: Algorithm1(n_estimate=4096), seed=3
    )
    print(
        f"\nalgorithm1 n=4096: scalar {scalar_time * 1e3:.1f} ms, "
        f"vectorized {vector_time * 1e3:.2f} ms, speedup {speedup:.0f}x"
    )
    assert speedup >= SPEEDUP_FLOOR


@pytest.mark.perf
def test_push_broadcast_million_nodes():
    # The regime the vectorized engine exists for: one full push broadcast
    # over a 10⁶-node configuration-model multigraph (the multigraph is the
    # process the paper analyses directly; skipping the simple-graph repair
    # keeps setup time out of the measurement's way).
    graph = pairing_multigraph(10**6, 8, RandomSource(seed=7))
    config = SimulationConfig(engine="vectorized", collect_round_history=False)
    start = time.perf_counter()
    result = run_broadcast(graph, PushProtocol(n_estimate=10**6), seed=11, config=config)
    elapsed = time.perf_counter() - start
    print(
        f"\npush n=1e6: {elapsed:.2f} s, rounds={result.rounds_to_completion}, "
        f"transmissions={result.total_transmissions}"
    )
    assert result.success
    assert elapsed < MILLION_NODE_BUDGET_SECONDS


@pytest.mark.perf
def test_push_million_nodes_peak_memory():
    # The dtype/scratch audit's acceptance: one million-node push broadcast
    # must stay memory-lean (int32 CSR + int32 state + reused sampling
    # buffers).  Timing is asserted separately — tracing skews it.
    graph = pairing_multigraph(10**6, 8, RandomSource(seed=7))
    graph.csr()
    graph.csr_stats()
    config = SimulationConfig(engine="vectorized", collect_round_history=False)

    def broadcast():
        result = run_broadcast(
            graph, PushProtocol(n_estimate=10**6), seed=11, config=config
        )
        assert result.success

    broadcast()  # warm the graph-side caches out of the measurement
    peak_mb = traced_peak_mb(broadcast)
    print(f"\npush n=1e6 peak traced allocations: {peak_mb:.1f} MB")
    assert peak_mb < MILLION_NODE_PEAK_BUDGET_MB


@pytest.mark.perf
def test_algorithm2_broadcast_million_nodes():
    # The large-degree regime of the paper's Theorem 3: phases 1-2 push with
    # four distinct choices, then the pull tail in which every informed node
    # answers all incoming calls.  d = 16 sits inside the
    # δ·log log n ≤ d ≤ δ·log n window at n = 10⁶.
    graph = pairing_multigraph(10**6, 16, RandomSource(seed=7))
    config = SimulationConfig(engine="vectorized", collect_round_history=False)
    start = time.perf_counter()
    result = run_broadcast(
        graph, Algorithm2(n_estimate=10**6), seed=11, config=config
    )
    elapsed = time.perf_counter() - start
    print(
        f"\nalgorithm2 n=1e6: {elapsed:.2f} s, rounds={result.rounds_executed}, "
        f"transmissions={result.total_transmissions} "
        f"({result.transmissions_per_node:.1f}/node)"
    )
    assert result.success
    assert elapsed < MILLION_NODE_BUDGET_SECONDS


@pytest.mark.perf
def test_quasirandom_broadcast_million_nodes():
    # The cyclic-list pointer protocol: one random starting offset per node,
    # then deterministic list order — the bulk pointer table makes each round
    # a couple of gathers.
    graph = pairing_multigraph(10**6, 8, RandomSource(seed=7))
    config = SimulationConfig(engine="vectorized", collect_round_history=False)
    start = time.perf_counter()
    result = run_broadcast(
        graph, QuasirandomPushProtocol(n_estimate=10**6), seed=11, config=config
    )
    elapsed = time.perf_counter() - start
    print(
        f"\nquasirandom n=1e6: {elapsed:.2f} s, "
        f"rounds={result.rounds_to_completion}, "
        f"transmissions={result.total_transmissions}"
    )
    assert result.success
    assert elapsed < MILLION_NODE_BUDGET_SECONDS
