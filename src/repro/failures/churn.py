"""Node churn during a broadcast.

Peer-to-peer overlays change while a broadcast is in flight: peers leave and
new peers join.  The paper claims robustness "against limited changes in the
size of the network"; experiment E8 quantifies that by running Algorithm 1
while a :class:`ChurnModel` removes and adds nodes every round.

Joining nodes are wired into the overlay by *stub stealing*: a joiner of
target degree ``d`` picks ``d`` random existing edges and splices itself into
the middle of each (replacing edge ``(u, v)`` with ``(u, joiner)`` and
``(joiner, v)``), which keeps every existing node's degree unchanged and gives
the joiner degree ``2·⌈d/2⌉``.  Leaving nodes simply disappear with their
edges; the overlay maintenance layer (:mod:`repro.p2p.overlay`) is responsible
for longer-term repair, while this module models the transient disruption.

Two execution surfaces
----------------------

Every model implements the scalar hook :meth:`ChurnModel.apply` (mutate a
:class:`~repro.graphs.base.Graph` and :class:`~repro.core.node.StateTable`
object by object).  Models that additionally set
``supports_vectorized = True`` implement :meth:`ChurnModel.vector_apply`,
which expresses the same membership step as bulk edits against the vectorized
engine's membership surface (``VectorChurnOps`` in
:mod:`repro.core.engine_vectorized`): ascending live-id views, batched
departures, and stub-stealing joins as CSR splices.  The two surfaces draw
from independently derived RNG streams and agree *statistically*, not
draw-for-draw — the vectorized path keeps departed nodes' stubs as tombstones
(filtered at call time) where the scalar path deletes edges outright.

Vectorized draws must be *renumbering invariant*: every random decision may
depend only on live-node **positions** (rank in ascending id order), live
counts, and per-node degrees — never on raw id values — so that the engine's
threshold-triggered node compaction (which renumbers ids) cannot change the
draw sequence.  The helpers here follow that discipline; custom models must
too, or the compaction-on/off bit-parity contract breaks.

Models are instances and may be reused across runs: :meth:`ChurnModel.reset`
is invoked by every engine before round 1 (the same lifecycle contract as
``BroadcastProtocol.reset``) and must clear any per-run state — e.g.
:class:`UniformChurn`'s joiner-id allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import StateTable
from ..core.rng import RandomSource
from ..graphs.base import Graph

__all__ = [
    "ChurnEvent",
    "ChurnModel",
    "NoChurn",
    "UniformChurn",
    "BurstChurn",
    "FlashCrowd",
    "AdversarialChurn",
]


@dataclass(frozen=True)
class ChurnEvent:
    """What a churn step did in one round."""

    round_index: int
    departed: List[int] = field(default_factory=list)
    joined: List[int] = field(default_factory=list)

    @property
    def departures(self) -> int:
        return len(self.departed)

    @property
    def arrivals(self) -> int:
        return len(self.joined)


def _sorted_distinct_positions(
    generator: np.random.Generator, size: int, count: int
) -> np.ndarray:
    """``count`` distinct positions in ``[0, size)``, ascending.

    The draw depends only on ``(size, count)`` — both invariant under id
    renumbering — which is what keeps vectorized churn bit-identical across
    node compaction on/off.  ``count >= size`` selects everything without
    consuming a draw (the branch itself is renumbering invariant).
    """
    if count <= 0 or size <= 0:
        return np.empty(0, dtype=np.int64)
    if count >= size:
        return np.arange(size, dtype=np.int64)
    picks = generator.choice(size, size=count, replace=False)
    picks.sort()
    return picks.astype(np.int64, copy=False)


class ChurnModel:
    """Interface for per-round network membership changes.

    Class attributes
    ----------------
    supports_vectorized:
        Declares that :meth:`vector_apply` is implemented, making the model
        admissible on the vectorized engine's dynamic-membership fast path.
        The flag-requires-hook contract is enforced by lint rule VEC001.
    """

    supports_vectorized = False

    def reset(self) -> None:
        """Clear per-run state.  Every engine calls this once before round 1.

        Models are plain reusable instances (a batch loop runs many
        broadcasts through one model), so anything accumulated during a run —
        id allocators, round counters — must be re-initialised here.
        """

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        """Mutate ``graph`` and ``states`` for ``round_index``; report what changed."""
        return ChurnEvent(round_index=round_index)

    def vector_apply(
        self, round_index: int, ops, rng: RandomSource
    ) -> ChurnEvent:
        """Apply this round's membership step through the bulk surface.

        ``ops`` is the engine's ``VectorChurnOps``: ``live_count`` /
        ``source`` properties, ``live_nodes()`` / ``informed_nodes()`` /
        ``newly_informed_nodes()`` ascending-id views, and the mutators
        ``depart(ids)`` and ``join(count, target_degree, generator)``.
        Implementations must follow the renumbering-invariant draw discipline
        described in the module docstring.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the vectorized bulk hook"
        )

    def describe(self) -> dict:
        return {"model": type(self).__name__}


class NoChurn(ChurnModel):
    """The default: the network does not change during the broadcast."""


class _SplicingChurnBase(ChurnModel):
    """Shared machinery for models that wire joiners in by stub stealing."""

    def __init__(self, target_degree: int, protect_source: bool) -> None:
        if target_degree < 2:
            raise ConfigurationError(f"target_degree must be >= 2, got {target_degree}")
        self.target_degree = target_degree
        self.protect_source = protect_source
        self._next_node_id: Optional[int] = None

    def reset(self) -> None:
        # A reused instance must re-derive the first fresh joiner id from the
        # *current* run's graph; carrying the allocator across runs leaks
        # ever-growing ids into later runs (and breaks re-run determinism).
        self._next_node_id = None

    # -- scalar helpers --------------------------------------------------------

    def _allocate_node_id(self, graph: Graph) -> int:
        if self._next_node_id is None:
            self._next_node_id = (max(graph.iter_nodes()) + 1) if len(graph) else 0
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _splice_joiner(self, graph: Graph, joiner: int, rng: RandomSource) -> None:
        """Wire ``joiner`` into the overlay by splitting random existing edges."""
        graph.add_node(joiner)
        edges = graph.edges()
        if not edges:
            return
        splices = max(1, self.target_degree // 2)
        for _ in range(splices):
            u, v = edges[rng.randint(0, len(edges))]
            if u == joiner or v == joiner or u == v:
                continue
            if not graph.has_edge(u, v):
                continue
            graph.remove_edge(u, v)
            graph.add_edge(u, joiner)
            graph.add_edge(joiner, v)

    def _scalar_join(
        self, graph: Graph, states: StateTable, rng: RandomSource, arrivals: int
    ) -> List[int]:
        joined: List[int] = []
        for _ in range(arrivals):
            joiner = self._allocate_node_id(graph)
            self._splice_joiner(graph, joiner, rng)
            states.add_node(joiner)
            joined.append(joiner)
        return joined

    def _scalar_depart_candidates(self, graph: Graph, states: StateTable) -> List[int]:
        return [
            node
            for node in graph.iter_nodes()
            if states.contains(node)
            and not (self.protect_source and node == states.source)
        ]

    @staticmethod
    def _scalar_depart(graph: Graph, states: StateTable, nodes) -> List[int]:
        departed: List[int] = []
        for node in nodes:
            graph.remove_node(node)
            states.remove_node(node)
            departed.append(node)
        return departed

    # -- vectorized helpers ----------------------------------------------------

    def _vector_depart_from(
        self, ops, rng: RandomSource, candidates: np.ndarray, count: int
    ) -> List[int]:
        if self.protect_source:
            candidates = candidates[candidates != ops.source]
        picks = _sorted_distinct_positions(rng.generator, int(candidates.size), count)
        if picks.size == 0:
            return []
        departed = candidates[picks]
        ops.depart(departed)
        return [int(node) for node in departed]


class UniformChurn(_SplicingChurnBase):
    """Uniform random departures and arrivals at fixed per-round rates.

    Parameters
    ----------
    leave_rate:
        Expected fraction of current nodes that leave per round.
    join_rate:
        Expected number of joiners per round, as a fraction of the current
        network size.
    target_degree:
        Degree the joiners aim for when splicing into the overlay.
    protect_source:
        Never remove the broadcast source (keeps the experiment meaningful —
        if the only informed node departs in round 1, every protocol fails).
    max_rounds:
        Stop churning after this many rounds (``None`` = churn forever); lets
        experiments model a burst of churn early in the broadcast.
    """

    supports_vectorized = True

    def __init__(
        self,
        leave_rate: float,
        join_rate: float,
        target_degree: int,
        protect_source: bool = True,
        max_rounds: Optional[int] = None,
    ) -> None:
        if not 0.0 <= leave_rate < 1.0:
            raise ConfigurationError(f"leave_rate must be in [0, 1), got {leave_rate}")
        if not 0.0 <= join_rate < 1.0:
            raise ConfigurationError(f"join_rate must be in [0, 1), got {join_rate}")
        super().__init__(target_degree=target_degree, protect_source=protect_source)
        self.leave_rate = leave_rate
        self.join_rate = join_rate
        self.max_rounds = max_rounds

    # -- main hooks -------------------------------------------------------------

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        if self.max_rounds is not None and round_index > self.max_rounds:
            return ChurnEvent(round_index=round_index)

        current_nodes = [node for node in graph.iter_nodes() if states.contains(node)]
        departures = rng.binomial(len(current_nodes), self.leave_rate)
        arrivals = rng.binomial(len(current_nodes), self.join_rate)

        candidates = [
            node
            for node in current_nodes
            if not (self.protect_source and node == states.source)
        ]
        departed = self._scalar_depart(
            graph, states, rng.sample_distinct(candidates, departures)
        )
        joined = self._scalar_join(graph, states, rng, arrivals)
        return ChurnEvent(round_index=round_index, departed=departed, joined=joined)

    def vector_apply(
        self, round_index: int, ops, rng: RandomSource
    ) -> ChurnEvent:
        if self.max_rounds is not None and round_index > self.max_rounds:
            return ChurnEvent(round_index=round_index)

        live = ops.live_count
        departures = rng.binomial(live, self.leave_rate)
        arrivals = rng.binomial(live, self.join_rate)

        departed: List[int] = []
        if departures:
            departed = self._vector_depart_from(
                ops, rng, ops.live_nodes(), departures
            )
        joined: List[int] = []
        if arrivals:
            joined = ops.join(arrivals, self.target_degree, rng.generator)
        return ChurnEvent(round_index=round_index, departed=departed, joined=joined)

    def describe(self) -> dict:
        return {
            "model": type(self).__name__,
            "leave_rate": self.leave_rate,
            "join_rate": self.join_rate,
            "target_degree": self.target_degree,
            "max_rounds": self.max_rounds,
        }


class BurstChurn(ChurnModel):
    """Mass simultaneous departures at one chosen round.

    Models the paper's worst transient: a ``fraction`` of the network drops
    out at ``at_round`` all at once (a correlated failure — datacentre
    outage, partition heal), instead of the steady trickle of
    :class:`UniformChurn`.  Exactly ``floor(fraction · candidates)`` nodes
    leave; no joins.
    """

    supports_vectorized = True

    def __init__(
        self, at_round: int, fraction: float, protect_source: bool = True
    ) -> None:
        if at_round < 1:
            raise ConfigurationError(f"at_round must be >= 1, got {at_round}")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        self.at_round = at_round
        self.fraction = fraction
        self.protect_source = protect_source

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        if round_index != self.at_round:
            return ChurnEvent(round_index=round_index)
        candidates = [
            node
            for node in graph.iter_nodes()
            if states.contains(node)
            and not (self.protect_source and node == states.source)
        ]
        count = int(self.fraction * len(candidates))
        departed = _SplicingChurnBase._scalar_depart(
            graph, states, rng.sample_distinct(candidates, count)
        )
        return ChurnEvent(round_index=round_index, departed=departed)

    def vector_apply(
        self, round_index: int, ops, rng: RandomSource
    ) -> ChurnEvent:
        if round_index != self.at_round:
            return ChurnEvent(round_index=round_index)
        candidates = ops.live_nodes()
        if self.protect_source:
            candidates = candidates[candidates != ops.source]
        count = int(self.fraction * int(candidates.size))
        picks = _sorted_distinct_positions(rng.generator, int(candidates.size), count)
        departed: List[int] = []
        if picks.size:
            chosen = candidates[picks]
            ops.depart(chosen)
            departed = [int(node) for node in chosen]
        return ChurnEvent(round_index=round_index, departed=departed)

    def describe(self) -> dict:
        return {
            "model": type(self).__name__,
            "at_round": self.at_round,
            "fraction": self.fraction,
            "protect_source": self.protect_source,
        }


class FlashCrowd(_SplicingChurnBase):
    """Mass simultaneous joins at one chosen round.

    The dual of :class:`BurstChurn`: ``floor(fraction · current size)`` fresh
    uninformed nodes splice into the overlay at ``at_round`` — a flash crowd
    arriving mid-broadcast, diluting the informed fraction in one step.
    """

    supports_vectorized = True

    def __init__(
        self, at_round: int, fraction: float, target_degree: int = 8
    ) -> None:
        if at_round < 1:
            raise ConfigurationError(f"at_round must be >= 1, got {at_round}")
        if fraction < 0.0:
            raise ConfigurationError(f"fraction must be >= 0, got {fraction}")
        super().__init__(target_degree=target_degree, protect_source=True)
        self.at_round = at_round
        self.fraction = fraction

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        if round_index != self.at_round:
            return ChurnEvent(round_index=round_index)
        current = sum(1 for node in graph.iter_nodes() if states.contains(node))
        arrivals = int(self.fraction * current)
        joined = self._scalar_join(graph, states, rng, arrivals)
        return ChurnEvent(round_index=round_index, joined=joined)

    def vector_apply(
        self, round_index: int, ops, rng: RandomSource
    ) -> ChurnEvent:
        if round_index != self.at_round:
            return ChurnEvent(round_index=round_index)
        arrivals = int(self.fraction * ops.live_count)
        joined: List[int] = []
        if arrivals:
            joined = ops.join(arrivals, self.target_degree, rng.generator)
        return ChurnEvent(round_index=round_index, joined=joined)

    def describe(self) -> dict:
        return {
            "model": type(self).__name__,
            "at_round": self.at_round,
            "fraction": self.fraction,
            "target_degree": self.target_degree,
        }


class AdversarialChurn(_SplicingChurnBase):
    """Departures targeted at informed nodes — the paper's worst case.

    Instead of leaving uniformly, an adversary removes nodes that already
    carry the message (``target="informed"``) or, harsher still, exactly the
    frontier that would push next round (``target="newly-informed"``),
    erasing each round's progress.  Optional uniform joins keep the network
    size up while the rumour is suppressed.
    """

    supports_vectorized = True

    TARGETS = ("informed", "newly-informed")

    def __init__(
        self,
        leave_rate: float,
        join_rate: float = 0.0,
        target_degree: int = 8,
        target: str = "newly-informed",
        protect_source: bool = True,
        max_rounds: Optional[int] = None,
    ) -> None:
        if not 0.0 <= leave_rate <= 1.0:
            raise ConfigurationError(f"leave_rate must be in [0, 1], got {leave_rate}")
        if not 0.0 <= join_rate < 1.0:
            raise ConfigurationError(f"join_rate must be in [0, 1), got {join_rate}")
        if target not in self.TARGETS:
            raise ConfigurationError(
                f"target must be one of {self.TARGETS}, got {target!r}"
            )
        super().__init__(target_degree=target_degree, protect_source=protect_source)
        self.leave_rate = leave_rate
        self.join_rate = join_rate
        self.target = target
        self.max_rounds = max_rounds

    def _scalar_targets(self, states: StateTable, round_index: int) -> List[int]:
        if self.target == "informed":
            chosen = [s.node_id for s in states if s.informed]
        else:
            chosen = [
                s.node_id for s in states if s.newly_informed_in(round_index - 1)
            ]
        chosen.sort()
        if self.protect_source:
            chosen = [node for node in chosen if node != states.source]
        return chosen

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        if self.max_rounds is not None and round_index > self.max_rounds:
            return ChurnEvent(round_index=round_index)
        current = sum(1 for node in graph.iter_nodes() if states.contains(node))
        candidates = self._scalar_targets(states, round_index)
        departures = rng.binomial(len(candidates), self.leave_rate)
        arrivals = rng.binomial(current, self.join_rate)
        departed = self._scalar_depart(
            graph, states, rng.sample_distinct(candidates, departures)
        )
        joined = self._scalar_join(graph, states, rng, arrivals)
        return ChurnEvent(round_index=round_index, departed=departed, joined=joined)

    def vector_apply(
        self, round_index: int, ops, rng: RandomSource
    ) -> ChurnEvent:
        if self.max_rounds is not None and round_index > self.max_rounds:
            return ChurnEvent(round_index=round_index)
        if self.target == "informed":
            candidates = ops.informed_nodes()
        else:
            candidates = ops.newly_informed_nodes()
        if self.protect_source:
            candidates = candidates[candidates != ops.source]
        departures = rng.binomial(int(candidates.size), self.leave_rate)
        arrivals = rng.binomial(ops.live_count, self.join_rate)
        departed: List[int] = []
        if departures:
            picks = _sorted_distinct_positions(
                rng.generator, int(candidates.size), departures
            )
            if picks.size:
                chosen = candidates[picks]
                ops.depart(chosen)
                departed = [int(node) for node in chosen]
        joined: List[int] = []
        if arrivals:
            joined = ops.join(arrivals, self.target_degree, rng.generator)
        return ChurnEvent(round_index=round_index, departed=departed, joined=joined)

    def describe(self) -> dict:
        return {
            "model": type(self).__name__,
            "leave_rate": self.leave_rate,
            "join_rate": self.join_rate,
            "target": self.target,
            "target_degree": self.target_degree,
            "max_rounds": self.max_rounds,
        }
