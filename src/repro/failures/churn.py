"""Node churn during a broadcast.

Peer-to-peer overlays change while a broadcast is in flight: peers leave and
new peers join.  The paper claims robustness "against limited changes in the
size of the network"; experiment E8 quantifies that by running Algorithm 1
while a :class:`ChurnModel` removes and adds nodes every round.

Joining nodes are wired into the overlay by *stub stealing*: a joiner of
target degree ``d`` picks ``d`` random existing edges and splices itself into
the middle of each (replacing edge ``(u, v)`` with ``(u, joiner)`` and
``(joiner, v)``), which keeps every existing node's degree unchanged and gives
the joiner degree ``2·⌈d/2⌉``.  Leaving nodes simply disappear with their
edges; the overlay maintenance layer (:mod:`repro.p2p.overlay`) is responsible
for longer-term repair, while this module models the transient disruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import ConfigurationError
from ..core.node import StateTable
from ..core.rng import RandomSource
from ..graphs.base import Graph

__all__ = ["ChurnEvent", "ChurnModel", "NoChurn", "UniformChurn"]


@dataclass(frozen=True)
class ChurnEvent:
    """What a churn step did in one round."""

    round_index: int
    departed: List[int] = field(default_factory=list)
    joined: List[int] = field(default_factory=list)

    @property
    def departures(self) -> int:
        return len(self.departed)

    @property
    def arrivals(self) -> int:
        return len(self.joined)


class ChurnModel:
    """Interface for per-round network membership changes."""

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        """Mutate ``graph`` and ``states`` for ``round_index``; report what changed."""
        return ChurnEvent(round_index=round_index)

    def describe(self) -> dict:
        return {"model": type(self).__name__}


class NoChurn(ChurnModel):
    """The default: the network does not change during the broadcast."""


class UniformChurn(ChurnModel):
    """Uniform random departures and arrivals at fixed per-round rates.

    Parameters
    ----------
    leave_rate:
        Expected fraction of current nodes that leave per round.
    join_rate:
        Expected number of joiners per round, as a fraction of the current
        network size.
    target_degree:
        Degree the joiners aim for when splicing into the overlay.
    protect_source:
        Never remove the broadcast source (keeps the experiment meaningful —
        if the only informed node departs in round 1, every protocol fails).
    max_rounds:
        Stop churning after this many rounds (``None`` = churn forever); lets
        experiments model a burst of churn early in the broadcast.
    """

    def __init__(
        self,
        leave_rate: float,
        join_rate: float,
        target_degree: int,
        protect_source: bool = True,
        max_rounds: Optional[int] = None,
    ) -> None:
        if not 0.0 <= leave_rate < 1.0:
            raise ConfigurationError(f"leave_rate must be in [0, 1), got {leave_rate}")
        if not 0.0 <= join_rate < 1.0:
            raise ConfigurationError(f"join_rate must be in [0, 1), got {join_rate}")
        if target_degree < 2:
            raise ConfigurationError(f"target_degree must be >= 2, got {target_degree}")
        self.leave_rate = leave_rate
        self.join_rate = join_rate
        self.target_degree = target_degree
        self.protect_source = protect_source
        self.max_rounds = max_rounds
        self._next_node_id: Optional[int] = None

    # -- helpers ---------------------------------------------------------------

    def _allocate_node_id(self, graph: Graph) -> int:
        if self._next_node_id is None:
            self._next_node_id = (max(graph.iter_nodes()) + 1) if len(graph) else 0
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _splice_joiner(self, graph: Graph, joiner: int, rng: RandomSource) -> None:
        """Wire ``joiner`` into the overlay by splitting random existing edges."""
        graph.add_node(joiner)
        edges = graph.edges()
        if not edges:
            return
        splices = max(1, self.target_degree // 2)
        for _ in range(splices):
            u, v = edges[rng.randint(0, len(edges))]
            if u == joiner or v == joiner or u == v:
                continue
            if not graph.has_edge(u, v):
                continue
            graph.remove_edge(u, v)
            graph.add_edge(u, joiner)
            graph.add_edge(joiner, v)

    # -- main hook --------------------------------------------------------------

    def apply(
        self, round_index: int, graph: Graph, states: StateTable, rng: RandomSource
    ) -> ChurnEvent:
        if self.max_rounds is not None and round_index > self.max_rounds:
            return ChurnEvent(round_index=round_index)

        current_nodes = [node for node in graph.iter_nodes() if states.contains(node)]
        departures = rng.binomial(len(current_nodes), self.leave_rate)
        arrivals = rng.binomial(len(current_nodes), self.join_rate)

        departed: List[int] = []
        candidates = [
            node
            for node in current_nodes
            if not (self.protect_source and node == states.source)
        ]
        for node in rng.sample_distinct(candidates, departures):
            graph.remove_node(node)
            states.remove_node(node)
            departed.append(node)

        joined: List[int] = []
        for _ in range(arrivals):
            joiner = self._allocate_node_id(graph)
            self._splice_joiner(graph, joiner, rng)
            states.add_node(joiner)
            joined.append(joiner)

        return ChurnEvent(round_index=round_index, departed=departed, joined=joined)

    def describe(self) -> dict:
        return {
            "model": type(self).__name__,
            "leave_rate": self.leave_rate,
            "join_rate": self.join_rate,
            "target_degree": self.target_degree,
            "max_rounds": self.max_rounds,
        }
