"""Inaccurate network-size estimates.

The algorithms compute their phase boundaries from an *estimate* of ``n``; the
paper only requires the estimate to be correct up to a constant factor.  This
module provides helpers for systematically distorting the estimate handed to a
protocol, used by experiment E7 ("size-estimate robustness").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.errors import ConfigurationError

__all__ = ["EstimateError", "distorted_estimate", "estimate_grid"]


@dataclass(frozen=True)
class EstimateError:
    """A multiplicative distortion of the true network size.

    ``factor = 2.0`` means the nodes believe the network is twice as large as
    it really is; ``0.5`` means half.  The distorted estimate is clamped to be
    at least 2 so that logarithms stay defined.
    """

    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigurationError(f"estimate factor must be positive, got {self.factor}")

    def apply(self, true_n: int) -> int:
        """The estimate the nodes would use for a network of ``true_n`` nodes."""
        return max(2, int(round(true_n * self.factor)))


def distorted_estimate(true_n: int, factor: float) -> int:
    """Shorthand for ``EstimateError(factor).apply(true_n)``."""
    return EstimateError(factor).apply(true_n)


def estimate_grid(powers: int = 2) -> List[EstimateError]:
    """Distortion factors ``2^-powers .. 2^powers`` used in experiment E7."""
    if powers < 0:
        raise ConfigurationError(f"powers must be non-negative, got {powers}")
    return [EstimateError(2.0**k) for k in range(-powers, powers + 1)]
