"""Failure, churn, and estimation-error models used by the robustness experiments."""

from .churn import ChurnEvent, ChurnModel, NoChurn, UniformChurn
from .estimates import EstimateError, distorted_estimate, estimate_grid
from .message_loss import FailureModel, IndependentLoss, ReliableDelivery

__all__ = [
    "FailureModel",
    "IndependentLoss",
    "ReliableDelivery",
    "ChurnModel",
    "NoChurn",
    "UniformChurn",
    "ChurnEvent",
    "EstimateError",
    "distorted_estimate",
    "estimate_grid",
]
