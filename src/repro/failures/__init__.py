"""Failure, churn, and estimation-error models used by the robustness experiments."""

from .churn import ChurnEvent, ChurnModel, NoChurn, UniformChurn
from .estimates import EstimateError, distorted_estimate, estimate_grid
from .message_loss import FailureModel, IndependentLoss, ReliableDelivery
from .registry import FAILURE_MODELS, available_failure_models, build_failure_model

__all__ = [
    "FailureModel",
    "IndependentLoss",
    "ReliableDelivery",
    "ChurnModel",
    "NoChurn",
    "UniformChurn",
    "ChurnEvent",
    "EstimateError",
    "distorted_estimate",
    "estimate_grid",
    "FAILURE_MODELS",
    "available_failure_models",
    "build_failure_model",
]
