"""Failure, churn, and estimation-error models used by the robustness experiments."""

from .churn import (
    AdversarialChurn,
    BurstChurn,
    ChurnEvent,
    ChurnModel,
    FlashCrowd,
    NoChurn,
    UniformChurn,
)
from .churn_registry import CHURN_MODELS, available_churn_models, build_churn_model
from .estimates import EstimateError, distorted_estimate, estimate_grid
from .message_loss import FailureModel, IndependentLoss, ReliableDelivery
from .registry import FAILURE_MODELS, available_failure_models, build_failure_model

__all__ = [
    "FailureModel",
    "IndependentLoss",
    "ReliableDelivery",
    "ChurnModel",
    "NoChurn",
    "UniformChurn",
    "BurstChurn",
    "FlashCrowd",
    "AdversarialChurn",
    "ChurnEvent",
    "EstimateError",
    "distorted_estimate",
    "estimate_grid",
    "FAILURE_MODELS",
    "available_failure_models",
    "build_failure_model",
    "CHURN_MODELS",
    "available_churn_models",
    "build_churn_model",
]
