"""The failure-model registry: string ids -> failure-model builders.

Mirrors the protocol and graph-family registries so scenario specs can name
their failure regime declaratively (``"reliable"``, ``"independent-loss"``)
and the CLI can list the available models with their kwargs.
"""

from __future__ import annotations

from ..core.registry import Registry
from .message_loss import FailureModel, IndependentLoss, ReliableDelivery

__all__ = ["FAILURE_MODELS", "build_failure_model", "available_failure_models"]


#: The shared registry instance for failure models.
FAILURE_MODELS = Registry("failure model")

FAILURE_MODELS.register(
    "reliable",
    ReliableDelivery,
    summary="failure-free delivery: every channel works, every copy arrives",
)
FAILURE_MODELS.register(
    "independent-loss",
    IndependentLoss,
    summary="independent Bernoulli loss per transmission and/or per channel",
    params={
        "transmission_loss_probability": "chance an individual copy is dropped",
        "channel_failure_probability": "chance an opened channel fails all round",
    },
)


def available_failure_models() -> list:
    """The sorted list of registered failure-model ids."""
    return FAILURE_MODELS.names()


def build_failure_model(name: str, **kwargs) -> FailureModel:
    """Instantiate the failure model registered under ``name``.

    Unknown names and unknown kwargs raise :class:`ConfigurationError` naming
    the offending id or key.
    """
    return FAILURE_MODELS.build(name, **kwargs)
