"""The churn-model registry: string ids -> churn-model builders.

Mirrors the protocol/graph/failure registries so scenario specs can name
their membership regime declaratively (``"uniform"``, ``"burst"``,
``"adversarial"``) and the CLI can list the available models with their
kwargs (``repro list-churn``).  The ``"none"`` id is the declarative default
and builds :class:`~repro.failures.churn.NoChurn`; :class:`ChurnSpec` maps
it to "no churn model attached" so static runs stay on the static fast path.
"""

from __future__ import annotations

from ..core.registry import Registry
from .churn import AdversarialChurn, BurstChurn, ChurnModel, FlashCrowd, NoChurn, UniformChurn

__all__ = ["CHURN_MODELS", "available_churn_models", "build_churn_model"]


#: The shared registry instance for churn models.
CHURN_MODELS = Registry("churn model")

CHURN_MODELS.register(
    "none",
    NoChurn,
    summary="static membership: the network does not change during the broadcast",
)
CHURN_MODELS.register(
    "uniform",
    UniformChurn,
    summary="uniform random departures and stub-stealing joins at per-round rates",
    params={
        "leave_rate": "expected fraction of current nodes leaving per round",
        "join_rate": "expected joiners per round as a fraction of current size",
        "target_degree": "degree a joiner aims for when splicing in",
        "protect_source": "never remove the broadcast source (default true)",
        "max_rounds": "stop churning after this round (None = churn forever)",
    },
)
CHURN_MODELS.register(
    "burst",
    BurstChurn,
    summary="mass simultaneous departures at one chosen round (correlated failure)",
    params={
        "at_round": "the round in which the burst strikes",
        "fraction": "fraction of current nodes removed at that round",
        "protect_source": "never remove the broadcast source (default true)",
    },
)
CHURN_MODELS.register(
    "flash-crowd",
    FlashCrowd,
    summary="mass simultaneous stub-stealing joins at one chosen round",
    params={
        "at_round": "the round in which the crowd arrives",
        "fraction": "arrivals as a fraction of the current network size",
        "target_degree": "degree each joiner aims for when splicing in",
    },
)
CHURN_MODELS.register(
    "adversarial",
    AdversarialChurn,
    summary="departures targeting informed / newly-informed nodes (worst case)",
    params={
        "leave_rate": "per-round departure probability for each targeted node",
        "join_rate": "expected joiners per round as a fraction of current size",
        "target_degree": "degree a joiner aims for when splicing in",
        "target": "'informed' or 'newly-informed' (the push frontier)",
        "protect_source": "never remove the broadcast source (default true)",
        "max_rounds": "stop churning after this round (None = churn forever)",
    },
)


def available_churn_models() -> list:
    """The sorted list of registered churn-model ids."""
    return CHURN_MODELS.names()


def build_churn_model(name: str, **kwargs) -> ChurnModel:
    """Instantiate the churn model registered under ``name``.

    Unknown names and unknown kwargs raise :class:`ConfigurationError` naming
    the offending id or key.
    """
    return CHURN_MODELS.build(name, **kwargs)
