"""Per-transmission and per-channel failure models.

The paper's abstract promises that the algorithm "efficiently handles limited
communication failures".  We model two flavours:

* **transmission loss** — each individual message copy sent over a channel is
  dropped independently with probability ``p`` (the receiving node simply does
  not get that copy this round);
* **channel failure** — an opened channel fails for the whole round, so
  neither push nor pull can use it (e.g. the callee is temporarily
  unreachable).

Both are implemented as small strategy objects consulted by the engine, so
experiments can combine them or plug in custom models (e.g. correlated
failures) without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.rng import RandomSource

__all__ = ["FailureModel", "IndependentLoss", "ReliableDelivery"]


class FailureModel:
    """Interface consulted by the engine for every channel and transmission."""

    def channel_fails(self, rng: RandomSource) -> bool:
        """True if a freshly opened channel is unusable for the round."""
        return False

    def transmission_lost(self, rng: RandomSource) -> bool:
        """True if one message copy over one working channel is dropped."""
        return False

    def describe(self) -> dict:
        """A serialisable description, recorded in run metadata."""
        return {"model": type(self).__name__}


class ReliableDelivery(FailureModel):
    """The failure-free default: every channel works, every copy arrives."""


@dataclass
class IndependentLoss(FailureModel):
    """Independent Bernoulli loss for transmissions and channels.

    Attributes
    ----------
    transmission_loss_probability:
        Probability that an individual message copy is dropped.
    channel_failure_probability:
        Probability that an opened channel fails for the entire round.
    """

    transmission_loss_probability: float = 0.0
    channel_failure_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("transmission_loss_probability", "channel_failure_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def channel_fails(self, rng: RandomSource) -> bool:
        return rng.bernoulli(self.channel_failure_probability)

    def transmission_lost(self, rng: RandomSource) -> bool:
        return rng.bernoulli(self.transmission_loss_probability)

    def describe(self) -> dict:
        return {
            "model": type(self).__name__,
            "transmission_loss_probability": self.transmission_loss_probability,
            "channel_failure_probability": self.channel_failure_probability,
        }
