"""The phone-call channel layer.

In the random phone call model every node, in every round, opens channels to
one (standard model) or four distinct (this paper's model) randomly chosen
neighbours.  A channel is *outgoing* for the caller and *incoming* for the
callee, and may carry messages in both directions during the round:

* ``push`` — the caller sends over its outgoing channels;
* ``pull`` — the callee sends over its incoming channels.

:class:`ChannelSet` stores all channels of one round and answers the only two
queries the engine needs: "who did node ``v`` call?" and "who called ``v``?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["Channel", "ChannelSet"]


@dataclass(frozen=True)
class Channel:
    """A single open channel for one round.

    ``caller`` chose ``callee``; the channel is bidirectional for the round.
    """

    caller: int
    callee: int

    def other_end(self, node_id: int) -> int:
        """The node on the opposite end from ``node_id``."""
        if node_id == self.caller:
            return self.callee
        if node_id == self.callee:
            return self.caller
        raise ValueError(f"node {node_id} is not an endpoint of {self}")


class ChannelSet:
    """All channels opened during a single round.

    The engine's broadcast hot loop only ever iterates the flat channel list,
    so the per-endpoint indexes are built lazily on the first ``outgoing`` /
    ``incoming`` query (protocol hooks and tests use them; plain broadcasts
    never do).  This keeps ``open`` to a single list append.
    """

    def __init__(self) -> None:
        self._channels: List[Channel] = []
        self._outgoing: Dict[int, List[Channel]] = {}
        self._incoming: Dict[int, List[Channel]] = {}
        self._indexed_count = 0

    def open(self, caller: int, callee: int) -> Channel:
        """Open a channel from ``caller`` to ``callee``."""
        channel = Channel(caller=caller, callee=callee)
        self._channels.append(channel)
        return channel

    def _ensure_index(self) -> None:
        """Index any channels opened since the last query."""
        for channel in self._channels[self._indexed_count :]:
            self._outgoing.setdefault(channel.caller, []).append(channel)
            self._incoming.setdefault(channel.callee, []).append(channel)
        self._indexed_count = len(self._channels)

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def outgoing(self, node_id: int) -> List[Channel]:
        """Channels opened *by* ``node_id`` this round."""
        self._ensure_index()
        return self._outgoing.get(node_id, [])

    def incoming(self, node_id: int) -> List[Channel]:
        """Channels opened *to* ``node_id`` this round."""
        self._ensure_index()
        return self._incoming.get(node_id, [])

    def callers_of(self, node_id: int) -> List[int]:
        """Ids of nodes that called ``node_id`` this round."""
        return [channel.caller for channel in self.incoming(node_id)]

    def callees_of(self, node_id: int) -> List[int]:
        """Ids of nodes that ``node_id`` called this round."""
        return [channel.callee for channel in self.outgoing(node_id)]

    def edges(self) -> List[Tuple[int, int]]:
        """All channels as ``(caller, callee)`` pairs."""
        return [(channel.caller, channel.callee) for channel in self._channels]
