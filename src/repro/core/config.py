"""Simulation configuration.

One :class:`SimulationConfig` object captures every knob of a broadcast run
that is not part of the graph or the protocol themselves: failure injection,
churn, round limits, and trace verbosity.  Keeping these in a frozen dataclass
means an experiment's full parameterisation can be logged and reproduced from
a single record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigurationError

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine-level parameters of a single broadcast simulation.

    Attributes
    ----------
    max_rounds:
        Hard cap on the number of rounds.  ``None`` lets the protocol's own
        horizon decide (all protocols expose one); a run that exhausts the cap
        without informing everybody is reported as unsuccessful rather than
        raising.
    message_loss_probability:
        Probability that any individual transmission (one message over one
        channel in one direction) is lost.  Models the "limited communication
        failures" discussed in the paper's abstract and introduction.
    channel_failure_probability:
        Probability that an opened channel fails entirely for the round
        (neither push nor pull can use it).
    churn_rate:
        Expected fraction of nodes replaced per round (see
        :mod:`repro.failures.churn`).  ``0`` disables churn.
    collect_round_history:
        Whether to record the per-round informed counts and transmission
        counts.  Experiments that only need totals can disable it to save
        memory on large sweeps.
    stop_when_informed:
        Stop as soon as every node is informed, even if the protocol's
        schedule has rounds remaining.  The paper's algorithms run for their
        full deterministic horizon (a Monte Carlo guarantee); experiments that
        measure *completion time* enable early stopping instead.
    engine:
        Which round engine executes the run.  ``"auto"`` (default) picks the
        bulk NumPy engine whenever the protocol and run configuration support
        it (no tracer, no churn, no exchange hook, bulk protocol hooks
        available) and silently falls back to the scalar engine otherwise;
        ``"scalar"`` forces the per-node object engine; ``"vectorized"``
        forces the bulk engine and raises :class:`SimulationError` if the
        combination cannot be vectorized.  See
        :mod:`repro.core.engine_vectorized` for the dispatch rules.
    batch_row_compaction:
        Whether the batched vectorized engine remaps completed replications
        out of its ``(R, n)`` state as they finish (only meaningful together
        with ``stop_when_informed``).  Results are bit-identical either way;
        disabling it exists for benchmarking and debugging the compaction
        machinery itself.
    churn_node_compaction:
        Whether the vectorized engine's dynamic-membership mode renumbers
        dead node ids away once a quarter of the id space is tombstoned (the
        node-axis mirror of ``batch_row_compaction``).  Results are
        bit-identical either way — every churn-path draw is renumbering
        invariant — so disabling it exists for benchmarking and for the
        compaction-parity tests.
    """

    max_rounds: Optional[int] = None
    message_loss_probability: float = 0.0
    channel_failure_probability: float = 0.0
    churn_rate: float = 0.0
    collect_round_history: bool = True
    stop_when_informed: bool = True
    engine: str = "auto"
    batch_row_compaction: bool = True
    churn_node_compaction: bool = True

    def __post_init__(self) -> None:
        if self.max_rounds is not None and self.max_rounds <= 0:
            raise ConfigurationError(
                f"max_rounds must be positive or None, got {self.max_rounds}"
            )
        if self.engine not in ("auto", "scalar", "vectorized"):
            raise ConfigurationError(
                f"engine must be 'auto', 'scalar', or 'vectorized', got {self.engine!r}"
            )
        for name in (
            "message_loss_probability",
            "channel_failure_probability",
            "churn_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def with_overrides(self, **overrides) -> "SimulationConfig":
        """A copy of this configuration with selected fields replaced."""
        data = {
            "max_rounds": self.max_rounds,
            "message_loss_probability": self.message_loss_probability,
            "channel_failure_probability": self.channel_failure_probability,
            "churn_rate": self.churn_rate,
            "collect_round_history": self.collect_round_history,
            "stop_when_informed": self.stop_when_informed,
            "engine": self.engine,
            "batch_row_compaction": self.batch_row_compaction,
            "churn_node_compaction": self.churn_node_compaction,
        }
        data.update(overrides)
        return SimulationConfig(**data)
