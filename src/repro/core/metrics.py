"""Metrics and results of broadcast runs.

The paper's cost model counts two quantities separately:

* **message transmissions** — every copy of the broadcast message sent over an
  open channel (this is the quantity the O(n log log n) upper bound and the
  Ω(n log n / log d) lower bound are about);
* **opened channels** — the fixed per-round overhead of the phone call model,
  which amortises over messages when broadcasts are frequent.

:class:`RoundRecord` captures one round, :class:`RunResult` an entire run, and
:class:`RunAggregate` summarises repetitions of the same configuration across
seeds (mean / min / max / standard deviation of the headline quantities).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["RoundRecord", "RunResult", "RunAggregate", "aggregate_runs"]


@dataclass(frozen=True)
class RoundRecord:
    """Per-round counters collected by the engine.

    Attributes
    ----------
    round_index:
        1-based round number (round 0 is the creation of the message).
    informed_before / informed_after:
        Number of informed nodes at the start / end of the round.
    push_transmissions / pull_transmissions:
        Message copies sent via push / pull during the round.
    channels_opened:
        Channels opened during the round (4·n in the paper's model).
    lost_transmissions:
        Transmissions dropped by the failure model.
    phase:
        Protocol-reported phase label for the round (e.g. ``"phase1"``), or
        ``""`` for protocols without phases.
    """

    round_index: int
    informed_before: int
    informed_after: int
    push_transmissions: int
    pull_transmissions: int
    channels_opened: int
    lost_transmissions: int = 0
    phase: str = ""

    @property
    def transmissions(self) -> int:
        """Total transmissions (push + pull) in this round."""
        return self.push_transmissions + self.pull_transmissions

    @property
    def newly_informed(self) -> int:
        """Nodes that became informed during this round."""
        return self.informed_after - self.informed_before

    @property
    def delivered_transmissions(self) -> int:
        """Transmissions that arrived this round (total minus losses)."""
        return self.transmissions - self.lost_transmissions

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (numpy scalars coerced to plain Python)."""
        return {
            "round_index": int(self.round_index),
            "informed_before": int(self.informed_before),
            "informed_after": int(self.informed_after),
            "push_transmissions": int(self.push_transmissions),
            "pull_transmissions": int(self.pull_transmissions),
            "channels_opened": int(self.channels_opened),
            "lost_transmissions": int(self.lost_transmissions),
            "phase": str(self.phase),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoundRecord":
        """Inverse of :meth:`to_dict`; round-trips bit-exactly."""
        return cls(
            round_index=data["round_index"],
            informed_before=data["informed_before"],
            informed_after=data["informed_after"],
            push_transmissions=data["push_transmissions"],
            pull_transmissions=data["pull_transmissions"],
            channels_opened=data["channels_opened"],
            lost_transmissions=data.get("lost_transmissions", 0),
            phase=data.get("phase", ""),
        )


@dataclass
class RunResult:
    """Complete outcome of one broadcast simulation.

    The headline quantities used throughout the experiments are
    :attr:`rounds_to_completion`, :attr:`total_transmissions`, and
    :attr:`transmissions_per_node`.
    """

    n: int
    protocol: str
    source: int
    success: bool
    rounds_executed: int
    rounds_to_completion: Optional[int]
    total_push_transmissions: int
    total_pull_transmissions: int
    total_channels_opened: int
    total_lost_transmissions: int
    final_informed: int
    history: List[RoundRecord] = field(default_factory=list)
    phase_transmissions: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_transmissions(self) -> int:
        """All message transmissions across the run (push + pull)."""
        return self.total_push_transmissions + self.total_pull_transmissions

    @property
    def total_delivered_transmissions(self) -> int:
        """Transmissions that actually arrived (total minus failure losses).

        This is the quantity the engines' conservation identity is stated
        over: every informed node except the source received at least one
        delivered transmission.  The identity is representation-independent —
        the scalar engine's per-channel loop, the mask-scan kernels, and the
        sparse active-set commits (which drop duplicate deliveries *after*
        counting the transmission) all charge it identically.
        """
        return self.total_transmissions - self.total_lost_transmissions

    @property
    def transmissions_per_node(self) -> float:
        """Average number of transmissions per network node."""
        return self.total_transmissions / self.n if self.n else 0.0

    @property
    def channels_per_node(self) -> float:
        """Average number of channels opened per node over the whole run."""
        return self.total_channels_opened / self.n if self.n else 0.0

    @property
    def informed_fraction(self) -> float:
        """Fraction of nodes informed when the run ended."""
        return self.final_informed / self.n if self.n else 0.0

    def informed_curve(self) -> List[int]:
        """Informed-node counts after each executed round (needs history)."""
        return [record.informed_after for record in self.history]

    def transmissions_by_phase(self) -> Dict[str, int]:
        """Total transmissions per protocol phase label."""
        return dict(self.phase_transmissions)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict of the whole run, including per-round history.

        All counters are coerced to plain Python scalars and ``metadata`` is
        deep-copied, so the payload survives ``json.dumps`` untouched.  The
        distributed sweep executor uses this as the wire/checkpoint format;
        :meth:`from_dict` reconstructs a result that compares equal to the
        original down to per-round history.
        """
        return {
            "n": int(self.n),
            "protocol": str(self.protocol),
            "source": int(self.source),
            "success": bool(self.success),
            "rounds_executed": int(self.rounds_executed),
            "rounds_to_completion": (
                None
                if self.rounds_to_completion is None
                else int(self.rounds_to_completion)
            ),
            "total_push_transmissions": int(self.total_push_transmissions),
            "total_pull_transmissions": int(self.total_pull_transmissions),
            "total_channels_opened": int(self.total_channels_opened),
            "total_lost_transmissions": int(self.total_lost_transmissions),
            "final_informed": int(self.final_informed),
            "history": [record.to_dict() for record in self.history],
            "phase_transmissions": {
                str(phase): int(count)
                for phase, count in self.phase_transmissions.items()
            },
            "metadata": copy.deepcopy(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunResult":
        """Inverse of :meth:`to_dict`; round-trips bit-exactly."""
        return cls(
            n=data["n"],
            protocol=data["protocol"],
            source=data["source"],
            success=data["success"],
            rounds_executed=data["rounds_executed"],
            rounds_to_completion=data.get("rounds_to_completion"),
            total_push_transmissions=data["total_push_transmissions"],
            total_pull_transmissions=data["total_pull_transmissions"],
            total_channels_opened=data["total_channels_opened"],
            total_lost_transmissions=data["total_lost_transmissions"],
            final_informed=data["final_informed"],
            history=[
                RoundRecord.from_dict(record) for record in data.get("history", [])
            ],
            phase_transmissions=dict(data.get("phase_transmissions", {})),
            metadata=copy.deepcopy(dict(data.get("metadata", {}))),
        )


@dataclass(frozen=True)
class SummaryStatistic:
    """Mean / spread summary of one scalar metric across repeated runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SummaryStatistic":
        if not values:
            raise ValueError("cannot summarise an empty sequence")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )


@dataclass(frozen=True)
class RunAggregate:
    """Summary of several :class:`RunResult` objects for the same setting."""

    n: int
    protocol: str
    runs: int
    success_rate: float
    rounds: SummaryStatistic
    transmissions: SummaryStatistic
    transmissions_per_node: SummaryStatistic
    channels_per_node: SummaryStatistic


def aggregate_runs(results: Sequence[RunResult]) -> RunAggregate:
    """Summarise repeated runs of one configuration.

    Runs that did not complete contribute their executed round count to the
    round statistic (a conservative lower bound) and count against the
    success rate.
    """
    if not results:
        raise ValueError("aggregate_runs requires at least one result")
    first = results[0]
    rounds = [
        float(r.rounds_to_completion if r.rounds_to_completion is not None else r.rounds_executed)
        for r in results
    ]
    return RunAggregate(
        n=first.n,
        protocol=first.protocol,
        runs=len(results),
        success_rate=sum(1 for r in results if r.success) / len(results),
        rounds=SummaryStatistic.from_values(rounds),
        transmissions=SummaryStatistic.from_values(
            [float(r.total_transmissions) for r in results]
        ),
        transmissions_per_node=SummaryStatistic.from_values(
            [r.transmissions_per_node for r in results]
        ),
        channels_per_node=SummaryStatistic.from_values(
            [r.channels_per_node for r in results]
        ),
    )
