"""Lightweight tracing hooks for the round engine.

Experiments usually only need the aggregate metrics in
:mod:`repro.core.metrics`, but debugging a protocol or producing the
phase-dynamics figure benefits from observing individual events.  A
:class:`Tracer` receives callbacks from the engine; the default
:class:`NullTracer` ignores everything at negligible cost, and
:class:`RecordingTracer` stores events in memory for inspection in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Tracer", "NullTracer", "RecordingTracer", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    round_index: int
    kind: str
    subject: int
    other: int = -1
    detail: str = ""


class Tracer:
    """Interface for observing engine events.

    Subclasses override whichever hooks they care about; every hook has a
    default no-op implementation so tracers stay small.
    """

    def on_round_start(self, round_index: int, informed: int) -> None:
        """Called before channels are opened for ``round_index``."""

    def on_channel_open(self, round_index: int, caller: int, callee: int) -> None:
        """Called for every channel opened."""

    def on_transmission(
        self, round_index: int, sender: int, receiver: int, direction: str, lost: bool
    ) -> None:
        """Called for every attempted transmission (``direction`` is push/pull)."""

    def on_node_informed(self, round_index: int, node_id: int) -> None:
        """Called when a node commits to the informed state."""

    def on_round_end(self, round_index: int, informed: int) -> None:
        """Called after the round's deliveries are committed."""


class NullTracer(Tracer):
    """A tracer that does nothing (the engine default)."""


class RecordingTracer(Tracer):
    """A tracer that stores every event, for tests and debugging."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_round_start(self, round_index: int, informed: int) -> None:
        self.events.append(
            TraceEvent(round_index=round_index, kind="round_start", subject=informed)
        )

    def on_channel_open(self, round_index: int, caller: int, callee: int) -> None:
        self.events.append(
            TraceEvent(round_index=round_index, kind="channel", subject=caller, other=callee)
        )

    def on_transmission(
        self, round_index: int, sender: int, receiver: int, direction: str, lost: bool
    ) -> None:
        detail = f"{direction}{':lost' if lost else ''}"
        self.events.append(
            TraceEvent(
                round_index=round_index,
                kind="transmission",
                subject=sender,
                other=receiver,
                detail=detail,
            )
        )

    def on_node_informed(self, round_index: int, node_id: int) -> None:
        self.events.append(
            TraceEvent(round_index=round_index, kind="informed", subject=node_id)
        )

    def on_round_end(self, round_index: int, informed: int) -> None:
        self.events.append(
            TraceEvent(round_index=round_index, kind="round_end", subject=informed)
        )

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]
