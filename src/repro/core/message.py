"""Broadcast messages and multi-message payloads.

The paper analyses the dissemination of a single message ``M`` created at
round 0, but the model explicitly allows every node to create an arbitrary
number of messages per round and to combine all messages due for push (or
pull) into a single payload per channel.  This module provides both views:

* :class:`Message` — an immutable record of one broadcast message.
* :class:`Payload` — the combined set of message ids travelling over one
  channel in one round (used for transmission accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

__all__ = ["Message", "Payload"]


@dataclass(frozen=True, order=True)
class Message:
    """A single broadcast message.

    Attributes
    ----------
    message_id:
        Unique identifier; experiments use small integers.
    origin:
        Node id of the creator.
    created_round:
        Round in which the message entered the system.  The protocols in the
        paper make their push/pull decisions purely as a function of the
        message *age* (current round minus ``created_round``), which keeps
        them address-oblivious.
    size:
        Abstract size in bytes, used only by the P2P replicated-database
        application to report bandwidth.
    """

    message_id: int
    origin: int
    created_round: int = 0
    size: int = 1

    def age(self, current_round: int) -> int:
        """Age of the message at ``current_round`` (0 in its creation round)."""
        return current_round - self.created_round


@dataclass(frozen=True)
class Payload:
    """The set of messages carried over one channel in one direction.

    Transmission accounting in the paper (following Karp et al.) charges one
    transmission per message per channel use; :attr:`transmission_count`
    exposes exactly that number.
    """

    message_ids: FrozenSet[int] = field(default_factory=frozenset)

    @classmethod
    def of(cls, message_ids: Iterable[int]) -> "Payload":
        """Build a payload from any iterable of message ids."""
        return cls(message_ids=frozenset(message_ids))

    @property
    def transmission_count(self) -> int:
        """Number of per-message transmissions this payload accounts for."""
        return len(self.message_ids)

    def is_empty(self) -> bool:
        """True if the payload carries no messages."""
        return not self.message_ids

    def merged_with(self, other: "Payload") -> "Payload":
        """A new payload carrying the union of both message sets."""
        return Payload(message_ids=self.message_ids | other.message_ids)
