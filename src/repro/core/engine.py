"""The synchronous round engine of the random phone call model.

One :class:`RoundEngine` instance runs one broadcast of one message over one
graph with one protocol.  Each round proceeds exactly as in the paper's model:

1. (optional) churn mutates the network;
2. every node opens channels to ``fanout`` distinct random neighbours;
3. nodes that want to **push** send the message over their outgoing channels,
   nodes that want to **pull** send it over their incoming channels;
4. deliveries are committed — a node that received its first copy this round
   counts as informed from the *next* round on;
5. all channels close.

The engine tracks transmissions, channels, and the informed curve, and stops
either when the protocol's horizon runs out or (optionally) as soon as every
node is informed.

Performance note: in rounds where the protocol performs no pull, channels
opened by nodes that will not push cannot carry information, so the engine
skips sampling them and accounts for their channel count arithmetically.  This
keeps the per-round cost proportional to the number of *transmitting* nodes,
which is what makes ``n ≈ 10⁵`` sweeps practical in pure Python.

Beyond that scale, :func:`run_broadcast` transparently dispatches to the bulk
NumPy engine (:mod:`repro.core.engine_vectorized`) whenever the protocol and
run configuration allow it — see ``SimulationConfig.engine`` for the
``"auto" | "scalar" | "vectorized"`` knob and the vectorized module docstring
for the dispatch rules.  Instantiating :class:`RoundEngine` directly always
runs the scalar path.
"""

from __future__ import annotations

from typing import Optional

from ..failures.churn import ChurnModel, NoChurn
from ..failures.message_loss import FailureModel, IndependentLoss, ReliableDelivery
from ..graphs.base import Graph
from ..protocols.base import BroadcastProtocol
from .channels import ChannelSet
from .config import SimulationConfig
from .engine_vectorized import (
    BatchedVectorizedRoundEngine,
    VectorizedRoundEngine,
    vectorization_unsupported_reason,
)
from .errors import SimulationError
from .metrics import RoundRecord, RunResult
from .node import StateTable
from .rng import RandomSource
from .trace import NullTracer, Tracer

__all__ = ["RoundEngine", "run_broadcast", "run_broadcast_batch"]


class RoundEngine:
    """Drives one protocol over one graph for one broadcast message.

    Parameters
    ----------
    graph:
        The network.  The engine mutates it only when a churn model is
        supplied; callers who reuse graphs across runs should pass a copy in
        that case.
    protocol:
        The decision logic (see :class:`repro.protocols.base.BroadcastProtocol`).
    config:
        Engine-level options; :class:`repro.core.config.SimulationConfig` defaults
        are failure-free with early stopping.
    seed:
        Master seed; all randomness of the run derives from it.
    failure_model:
        Overrides the loss probabilities in ``config`` when supplied.
    churn_model:
        Membership changes applied at the start of every round.
    tracer:
        Optional event observer (defaults to a no-op tracer).
    """

    def __init__(
        self,
        graph: Graph,
        protocol: BroadcastProtocol,
        config: Optional[SimulationConfig] = None,
        seed: int = 0,
        failure_model: Optional[FailureModel] = None,
        churn_model: Optional[ChurnModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.protocol = protocol
        self.config = config if config is not None else SimulationConfig()
        self.rng = RandomSource(seed=seed, name="engine")
        self._protocol_rng = self.rng.spawn("protocol")
        self._failure_rng = self.rng.spawn("failures")
        self._churn_rng = self.rng.spawn("churn")
        self.tracer = tracer if tracer is not None else NullTracer()
        self.churn_model = churn_model if churn_model is not None else NoChurn()
        if failure_model is not None:
            self.failure_model = failure_model
        elif (
            self.config.message_loss_probability > 0
            or self.config.channel_failure_probability > 0
        ):
            self.failure_model = IndependentLoss(
                transmission_loss_probability=self.config.message_loss_probability,
                channel_failure_probability=self.config.channel_failure_probability,
            )
        else:
            self.failure_model = ReliableDelivery()

    # -- public API ---------------------------------------------------------------

    def run(self, source: int = 0) -> RunResult:
        """Broadcast a single message created at ``source`` in round 0."""
        if source not in self.graph:
            raise SimulationError(f"source node {source} is not in the graph")

        n_initial = self.graph.node_count
        self.protocol.reset()
        self.churn_model.reset()
        states = StateTable(n=n_initial, source=source)
        horizon = self.protocol.horizon()
        if self.config.max_rounds is not None:
            horizon = min(horizon, self.config.max_rounds)

        history: list = []
        phase_transmissions: dict = {}
        totals = {
            "push": 0,
            "pull": 0,
            "channels": 0,
            "lost": 0,
        }
        rounds_to_completion: Optional[int] = None
        rounds_executed = 0

        for round_index in range(1, horizon + 1):
            rounds_executed = round_index
            record = self._run_round(round_index, states)
            totals["push"] += record.push_transmissions
            totals["pull"] += record.pull_transmissions
            totals["channels"] += record.channels_opened
            totals["lost"] += record.lost_transmissions
            if record.phase:
                phase_transmissions[record.phase] = (
                    phase_transmissions.get(record.phase, 0) + record.transmissions
                )
            if self.config.collect_round_history:
                history.append(record)

            if rounds_to_completion is None and states.all_informed():
                rounds_to_completion = round_index
                if self.config.stop_when_informed:
                    break
            if self.protocol.finished(round_index, states):
                break

        success = states.all_informed()
        return RunResult(
            n=n_initial,
            protocol=self.protocol.name,
            source=source,
            success=success,
            rounds_executed=rounds_executed,
            rounds_to_completion=rounds_to_completion,
            total_push_transmissions=totals["push"],
            total_pull_transmissions=totals["pull"],
            total_channels_opened=totals["channels"],
            total_lost_transmissions=totals["lost"],
            final_informed=states.informed_count,
            history=history,
            phase_transmissions=phase_transmissions,
            metadata={
                "protocol": self.protocol.describe(),
                "failure_model": self.failure_model.describe(),
                "churn_model": self.churn_model.describe(),
                "final_node_count": self.graph.node_count,
                "engine": "scalar",
            },
        )

    # -- round mechanics -------------------------------------------------------------

    def _run_round(self, round_index: int, states: StateTable) -> RoundRecord:
        graph = self.graph
        protocol = self.protocol

        if not isinstance(self.churn_model, NoChurn):
            self.churn_model.apply(round_index, graph, states, self._churn_rng)

        informed_before = states.informed_count
        self.tracer.on_round_start(round_index, informed_before)
        protocol.on_round_start(round_index, states)

        push_active = protocol.push_round(round_index)
        pull_active = protocol.pull_round(round_index)

        channels, channels_opened = self._open_channels(
            round_index, states, push_active, pull_active
        )

        push_transmissions = 0
        pull_transmissions = 0
        lost_transmissions = 0

        if push_active:
            for channel in channels:
                caller_state = states[channel.caller]
                if not caller_state.informed or not protocol.wants_push(
                    caller_state, round_index
                ):
                    continue
                push_transmissions += 1
                lost = self.failure_model.transmission_lost(self._failure_rng)
                self.tracer.on_transmission(
                    round_index, channel.caller, channel.callee, "push", lost
                )
                if lost:
                    lost_transmissions += 1
                elif states.contains(channel.callee):
                    states[channel.callee].deliver(round_index)

        if pull_active:
            for channel in channels:
                callee_state = states[channel.callee]
                if not callee_state.informed or not protocol.wants_pull(
                    callee_state, round_index
                ):
                    continue
                pull_transmissions += 1
                lost = self.failure_model.transmission_lost(self._failure_rng)
                self.tracer.on_transmission(
                    round_index, channel.callee, channel.caller, "pull", lost
                )
                if lost:
                    lost_transmissions += 1
                elif states.contains(channel.caller):
                    states[channel.caller].deliver(round_index)

        if protocol.needs_exchange_hook:
            for channel in channels:
                protocol.on_channel_exchange(
                    states[channel.caller], states[channel.callee], round_index
                )

        newly_informed = states.commit_round()
        for node_id in newly_informed:
            self.tracer.on_node_informed(round_index, node_id)
        protocol.on_round_committed(round_index, states, newly_informed)
        self.tracer.on_round_end(round_index, states.informed_count)

        return RoundRecord(
            round_index=round_index,
            informed_before=informed_before,
            informed_after=states.informed_count,
            push_transmissions=push_transmissions,
            pull_transmissions=pull_transmissions,
            channels_opened=channels_opened,
            lost_transmissions=lost_transmissions,
            phase=protocol.phase_label(round_index),
        )

    def _open_channels(
        self,
        round_index: int,
        states: StateTable,
        push_active: bool,
        pull_active: bool,
    ):
        """Open this round's channels; return ``(ChannelSet, opened_count)``.

        ``opened_count`` reflects the full phone-call model (every node calls
        its fanout), even when the engine skips sampling calls that cannot
        carry information this round.
        """
        graph = self.graph
        protocol = self.protocol
        channels = ChannelSet()
        channels_opened = 0

        present = [node for node in graph.iter_nodes() if states.contains(node)]
        if pull_active:
            sampling_nodes = present
        else:
            sampling_nodes = []
            for node in present:
                state = states[node]
                degree = graph.degree(node)
                channels_opened += min(protocol.fanout(state, round_index), degree)
                if (
                    push_active
                    and state.informed
                    and protocol.wants_push(state, round_index)
                ):
                    sampling_nodes.append(node)
            # Channels of sampling nodes were already counted arithmetically
            # above; reset and let the sampling loop recount them exactly.
            channels_opened -= sum(
                min(protocol.fanout(states[node], round_index), graph.degree(node))
                for node in sampling_nodes
            )

        for node in sampling_nodes:
            state = states[node]
            neighbours = graph.neighbors(node)
            targets = protocol.select_call_targets(
                state, neighbours, round_index, self._protocol_rng
            )
            for target in targets:
                channels_opened += 1
                if target == node or not states.contains(target):
                    continue
                if self.failure_model.channel_fails(self._failure_rng):
                    continue
                channels.open(node, target)
                self.tracer.on_channel_open(round_index, node, target)

        return channels, channels_opened


def run_broadcast(
    graph: Graph,
    protocol: BroadcastProtocol,
    source: int = 0,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    failure_model: Optional[FailureModel] = None,
    churn_model: Optional[ChurnModel] = None,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """Run one broadcast, dispatching to the fastest engine that applies.

    ``config.engine`` selects the execution strategy: ``"auto"`` (default)
    uses the bulk NumPy engine when the protocol and configuration support it
    and falls back to the scalar engine otherwise; ``"scalar"`` and
    ``"vectorized"`` force one path (the latter raises
    :class:`SimulationError`, naming the obstacle, if vectorization is
    impossible).  Both engines produce the same :class:`RunResult` shape;
    ``result.metadata["engine"]`` records which one ran.
    """
    cfg = config if config is not None else SimulationConfig()
    if cfg.engine != "scalar":
        reason = vectorization_unsupported_reason(
            graph, protocol, cfg, failure_model, churn_model, tracer
        )
        if reason is None:
            return VectorizedRoundEngine(
                graph=graph,
                protocol=protocol,
                config=cfg,
                seed=seed,
                failure_model=failure_model,
                churn_model=churn_model,
                tracer=tracer,
            ).run(source=source)
        if cfg.engine == "vectorized":
            raise SimulationError(f"engine='vectorized' requested but {reason}")
    engine = RoundEngine(
        graph=graph,
        protocol=protocol,
        config=config,
        seed=seed,
        failure_model=failure_model,
        churn_model=churn_model,
        tracer=tracer,
    )
    return engine.run(source=source)


def run_broadcast_batch(
    graph: Graph,
    protocol: BroadcastProtocol,
    seeds,
    source: int = 0,
    config: Optional[SimulationConfig] = None,
    failure_model: Optional[FailureModel] = None,
    churn_model: Optional[ChurnModel] = None,
) -> list:
    """Run one broadcast per seed, batched into a single NumPy program.

    The batched engine holds all replications as ``(R, n)`` state arrays and
    amortises per-round bookkeeping across them; each replication keeps its
    own generator streams, so every returned :class:`RunResult` is
    bit-identical to ``run_broadcast(..., seed=seeds[r])`` under the
    vectorized engine (the batch only adds ``metadata["batch_size"]``).

    One ``protocol`` instance drives all replications (it is reset at the
    start of the batch).  When the combination cannot be batched the function
    falls back to a per-seed :func:`run_broadcast` loop — churn in particular
    always takes this path (membership diverges per replication), running
    each seed on the single-run vectorized engine when admissible.  With
    ``config.engine == "vectorized"`` the function raises, like the
    single-run dispatcher, only when the per-seed path cannot vectorize
    either.
    """
    cfg = config if config is not None else SimulationConfig()
    single_reason: Optional[str] = "scalar engine forced"
    if cfg.engine != "scalar":
        reason = vectorization_unsupported_reason(
            graph, protocol, cfg, failure_model, churn_model, None, batched=True
        )
        if reason is None:
            return BatchedVectorizedRoundEngine(
                graph=graph,
                protocol=protocol,
                seeds=seeds,
                config=cfg,
                failure_model=failure_model,
            ).run(source=source)
        single_reason = vectorization_unsupported_reason(
            graph, protocol, cfg, failure_model, churn_model, None
        )
        if cfg.engine == "vectorized" and single_reason is not None:
            raise SimulationError(f"engine='vectorized' requested but {reason}")
    # Scalar churn runs mutate the graph, so each seed gets its own copy;
    # the vectorized engine works on a private CSR copy and needs none.
    dynamic = churn_model is not None and not isinstance(churn_model, NoChurn)
    copy_per_seed = dynamic and single_reason is not None
    return [
        run_broadcast(
            graph=graph.copy() if copy_per_seed else graph,
            protocol=protocol,
            source=source,
            seed=seed,
            config=cfg,
            failure_model=failure_model,
            churn_model=churn_model,
        )
        for seed in seeds
    ]
