"""Core simulation machinery: RNG, node state, channels, round engine, metrics."""

from .channels import Channel, ChannelSet
from .config import SimulationConfig
from .engine import RoundEngine, run_broadcast, run_broadcast_batch
from .engine_vectorized import (
    BatchedVectorizedRoundEngine,
    VectorizedRoundEngine,
    vectorization_unsupported_reason,
)
from .errors import (
    ConfigurationError,
    ExperimentError,
    GraphGenerationError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .message import Message, Payload
from .metrics import RoundRecord, RunAggregate, RunResult, aggregate_runs
from .node import NodeState, StateTable, VectorState
from .rng import RandomSource, derive_seed
from .trace import NullTracer, RecordingTracer, TraceEvent, Tracer

__all__ = [
    "RandomSource",
    "derive_seed",
    "Message",
    "Payload",
    "NodeState",
    "StateTable",
    "VectorState",
    "Channel",
    "ChannelSet",
    "SimulationConfig",
    "RoundEngine",
    "VectorizedRoundEngine",
    "BatchedVectorizedRoundEngine",
    "vectorization_unsupported_reason",
    "run_broadcast",
    "run_broadcast_batch",
    "RoundRecord",
    "RunResult",
    "RunAggregate",
    "aggregate_runs",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "ReproError",
    "ConfigurationError",
    "GraphGenerationError",
    "ProtocolError",
    "SimulationError",
    "ExperimentError",
]
