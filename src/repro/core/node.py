"""Per-node protocol state.

The simulator keeps one :class:`NodeState` per node.  Protocols read and
update it through a small, explicit API; the round engine only ever touches
the delivery buffer (:meth:`NodeState.deliver`) and the end-of-round commit
(:meth:`NodeState.commit_round`), which makes the "messages received in round
``t`` only take effect in round ``t + 1``" semantics of the paper explicit.

:class:`VectorState` is the struct-of-arrays counterpart used by the
vectorized engine (:mod:`repro.core.engine_vectorized`): the same four fields
— informed flag, informed round, active flag, staged delivery — held as NumPy
arrays over all nodes so a round is a handful of bulk operations instead of
``n`` object manipulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

__all__ = ["NodeState", "StateTable", "VectorState"]


@dataclass
class NodeState:
    """Mutable broadcast state of a single node for a single message.

    Attributes
    ----------
    node_id:
        Identifier of the node in the graph (0-based).
    informed:
        Whether the node currently knows the message.
    informed_round:
        Round in which the node became informed (``0`` for the source,
        ``None`` while uninformed).  Newly delivered messages are staged in
        ``_pending_round`` and only promoted by :meth:`commit_round`, matching
        the synchronous model where a node cannot forward a message in the
        same round it receives it.
    active:
        Phase-4 "active" flag used by Algorithm 1: nodes informed during
        Phase 3 or 4 switch to active and keep pushing until the horizon.
    memory:
        Recently contacted neighbours, used only by the sequentialised
        variant of the model (avoid the last three partners).
    """

    node_id: int
    informed: bool = False
    informed_round: Optional[int] = None
    active: bool = False
    memory: list = field(default_factory=list)
    _pending_round: Optional[int] = field(default=None, repr=False)

    # -- lifecycle -----------------------------------------------------------

    def make_source(self) -> None:
        """Mark this node as the message creator (informed at round 0)."""
        self.informed = True
        self.informed_round = 0

    def deliver(self, current_round: int) -> bool:
        """Stage delivery of the message during ``current_round``.

        Returns True if this is the first copy the node has seen this round
        and it was previously uninformed (useful for duplicate accounting).
        The node does not count as informed for decision purposes until
        :meth:`commit_round` runs at the end of the round.
        """
        if self.informed:
            return False
        if self._pending_round is None:
            self._pending_round = current_round
            return True
        return False

    def commit_round(self) -> bool:
        """Promote a staged delivery at the end of a round.

        Returns True if the node transitioned from uninformed to informed.
        """
        if self.informed or self._pending_round is None:
            return False
        self.informed = True
        self.informed_round = self._pending_round
        self._pending_round = None
        return True

    # -- queries -------------------------------------------------------------

    def newly_informed_in(self, round_index: int) -> bool:
        """True if the node became informed exactly in ``round_index``."""
        return self.informed and self.informed_round == round_index

    def remember_partner(self, partner: int, window: int) -> None:
        """Record ``partner`` in the bounded contact memory (FIFO window)."""
        self.memory.append(partner)
        if len(self.memory) > window:
            del self.memory[: len(self.memory) - window]


class StateTable:
    """The collection of all node states for one broadcast run.

    Provides the aggregate queries that protocols and metrics need (informed
    count, newly informed set) without exposing engine internals.
    """

    def __init__(self, n: int, source: int) -> None:
        if not 0 <= source < n:
            raise ValueError(f"source {source} outside [0, {n})")
        self._states: Dict[int, NodeState] = {
            node_id: NodeState(node_id=node_id) for node_id in range(n)
        }
        self._states[source].make_source()
        self._informed_count = 1
        self._dropped_pending_deliveries = 0
        self.source = source

    # -- element access -------------------------------------------------------

    def __getitem__(self, node_id: int) -> NodeState:
        return self._states[node_id]

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self):
        return iter(self._states.values())

    # -- node membership (churn support) --------------------------------------

    def add_node(self, node_id: int) -> NodeState:
        """Register a node that joined the network mid-run (uninformed)."""
        if node_id in self._states:
            raise ValueError(f"node {node_id} already present")
        state = NodeState(node_id=node_id)
        self._states[node_id] = state
        return state

    def remove_node(self, node_id: int) -> NodeState:
        """Remove a node that left the network mid-run.

        A departing node may hold a delivery staged earlier in the same round
        (``deliver`` ran, ``commit_round`` has not).  That transmission was
        already counted by the engine but will never produce an informed node;
        it is recorded in :attr:`dropped_pending_deliveries` so transmission
        accounting identities can distinguish "lost to failure" from "lost to
        churn".  The removed state is returned with its staged delivery
        cleared, so re-adding the same id later starts from a clean slate.
        """
        state = self._states.pop(node_id)
        if state.informed:
            self._informed_count -= 1
        elif state._pending_round is not None:
            self._dropped_pending_deliveries += 1
            state._pending_round = None
        return state

    def contains(self, node_id: int) -> bool:
        """True if ``node_id`` currently belongs to the network."""
        return node_id in self._states

    def node_ids(self) -> list:
        """All current node ids (sorted for determinism)."""
        return sorted(self._states)

    # -- aggregate queries -----------------------------------------------------

    @property
    def informed_count(self) -> int:
        """Number of currently informed nodes."""
        return self._informed_count

    @property
    def dropped_pending_deliveries(self) -> int:
        """Staged deliveries that vanished because their node departed."""
        return self._dropped_pending_deliveries

    @property
    def uninformed_count(self) -> int:
        """Number of currently uninformed nodes."""
        return len(self._states) - self._informed_count

    def all_informed(self) -> bool:
        """True if every present node is informed."""
        return self._informed_count == len(self._states)

    def informed_ids(self) -> Set[int]:
        """Ids of informed nodes (new set, safe to mutate)."""
        return {s.node_id for s in self._states.values() if s.informed}

    def uninformed_ids(self) -> Set[int]:
        """Ids of uninformed nodes (new set, safe to mutate)."""
        return {s.node_id for s in self._states.values() if not s.informed}

    def commit_round(self) -> Set[int]:
        """Promote all staged deliveries; return ids newly informed."""
        newly = set()
        for state in self._states.values():
            if state.commit_round():
                newly.add(state.node_id)
        self._informed_count += len(newly)
        return newly


class VectorState:
    """Broadcast state of *all* nodes as NumPy arrays (struct-of-arrays).

    The vectorized engine's counterpart of :class:`StateTable`: one boolean
    array per flag instead of one :class:`NodeState` object per node.  The
    commit discipline is identical — deliveries stage into :attr:`pending`
    during a round and only promote at :meth:`commit_round` — so "a node
    cannot forward a message in the round it receives it" holds bit-for-bit.

    With ``batch=R`` every array gains a leading replication axis and the
    object holds the state of ``R`` *independent* broadcast runs over the same
    graph as ``(R, n)`` arrays (one row per replication, every row starting
    from the same source).  Aggregate queries then return per-row arrays
    instead of scalars.  Protocol bulk hooks are written against elementwise
    semantics, so the same hook code serves both shapes; hooks that need an
    explicitly shaped array should use :attr:`shape` rather than ``n``.

    Protocol bulk hooks (``vector_wants_push`` etc.) receive this object and
    must treat the arrays as read-only; only the engine and the commit hook
    mutate them.

    Attributes
    ----------
    informed:
        ``bool[n]`` (or ``bool[R, n]``) — node currently knows the message.
    informed_round:
        ``int64`` of the same shape — round the node became informed (``0``
        for the source, ``-1`` while uninformed).
    active:
        Algorithm 1's Phase-4 "active" flag, same shape.
    pending:
        A delivery staged this round, cleared by :meth:`commit_round`.
    """

    __slots__ = ("n", "source", "batch", "informed", "informed_round", "active", "pending", "_informed_count")

    def __init__(self, n: int, source: int, batch: Optional[int] = None) -> None:
        if not 0 <= source < n:
            raise ValueError(f"source {source} outside [0, {n})")
        if batch is not None and batch < 1:
            raise ValueError(f"batch size must be >= 1, got {batch}")
        self.n = n
        self.source = source
        self.batch = batch
        shape = (n,) if batch is None else (batch, n)
        self.informed = np.zeros(shape, dtype=bool)
        self.informed_round = np.full(shape, -1, dtype=np.int64)
        self.active = np.zeros(shape, dtype=bool)
        self.pending = np.zeros(shape, dtype=bool)
        self.informed[..., source] = True
        self.informed_round[..., source] = 0
        self._informed_count = 1 if batch is None else np.ones(batch, dtype=np.int64)

    # -- aggregate queries -----------------------------------------------------

    @property
    def shape(self):
        """Shape of the state arrays: ``(n,)`` or ``(R, n)`` for a batch."""
        return self.informed.shape

    @property
    def informed_count(self):
        """Informed nodes: an int, or an ``int64[R]`` array for a batch."""
        return self._informed_count

    @property
    def uninformed_count(self):
        """Uninformed nodes: an int, or an ``int64[R]`` array for a batch."""
        return self.n - self._informed_count

    def all_informed(self):
        """Whether every node is informed (per replication for a batch)."""
        return self._informed_count == self.n

    # -- round lifecycle -------------------------------------------------------

    def commit_round(self, round_index: int) -> np.ndarray:
        """Promote all staged deliveries; return the flat ids newly informed.

        The returned indices address ``informed.reshape(-1)`` — for the
        unbatched shape they are plain node ids, for a batch they encode
        ``row * n + node``.  Hooks that flip per-node flags should therefore
        index through ``array.reshape(-1)`` (a view for these contiguous
        arrays), which is shape-agnostic.
        """
        newly_mask = self.pending & ~self.informed
        newly = np.flatnonzero(newly_mask)
        if newly.size:
            self.informed.reshape(-1)[newly] = True
            self.informed_round.reshape(-1)[newly] = round_index
            if self.batch is None:
                self._informed_count += int(newly.size)
            else:
                self._informed_count += newly_mask.sum(axis=1)
        self.pending.fill(False)
        return newly

    def commit_delivered(self, delivered: np.ndarray, round_index: int) -> np.ndarray:
        """Commit a round's deliveries given directly as flat indices.

        Equivalent to staging ``delivered`` into :attr:`pending` and calling
        :meth:`commit_round` (same newly-informed set, in the same ascending
        order) — the batched engine's commit path.  Sparse delivery sets are
        deduplicated by sorting (``O(k log k)``), dense ones via the pending
        mask (``O(R·n)``); the crossover keeps the commit cheap both in early
        rounds (tiny ``k``) and in the endgame (few live replications).
        """
        total = self.informed.size
        if delivered.size * 4 >= total:
            self.pending.reshape(-1)[delivered] = True
            return self.commit_round(round_index)
        flat_informed = self.informed.reshape(-1)
        newly = delivered[~flat_informed[delivered]]
        if newly.size == 0:
            return newly
        newly = np.sort(newly)
        if newly.size > 1:
            keep = np.empty(newly.size, dtype=bool)
            keep[0] = True
            np.not_equal(newly[1:], newly[:-1], out=keep[1:])
            newly = newly[keep]
        flat_informed[newly] = True
        self.informed_round.reshape(-1)[newly] = round_index
        if self.batch is None:
            self._informed_count += int(newly.size)
        else:
            boundaries = np.arange(self.batch + 1, dtype=np.int64) * self.n
            self._informed_count += np.diff(np.searchsorted(newly, boundaries))
        return newly
