"""Per-node protocol state.

The simulator keeps one :class:`NodeState` per node.  Protocols read and
update it through a small, explicit API; the round engine only ever touches
the delivery buffer (:meth:`NodeState.deliver`) and the end-of-round commit
(:meth:`NodeState.commit_round`), which makes the "messages received in round
``t`` only take effect in round ``t + 1``" semantics of the paper explicit.

:class:`VectorState` is the struct-of-arrays counterpart used by the
vectorized engine (:mod:`repro.core.engine_vectorized`): the same four fields
— informed flag, informed round, active flag, staged delivery — held as NumPy
arrays over all nodes so a round is a handful of bulk operations instead of
``n`` object manipulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

__all__ = [
    "NodeState",
    "StateTable",
    "VectorState",
    "merge_sorted_disjoint",
    "remove_sorted_values",
]


def merge_sorted_disjoint(base: np.ndarray, newly: np.ndarray) -> np.ndarray:
    """Merge two sorted, disjoint index arrays into one sorted array.

    O(base + newly) — each ``newly`` entry lands after the ``base`` entries
    smaller than it plus the ``newly`` entries before it.  The engines and
    phase protocols use this to grow their sorted active sets incrementally
    instead of re-scanning a boolean plane every round.
    """
    if newly.size == 0:
        return base
    if base.size == 0:
        return newly.astype(base.dtype, copy=False) if base.dtype != newly.dtype else newly
    merged = np.empty(base.size + newly.size, dtype=base.dtype)
    mask = np.zeros(merged.size, dtype=bool)
    mask[np.searchsorted(base, newly) + np.arange(newly.size)] = True
    merged[mask] = newly
    merged[~mask] = base
    return merged


def remove_sorted_values(base: np.ndarray, drop: np.ndarray) -> np.ndarray:
    """Remove the values of sorted ``drop`` from sorted ``base``.

    O(drop · log base) via binary search — values of ``drop`` absent from
    ``base`` are ignored.  The membership layer uses this to evict departed
    node ids from the engines' sorted index pools without rescanning them.
    """
    if base.size == 0 or drop.size == 0:
        return base
    positions = np.searchsorted(base, drop)
    in_range = positions < base.size
    positions = positions[in_range]
    hits = positions[base[positions] == drop[in_range]]
    if hits.size == 0:
        return base
    keep = np.ones(base.size, dtype=bool)
    keep[hits] = False
    return base[keep]


@dataclass
class NodeState:
    """Mutable broadcast state of a single node for a single message.

    Attributes
    ----------
    node_id:
        Identifier of the node in the graph (0-based).
    informed:
        Whether the node currently knows the message.
    informed_round:
        Round in which the node became informed (``0`` for the source,
        ``None`` while uninformed).  Newly delivered messages are staged in
        ``_pending_round`` and only promoted by :meth:`commit_round`, matching
        the synchronous model where a node cannot forward a message in the
        same round it receives it.
    active:
        Phase-4 "active" flag used by Algorithm 1: nodes informed during
        Phase 3 or 4 switch to active and keep pushing until the horizon.
    memory:
        Recently contacted neighbours, used only by the sequentialised
        variant of the model (avoid the last three partners).
    """

    node_id: int
    informed: bool = False
    informed_round: Optional[int] = None
    active: bool = False
    memory: list = field(default_factory=list)
    _pending_round: Optional[int] = field(default=None, repr=False)

    # -- lifecycle -----------------------------------------------------------

    def make_source(self) -> None:
        """Mark this node as the message creator (informed at round 0)."""
        self.informed = True
        self.informed_round = 0

    def deliver(self, current_round: int) -> bool:
        """Stage delivery of the message during ``current_round``.

        Returns True if this is the first copy the node has seen this round
        and it was previously uninformed (useful for duplicate accounting).
        The node does not count as informed for decision purposes until
        :meth:`commit_round` runs at the end of the round.
        """
        if self.informed:
            return False
        if self._pending_round is None:
            self._pending_round = current_round
            return True
        return False

    def commit_round(self) -> bool:
        """Promote a staged delivery at the end of a round.

        Returns True if the node transitioned from uninformed to informed.
        """
        if self.informed or self._pending_round is None:
            return False
        self.informed = True
        self.informed_round = self._pending_round
        self._pending_round = None
        return True

    # -- queries -------------------------------------------------------------

    def newly_informed_in(self, round_index: int) -> bool:
        """True if the node became informed exactly in ``round_index``."""
        return self.informed and self.informed_round == round_index

    def remember_partner(self, partner: int, window: int) -> None:
        """Record ``partner`` in the bounded contact memory (FIFO window)."""
        self.memory.append(partner)
        if len(self.memory) > window:
            del self.memory[: len(self.memory) - window]


class StateTable:
    """The collection of all node states for one broadcast run.

    Provides the aggregate queries that protocols and metrics need (informed
    count, newly informed set) without exposing engine internals.
    """

    def __init__(self, n: int, source: int) -> None:
        if not 0 <= source < n:
            raise ValueError(f"source {source} outside [0, {n})")
        self._states: Dict[int, NodeState] = {
            node_id: NodeState(node_id=node_id) for node_id in range(n)
        }
        self._states[source].make_source()
        self._informed_count = 1
        self._dropped_pending_deliveries = 0
        self.source = source

    # -- element access -------------------------------------------------------

    def __getitem__(self, node_id: int) -> NodeState:
        return self._states[node_id]

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self):
        return iter(self._states.values())

    # -- node membership (churn support) --------------------------------------

    def add_node(self, node_id: int) -> NodeState:
        """Register a node that joined the network mid-run (uninformed)."""
        if node_id in self._states:
            raise ValueError(f"node {node_id} already present")
        state = NodeState(node_id=node_id)
        self._states[node_id] = state
        return state

    def remove_node(self, node_id: int) -> NodeState:
        """Remove a node that left the network mid-run.

        A departing node may hold a delivery staged earlier in the same round
        (``deliver`` ran, ``commit_round`` has not).  That transmission was
        already counted by the engine but will never produce an informed node;
        it is recorded in :attr:`dropped_pending_deliveries` so transmission
        accounting identities can distinguish "lost to failure" from "lost to
        churn".  The removed state is returned with its staged delivery
        cleared, so re-adding the same id later starts from a clean slate.
        """
        state = self._states.pop(node_id)
        if state.informed:
            self._informed_count -= 1
        elif state._pending_round is not None:
            self._dropped_pending_deliveries += 1
            state._pending_round = None
        return state

    def contains(self, node_id: int) -> bool:
        """True if ``node_id`` currently belongs to the network."""
        return node_id in self._states

    def node_ids(self) -> list:
        """All current node ids (sorted for determinism)."""
        return sorted(self._states)

    # -- aggregate queries -----------------------------------------------------

    @property
    def informed_count(self) -> int:
        """Number of currently informed nodes."""
        return self._informed_count

    @property
    def dropped_pending_deliveries(self) -> int:
        """Staged deliveries that vanished because their node departed."""
        return self._dropped_pending_deliveries

    @property
    def uninformed_count(self) -> int:
        """Number of currently uninformed nodes."""
        return len(self._states) - self._informed_count

    def all_informed(self) -> bool:
        """True if every present node is informed."""
        return self._informed_count == len(self._states)

    def informed_ids(self) -> Set[int]:
        """Ids of informed nodes (new set, safe to mutate)."""
        return {s.node_id for s in self._states.values() if s.informed}

    def uninformed_ids(self) -> Set[int]:
        """Ids of uninformed nodes (new set, safe to mutate)."""
        return {s.node_id for s in self._states.values() if not s.informed}

    def commit_round(self) -> Set[int]:
        """Promote all staged deliveries; return ids newly informed."""
        newly = set()
        for state in self._states.values():
            if state.commit_round():
                newly.add(state.node_id)
        self._informed_count += len(newly)
        return newly


class VectorState:
    """Broadcast state of *all* nodes as NumPy arrays (struct-of-arrays).

    The vectorized engine's counterpart of :class:`StateTable`: one boolean
    array per flag instead of one :class:`NodeState` object per node.  The
    commit discipline is identical — deliveries stage into :attr:`pending`
    during a round and only promote at :meth:`commit_round` — so "a node
    cannot forward a message in the round it receives it" holds bit-for-bit.

    With ``batch=R`` every array gains a leading replication axis and the
    object holds the state of ``R`` *independent* broadcast runs over the same
    graph as ``(R, n)`` arrays (one row per replication, every row starting
    from the same source).  Aggregate queries then return per-row arrays
    instead of scalars.  Protocol bulk hooks are written against elementwise
    semantics, so the same hook code serves both shapes; hooks that need an
    explicitly shaped array should use :attr:`shape` rather than ``n``.

    Protocol bulk hooks (``vector_wants_push`` etc.) receive this object and
    must treat the arrays as read-only; only the engine and the commit hook
    mutate them.

    Attributes
    ----------
    informed:
        ``bool[n]`` (or ``bool[R, n]``) — node currently knows the message.
    informed_round:
        ``int32`` of the same shape — round the node became informed (``0``
        for the source, ``-1`` while uninformed).
    active:
        Algorithm 1's Phase-4 "active" flag, same shape.  Allocated lazily on
        first access (most protocols never touch it).
    pending:
        A delivery staged this round, cleared by :meth:`commit_round`.  Also
        lazy: the active-set engines commit deliveries directly through
        :meth:`commit_delivered` and only fall back to the pending plane for
        dense rounds.

    With :meth:`enable_index_tracking` the state additionally maintains
    :attr:`informed_flat` — the ascending flat indices of all informed nodes —
    and :attr:`newly_flat` (last round's commits) by sorted merge, which is
    what lets the engines sample pushers in O(informed) instead of scanning
    all ``R·n`` flags every round.
    """

    __slots__ = (
        "n",
        "source",
        "batch",
        "informed",
        "informed_round",
        "_active",
        "_pending",
        "_informed_count",
        "_track_indices",
        "_informed_flat",
        "_newly_flat",
        "_alive",
        "_alive_count",
    )

    def __init__(self, n: int, source: int, batch: Optional[int] = None) -> None:
        if not 0 <= source < n:
            raise ValueError(f"source {source} outside [0, {n})")
        if batch is not None and batch < 1:
            raise ValueError(f"batch size must be >= 1, got {batch}")
        self.n = n
        self.source = source
        self.batch = batch
        shape = (n,) if batch is None else (batch, n)
        self.informed = np.zeros(shape, dtype=bool)
        # int32 suffices for round numbers; at n = 10⁶ this alone halves the
        # resident state (the old int64 array dominated the footprint).
        self.informed_round = np.full(shape, -1, dtype=np.int32)
        # `active` and `pending` are allocated on first touch: most protocols
        # never read the Algorithm-1 active flag, and the active-set engines
        # commit deliveries without staging through a pending mask.
        self._active: Optional[np.ndarray] = None
        self._pending: Optional[np.ndarray] = None
        self.informed[..., source] = True
        self.informed_round[..., source] = 0
        self._informed_count = 1 if batch is None else np.ones(batch, dtype=np.int64)
        self._track_indices = False
        self._informed_flat: Optional[np.ndarray] = None
        self._newly_flat: Optional[np.ndarray] = None
        self._alive: Optional[np.ndarray] = None
        self._alive_count: Optional[int] = None

    # -- lazily allocated flag planes -----------------------------------------

    @property
    def active(self) -> np.ndarray:
        """Algorithm 1's Phase-4 flag plane, allocated on first access."""
        if self._active is None:
            self._active = np.zeros(self.informed.shape, dtype=bool)
        return self._active

    @property
    def pending(self) -> np.ndarray:
        """The staged-delivery plane, allocated on first access."""
        if self._pending is None:
            self._pending = np.zeros(self.informed.shape, dtype=bool)
        return self._pending

    # -- sorted informed-index tracking (the engines' active set) --------------

    @property
    def index_dtype(self) -> np.dtype:
        """Narrowest dtype that can hold a flat index into the state."""
        return np.dtype(np.int32 if self.informed.size < 2**31 else np.int64)

    def enable_index_tracking(self) -> None:
        """Maintain the sorted flat-index vector of informed nodes.

        ``informed_flat`` then always equals
        ``np.flatnonzero(informed.reshape(-1))`` (ascending), updated by an
        O(informed + newly) sorted merge at every commit instead of an O(R·n)
        scan per round; ``newly_flat`` holds the indices committed by the most
        recent round (initially the source entries, which is exactly the
        "pushes in round 1" set of the phase-structured protocols).
        """
        self._track_indices = True
        dtype = self.index_dtype
        if self.batch is None:
            flat = np.array([self.source], dtype=dtype)
        else:
            flat = np.arange(self.batch, dtype=dtype) * self.n + self.source
        self._informed_flat = flat
        self._newly_flat = flat

    @property
    def informed_flat(self) -> np.ndarray:
        """Sorted flat indices of informed nodes (index tracking only)."""
        if self._informed_flat is None:
            raise RuntimeError("enable_index_tracking() has not been called")
        return self._informed_flat

    @property
    def newly_flat(self) -> np.ndarray:
        """Flat indices committed by the last round (index tracking only)."""
        if self._newly_flat is None:
            raise RuntimeError("enable_index_tracking() has not been called")
        return self._newly_flat

    #: Below this state size a full boolean scan rebuilds ``informed_flat``
    #: faster than the sorted merge's bookkeeping (a handful of fancy-index
    #: passes); above it the merge's O(informed) beats O(total)-per-round
    #: scans during the growth phase and avoids the int64 ``flatnonzero``
    #: output spiking the peak at million-node scale (the limit sits below
    #: n = 10⁶ on purpose).
    _REBUILD_SCAN_LIMIT = 1 << 19

    def _record_newly(self, newly: np.ndarray) -> None:
        if not self._track_indices:
            return
        newly = newly.astype(self.index_dtype, copy=False)
        self._newly_flat = newly
        if newly.size == 0:
            return
        if self.informed.size <= self._REBUILD_SCAN_LIMIT:
            self._informed_flat = np.flatnonzero(
                self.informed.reshape(-1)
            ).astype(self.index_dtype, copy=False)
        else:
            self._informed_flat = merge_sorted_disjoint(self._informed_flat, newly)

    # -- dynamic membership (tombstone masks; single-run states only) ----------

    def enable_membership(self) -> None:
        """Track node-axis membership for churn runs (tombstone masks).

        Departed nodes stay as *dead rows* in the state arrays — their flags
        cleared, their ids evicted from the index pools — until the engine's
        threshold-triggered :meth:`compact_nodes` renumbers them away.  Joins
        grow the arrays at the tail (:meth:`grow_nodes`), so live ids are
        always ``flatnonzero(alive)``.  Membership is a single-run feature:
        the batched engine rejects churn (per-replication graphs diverge).
        """
        if self.batch is not None:
            raise ValueError("dynamic membership requires an unbatched state")
        self._alive = np.ones(self.n, dtype=bool)
        self._alive_count = self.n

    @property
    def membership_enabled(self) -> bool:
        """Whether :meth:`enable_membership` has been called."""
        return self._alive is not None

    @property
    def alive(self) -> np.ndarray:
        """``bool[n]`` liveness plane (membership tracking only)."""
        if self._alive is None:
            raise RuntimeError("enable_membership() has not been called")
        return self._alive

    @property
    def alive_count(self) -> int:
        """Number of live nodes (``n`` when membership is not tracked)."""
        if self._alive is None:
            return self.n
        return self._alive_count

    def remove_nodes(self, ids: np.ndarray) -> int:
        """Tombstone the (live, ascending) node ids in ``ids``.

        Clears every per-node flag and evicts the ids from the sorted index
        pools, so a departed node can neither push, pull, nor count as
        informed from this point on.  Returns how many of the removed nodes
        were informed (the engine's informed-count bookkeeping).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        alive = self.alive
        informed_removed = int(np.count_nonzero(self.informed[ids]))
        alive[ids] = False
        self._alive_count -= int(ids.size)
        self.informed[ids] = False
        self.informed_round[ids] = -1
        if self._active is not None:
            self._active[ids] = False
        if self._pending is not None:
            self._pending[ids] = False
        self._informed_count -= informed_removed
        if self._track_indices:
            self._informed_flat = remove_sorted_values(self._informed_flat, ids)
            self._newly_flat = remove_sorted_values(self._newly_flat, ids)
        return informed_removed

    def grow_nodes(self, count: int) -> np.ndarray:
        """Append ``count`` fresh live, uninformed nodes; return their ids.

        New ids are always the tail of the id space (``n .. n+count-1``), so
        sorted pools stay sorted and the engine's CSR rows can be appended in
        the same order.
        """
        if self._alive is None:
            raise RuntimeError("enable_membership() has not been called")
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        old_n = self.n
        self.informed = np.concatenate([self.informed, np.zeros(count, dtype=bool)])
        self.informed_round = np.concatenate(
            [self.informed_round, np.full(count, -1, dtype=np.int32)]
        )
        if self._active is not None:
            self._active = np.concatenate([self._active, np.zeros(count, dtype=bool)])
        if self._pending is not None:
            self._pending = np.concatenate(
                [self._pending, np.zeros(count, dtype=bool)]
            )
        self._alive = np.concatenate([self._alive, np.ones(count, dtype=bool)])
        self._alive_count += count
        self.n = old_n + count
        return np.arange(old_n, self.n, dtype=np.int64)

    def compact_nodes(self, keep: np.ndarray) -> np.ndarray:
        """Renumber the id space down to the (ascending) ids in ``keep``.

        The node-axis mirror of :meth:`compact_rows`: every state plane is
        sliced to the kept nodes and the sorted pools are renumbered through
        the returned remap table (``int64[old_n]``; dropped ids map to
        ``-1``).  The caller — the engine — applies the same table to its CSR
        copy and to any protocol-held index pools, so every id table moves
        through one remap.  The remap is monotone on survivors, which is what
        keeps all position/degree-based draws bit-identical across compaction
        on/off.
        """
        if self._alive is None:
            raise RuntimeError("enable_membership() has not been called")
        keep = np.asarray(keep, dtype=np.int64)
        old_n = self.n
        remap = np.full(old_n, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size, dtype=np.int64)
        self.informed = self.informed[keep]
        self.informed_round = self.informed_round[keep]
        if self._active is not None:
            self._active = self._active[keep]
        if self._pending is not None:
            self._pending = self._pending[keep]
        self._alive = np.ones(keep.size, dtype=bool)
        self._alive_count = int(keep.size)
        self.n = int(keep.size)
        # Informed ⊆ alive (remove_nodes clears the flag), so every pooled id
        # survives the remap; monotonicity preserves the sorted order.
        if self._track_indices:
            dtype = self.index_dtype
            self._informed_flat = remap[self._informed_flat].astype(dtype, copy=False)
            self._newly_flat = remap[self._newly_flat].astype(dtype, copy=False)
        self.source = int(remap[self.source]) if 0 <= self.source < old_n else -1
        return remap

    # -- aggregate queries -----------------------------------------------------

    @property
    def shape(self):
        """Shape of the state arrays: ``(n,)`` or ``(R, n)`` for a batch."""
        return self.informed.shape

    @property
    def informed_count(self):
        """Informed nodes: an int, or an ``int64[R]`` array for a batch."""
        return self._informed_count

    @property
    def uninformed_count(self):
        """Uninformed *live* nodes: an int, or ``int64[R]`` for a batch."""
        return self.alive_count - self._informed_count

    def all_informed(self):
        """Whether every live node is informed (per replication for a batch)."""
        return self._informed_count == self.alive_count

    # -- round lifecycle -------------------------------------------------------

    def commit_round(self, round_index: int) -> np.ndarray:
        """Promote all staged deliveries; return the flat ids newly informed.

        The returned indices address ``informed.reshape(-1)`` — for the
        unbatched shape they are plain node ids, for a batch they encode
        ``row * n + node``.  Hooks that flip per-node flags should therefore
        index through ``array.reshape(-1)`` (a view for these contiguous
        arrays), which is shape-agnostic.
        """
        newly_mask = self.pending & ~self.informed
        newly = np.flatnonzero(newly_mask).astype(self.index_dtype, copy=False)
        if newly.size:
            self.informed.reshape(-1)[newly] = True
            self.informed_round.reshape(-1)[newly] = round_index
            if self.batch is None:
                self._informed_count += int(newly.size)
            else:
                self._informed_count += newly_mask.sum(axis=1)
        self.pending.fill(False)
        self._record_newly(newly)
        return newly

    def commit_delivered(self, delivered: np.ndarray, round_index: int) -> np.ndarray:
        """Commit a round's deliveries given directly as flat indices.

        Equivalent to staging ``delivered`` into :attr:`pending` and calling
        :meth:`commit_round` (same newly-informed set, in the same ascending
        order) — the batched engine's commit path.  Sparse delivery sets are
        deduplicated by sorting (``O(k log k)``), dense ones via the pending
        mask (``O(R·n)``); the crossover keeps the commit cheap both in early
        rounds (tiny ``k``) and in the endgame (few live replications).
        """
        total = self.informed.size
        if delivered.size * 4 >= total or total <= self._REBUILD_SCAN_LIMIT:
            # Dense commits: when the delivery set is a sizeable fraction of
            # the state — or the state is small enough that whole-plane
            # passes are trivially cheap — the pending-mask path beats the
            # sparse sort's per-call bookkeeping.
            self.pending.reshape(-1)[delivered] = True
            return self.commit_round(round_index)
        flat_informed = self.informed.reshape(-1)
        newly = delivered[~flat_informed[delivered]]
        newly = newly.astype(self.index_dtype, copy=False)
        if newly.size == 0:
            self._record_newly(newly)
            return newly
        newly = np.sort(newly)
        if newly.size > 1:
            keep = np.empty(newly.size, dtype=bool)
            keep[0] = True
            np.not_equal(newly[1:], newly[:-1], out=keep[1:])
            newly = newly[keep]
        flat_informed[newly] = True
        self.informed_round.reshape(-1)[newly] = round_index
        if self.batch is None:
            self._informed_count += int(newly.size)
        else:
            boundaries = np.arange(self.batch + 1, dtype=np.int64) * self.n
            self._informed_count += np.diff(np.searchsorted(newly, boundaries))
        self._record_newly(newly)
        return newly

    # -- batch row compaction ---------------------------------------------------

    @staticmethod
    def compact_flat_indices(
        flat: np.ndarray, keep: np.ndarray, n: int, old_batch: int
    ) -> np.ndarray:
        """Remap sorted ``(row * n + node)`` indices onto the kept rows.

        Entries belonging to dropped rows are removed; surviving entries are
        renumbered so row ``keep[i]`` becomes row ``i``.  Shared by
        :meth:`compact_rows` and the protocols' ``vector_compact_rows`` hooks
        (e.g. Algorithm 1's active-node list), so every flat index table is
        remapped by the same arithmetic.
        """
        bounds = np.searchsorted(
            flat, np.arange(old_batch + 1, dtype=np.int64) * n
        )
        keep = np.asarray(keep, dtype=np.int64)
        lengths = bounds[keep + 1] - bounds[keep]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=flat.dtype)
        offsets = np.cumsum(lengths) - lengths
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
        source = np.repeat(bounds[keep], lengths) + within
        # old_row * n  ->  new_row * n
        shift = (keep - np.arange(keep.size)) * n
        return (flat[source] - np.repeat(shift, lengths)).astype(
            flat.dtype, copy=False
        )

    def compact_rows(self, keep: np.ndarray) -> None:
        """Drop batch rows not listed in ``keep`` (ascending row indices).

        Used by the batched engine to remap completed replications out of the
        state: every ``(R, n)`` plane is sliced down to the kept rows and the
        flat index vectors are renumbered accordingly, so subsequent rounds
        run over a smaller ensemble.  The caller owns the mapping from
        compacted row numbers back to original replications.
        """
        if self.batch is None:
            raise ValueError("compact_rows requires a batched state")
        old_batch = self.batch
        keep = np.asarray(keep, dtype=np.int64)
        self.informed = self.informed[keep]
        self.informed_round = self.informed_round[keep]
        if self._active is not None:
            self._active = self._active[keep]
        if self._pending is not None:
            self._pending = self._pending[keep]
        self._informed_count = self._informed_count[keep]
        self.batch = int(keep.size)
        if self._track_indices:
            self._informed_flat = self.compact_flat_indices(
                self._informed_flat, keep, self.n, old_batch
            )
            self._newly_flat = self.compact_flat_indices(
                self._newly_flat, keep, self.n, old_batch
            )
