"""The bulk NumPy round engine — the simulator's fast path.

This engine executes the same synchronous random phone call model as
:class:`repro.core.engine.RoundEngine`, but represents the whole round state
as arrays (:class:`repro.core.node.VectorState`) and executes each round with
bulk operations over the graph's CSR adjacency view:

1. the protocol reports, as boolean masks over all nodes, who pushes and who
   answers calls this round;
2. every node that needs to sample does so in one batch — a single
   ``Generator.integers`` gather for fanout 1, a chunked random-key top-``k``
   selection for larger fanouts — yielding flat ``callers`` / ``callees``
   channel arrays;
3. failure injection is a Bernoulli array over the channels and transmissions;
4. deliveries stage into a pending mask and commit at the end of the round,
   so "received in round ``t``, effective in ``t + 1``" holds exactly as in
   the scalar engine.

There are no per-node Python objects or per-channel Python loops anywhere in
the hot path, which makes ``n = 10⁶`` broadcasts run in seconds.

Dispatch rules
--------------
The fast path reproduces the scalar engine's *aggregate* semantics (success,
rounds-to-completion distribution, transmission and channel accounting
identities) but not its per-call draw order, so runs with the same seed agree
statistically, not bit-for-bit.  ``run_broadcast`` therefore selects it only
when nothing the scalar engine offers beyond aggregates is requested:

* the protocol opts in (``supports_vectorized``) and needs neither the
  per-channel exchange hook nor the contact-memory mechanism;
* no tracer is attached (tracing is inherently per-event);
* there is no churn (CSR requires a static contiguous id space);
* the failure model is ``ReliableDelivery`` or ``IndependentLoss`` (arbitrary
  strategy objects cannot be batched);
* the graph's node ids are contiguous ``0..n-1``.

:func:`vectorization_unsupported_reason` centralises these checks and returns
a human-readable reason (or ``None``) so the dispatcher and error messages
stay in sync.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..failures.churn import ChurnModel, NoChurn
from ..failures.message_loss import FailureModel, IndependentLoss, ReliableDelivery
from ..graphs.base import Graph
from ..protocols.base import BroadcastProtocol
from .config import SimulationConfig
from .errors import SimulationError
from .metrics import RoundRecord, RunResult
from .node import VectorState
from .rng import RandomSource
from .trace import NullTracer, Tracer

__all__ = ["VectorizedRoundEngine", "vectorization_unsupported_reason"]

#: Upper bound on random keys materialised per sampling chunk (rows × max
#: degree); keeps the k-distinct path's peak memory flat on dense graphs.
_CHUNK_ENTRIES = 1 << 22


def vectorization_unsupported_reason(
    graph: Graph,
    protocol: BroadcastProtocol,
    config: SimulationConfig,
    failure_model: Optional[FailureModel] = None,
    churn_model: Optional[ChurnModel] = None,
    tracer: Optional[Tracer] = None,
) -> Optional[str]:
    """Why this run cannot use the bulk engine, or ``None`` if it can."""
    if not protocol.supports_vectorized:
        return f"protocol {protocol.name!r} does not implement the bulk hooks"
    if protocol.needs_exchange_hook:
        return f"protocol {protocol.name!r} needs the per-channel exchange hook"
    if protocol.memory_window > 0:
        return f"protocol {protocol.name!r} uses the contact-memory mechanism"
    # The bulk engine never builds a StateTable, so protocols that override
    # the StateTable-based lifecycle hooks cannot run on it even if they
    # opted in — guard against a future protocol combining both.
    if type(protocol).on_round_start is not BroadcastProtocol.on_round_start:
        return f"protocol {protocol.name!r} overrides the on_round_start hook"
    if type(protocol).finished is not BroadcastProtocol.finished:
        return f"protocol {protocol.name!r} overrides the finished() rule"
    if type(protocol).on_round_committed is not BroadcastProtocol.on_round_committed and (
        type(protocol).vector_on_round_committed
        is BroadcastProtocol.vector_on_round_committed
    ):
        return (
            f"protocol {protocol.name!r} overrides on_round_committed without "
            "a bulk counterpart"
        )
    if tracer is not None and not isinstance(tracer, NullTracer):
        return "a tracer is attached (tracing is per-event)"
    if churn_model is not None and not isinstance(churn_model, NoChurn):
        return "a churn model is attached (bulk state requires a static network)"
    if failure_model is not None and not isinstance(
        failure_model, (ReliableDelivery, IndependentLoss)
    ):
        return (
            f"failure model {type(failure_model).__name__} cannot be batched "
            "(only ReliableDelivery / IndependentLoss are vectorizable)"
        )
    if not graph.has_contiguous_ids():
        return "graph node ids are not contiguous 0..n-1 (CSR export impossible)"
    return None


class VectorizedRoundEngine:
    """Drives one protocol over one graph with bulk array operations.

    Accepts the same parameters as :class:`repro.core.engine.RoundEngine` and
    produces the same :class:`RunResult` shape; construction raises
    :class:`SimulationError` if the combination cannot be vectorized (see
    :func:`vectorization_unsupported_reason`).  RNG streams are spawned with
    the same labels as the scalar engine ("protocol" / "failures"), but draw
    granularity differs, so equal seeds give statistically equivalent — not
    identical — runs.
    """

    def __init__(
        self,
        graph: Graph,
        protocol: BroadcastProtocol,
        config: Optional[SimulationConfig] = None,
        seed: int = 0,
        failure_model: Optional[FailureModel] = None,
        churn_model: Optional[ChurnModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.protocol = protocol
        self.config = config if config is not None else SimulationConfig()
        if failure_model is not None:
            self.failure_model = failure_model
        elif (
            self.config.message_loss_probability > 0
            or self.config.channel_failure_probability > 0
        ):
            self.failure_model = IndependentLoss(
                transmission_loss_probability=self.config.message_loss_probability,
                channel_failure_probability=self.config.channel_failure_probability,
            )
        else:
            self.failure_model = ReliableDelivery()
        self.churn_model = churn_model if churn_model is not None else NoChurn()

        reason = vectorization_unsupported_reason(
            graph, protocol, self.config, self.failure_model, self.churn_model, tracer
        )
        if reason is not None:
            raise SimulationError(f"run cannot be vectorized: {reason}")

        self.rng = RandomSource(seed=seed, name="engine")
        self._protocol_gen = self.rng.spawn("protocol").generator
        self._failure_gen = self.rng.spawn("failures").generator
        if isinstance(self.failure_model, IndependentLoss):
            self._loss_p = self.failure_model.transmission_loss_probability
            self._channel_fail_p = self.failure_model.channel_failure_probability
        else:
            self._loss_p = 0.0
            self._channel_fail_p = 0.0

        self._indptr, self._indices = graph.csr()
        self._degrees = np.diff(self._indptr)

    # -- public API ---------------------------------------------------------------

    def run(self, source: int = 0) -> RunResult:
        """Broadcast a single message created at ``source`` in round 0."""
        if source not in self.graph:
            raise SimulationError(f"source node {source} is not in the graph")

        n = self.graph.node_count
        state = VectorState(n=n, source=source)
        horizon = self.protocol.horizon()
        if self.config.max_rounds is not None:
            horizon = min(horizon, self.config.max_rounds)

        history: list = []
        phase_transmissions: dict = {}
        totals = {"push": 0, "pull": 0, "channels": 0, "lost": 0}
        rounds_to_completion: Optional[int] = None
        rounds_executed = 0

        for round_index in range(1, horizon + 1):
            rounds_executed = round_index
            record = self._run_round(round_index, state)
            totals["push"] += record.push_transmissions
            totals["pull"] += record.pull_transmissions
            totals["channels"] += record.channels_opened
            totals["lost"] += record.lost_transmissions
            if record.phase:
                phase_transmissions[record.phase] = (
                    phase_transmissions.get(record.phase, 0) + record.transmissions
                )
            if self.config.collect_round_history:
                history.append(record)

            if rounds_to_completion is None and state.all_informed():
                rounds_to_completion = round_index
                if self.config.stop_when_informed:
                    break

        success = state.all_informed()
        return RunResult(
            n=n,
            protocol=self.protocol.name,
            source=source,
            success=success,
            rounds_executed=rounds_executed,
            rounds_to_completion=rounds_to_completion,
            total_push_transmissions=totals["push"],
            total_pull_transmissions=totals["pull"],
            total_channels_opened=totals["channels"],
            total_lost_transmissions=totals["lost"],
            final_informed=state.informed_count,
            history=history,
            phase_transmissions=phase_transmissions,
            metadata={
                "protocol": self.protocol.describe(),
                "failure_model": self.failure_model.describe(),
                "churn_model": self.churn_model.describe(),
                "final_node_count": self.graph.node_count,
                "engine": "vectorized",
            },
        )

    # -- round mechanics -------------------------------------------------------------

    def _run_round(self, round_index: int, state: VectorState) -> RoundRecord:
        protocol = self.protocol
        degrees = self._degrees
        informed_before = state.informed_count

        push_active = protocol.push_round(round_index)
        pull_active = protocol.pull_round(round_index)
        fanout = protocol.vector_fanout(round_index)

        # Every node opens min(fanout, degree) channels per round in the full
        # phone-call model, whether or not its calls can carry information —
        # identical to the scalar engine's arithmetic accounting.
        channels_opened = int(np.minimum(degrees, fanout).sum())

        push_mask = protocol.vector_wants_push(round_index, state) if push_active else None
        pull_mask = protocol.vector_wants_pull(round_index, state) if pull_active else None

        # Only channels that can carry a message this round are materialised:
        # in pull rounds any caller may receive, in push-only rounds only the
        # pushers' calls matter.
        if pull_active:
            samplers = np.flatnonzero(degrees > 0)
        elif push_active:
            samplers = np.flatnonzero(push_mask & (degrees > 0))
        else:
            samplers = np.empty(0, dtype=np.int64)

        callers, callees = self._sample_call_targets(samplers, fanout)

        # Self-calls (self-loop stubs) count as opened channels but never
        # connect; failed channels are unusable for both directions.
        usable = callers != callees
        if self._channel_fail_p > 0.0 and callers.size:
            usable &= self._failure_gen.random(callers.size) >= self._channel_fail_p
        if not usable.all():
            callers = callers[usable]
            callees = callees[usable]

        push_transmissions = 0
        pull_transmissions = 0
        lost_transmissions = 0

        if push_active and callers.size:
            sending = push_mask[callers]
            receivers = callees[sending]
            push_transmissions = int(receivers.size)
            receivers, lost = self._drop_lost(receivers)
            lost_transmissions += lost
            state.pending[receivers] = True

        if pull_active and callers.size:
            answering = pull_mask[callees]
            receivers = callers[answering]
            pull_transmissions = int(receivers.size)
            receivers, lost = self._drop_lost(receivers)
            lost_transmissions += lost
            state.pending[receivers] = True

        newly_informed = state.commit_round(round_index)
        protocol.vector_on_round_committed(round_index, state, newly_informed)

        return RoundRecord(
            round_index=round_index,
            informed_before=informed_before,
            informed_after=state.informed_count,
            push_transmissions=push_transmissions,
            pull_transmissions=pull_transmissions,
            channels_opened=channels_opened,
            lost_transmissions=lost_transmissions,
            phase=protocol.phase_label(round_index),
        )

    def _drop_lost(self, receivers: np.ndarray) -> Tuple[np.ndarray, int]:
        """Apply per-transmission loss; return (delivered receivers, lost count)."""
        if self._loss_p <= 0.0 or receivers.size == 0:
            return receivers, 0
        lost_mask = self._failure_gen.random(receivers.size) < self._loss_p
        lost = int(lost_mask.sum())
        if lost:
            receivers = receivers[~lost_mask]
        return receivers, lost

    # -- neighbour sampling -----------------------------------------------------------

    def _sample_call_targets(
        self, samplers: np.ndarray, fanout: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Each sampler calls ``min(fanout, degree)`` distinct adjacency stubs.

        Returns flat ``(callers, callees)`` arrays, one entry per channel.
        Sampling is over adjacency *positions*, so parallel edges weight the
        draw exactly as the scalar ``select_call_targets`` does.
        """
        indptr, indices = self._indptr, self._indices
        degrees = self._degrees
        empty = np.empty(0, dtype=np.int64)
        if samplers.size == 0 or fanout <= 0:
            return empty, empty

        if fanout == 1:
            # Hot path of the standard model: one uniform stub per node.
            offsets = self._protocol_gen.integers(0, degrees[samplers])
            return samplers, indices[indptr[samplers] + offsets]

        sampler_degrees = degrees[samplers]
        saturated = sampler_degrees <= fanout

        # Saturated nodes (degree <= fanout) call every neighbour.
        callers_parts = []
        callees_parts = []
        full_nodes = samplers[saturated]
        if full_nodes.size:
            lengths = sampler_degrees[saturated]
            total = int(lengths.sum())
            starts = np.repeat(indptr[full_nodes], lengths)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            callers_parts.append(np.repeat(full_nodes, lengths))
            callees_parts.append(indices[starts + within])

        # Remaining nodes draw a uniform k-subset of stubs via random keys:
        # the k smallest of d iid uniforms index a uniformly random distinct
        # sample.  Chunked so rows × max-degree stays within a flat budget.
        deep_nodes = samplers[~saturated]
        if deep_nodes.size:
            deep_degrees = sampler_degrees[~saturated]
            max_degree = int(deep_degrees.max())
            rows_per_chunk = max(1, _CHUNK_ENTRIES // max_degree)
            column = np.arange(max_degree, dtype=np.int64)
            for start in range(0, deep_nodes.size, rows_per_chunk):
                nodes = deep_nodes[start : start + rows_per_chunk]
                node_degrees = deep_degrees[start : start + rows_per_chunk]
                keys = self._protocol_gen.random((nodes.size, max_degree))
                keys[column[None, :] >= node_degrees[:, None]] = np.inf
                chosen = np.argpartition(keys, fanout - 1, axis=1)[:, :fanout]
                positions = indptr[nodes][:, None] + chosen
                callers_parts.append(np.repeat(nodes, fanout))
                callees_parts.append(indices[positions.ravel()])

        if not callers_parts:
            return empty, empty
        return np.concatenate(callers_parts), np.concatenate(callees_parts)
