"""The bulk NumPy round engine — the simulator's fast path.

This engine executes the same synchronous random phone call model as
:class:`repro.core.engine.RoundEngine`, but represents the whole round state
as arrays (:class:`repro.core.node.VectorState`) and executes each round with
bulk operations over the graph's CSR adjacency view:

1. the protocol reports who pushes and who answers calls this round — as a
   sorted *index pool* (``vector_push_samplers``, maintained incrementally by
   the engine) when it opts into index tracking, or as boolean masks;
2. every node that needs to sample does so in one batch — a single
   ``Generator.integers`` gather for fanout 1, a chunked random-key top-``k``
   selection for larger fanouts — yielding flat ``callers`` / ``callees``
   channel arrays;
3. failure injection is a Bernoulli array over the channels and transmissions;
4. deliveries commit sparsely (:meth:`VectorState.commit_delivered`): only the
   uninformed hits are sorted and promoted, so "received in round ``t``,
   effective in ``t + 1``" holds exactly as in the scalar engine while the
   commit cost tracks the shrinking uninformed set.

Active sets and scratch buffers
-------------------------------
Protocols with ``uses_index_pools`` never trigger an O(n) flag scan in
push-only rounds: the engine maintains the sorted informed-index vector by
merge at each commit, the protocol hands back the relevant pool (informed,
last round's newly informed, Algorithm 1's active list), and sampling cost is
proportional to the number of *pushers*, which is what makes the exponential
growth phase cost O(n) in aggregate rather than O(n · rounds).  The fanout-1
sampling pipeline reuses preallocated scratch buffers (uniforms, stub
offsets, gather positions, callees) instead of allocating fresh full-size
arrays every round, and all index arrays follow the CSR index dtype (int32
for every graph below two billion stubs).  Draw *sequences* are unchanged:
pools enumerate exactly the nodes the mask scan would, in the same ascending
order, and ``Generator.random(out=...)`` fills a scratch slice with the same
stream a fresh allocation would get.

Batched replications
--------------------
:class:`BatchedVectorizedRoundEngine` runs ``R`` independent replications of
the same configuration (one seed per replication) over a shared graph in one
NumPy program, holding the whole ensemble as ``(R, n)`` state arrays.  Each
replication draws from its own generator pair spawned exactly as the
single-run engine spawns them (``RandomSource(seed).spawn("protocol")`` /
``spawn("failures")``), and the per-replication draw *sequences* are kept
call-for-call identical to a single run, so every row of a batch is
bit-identical to the corresponding :class:`VectorizedRoundEngine` run.  What
the batch amortises is everything *around* the draws: state commits, channel
bookkeeping, delivery scatter, and per-run setup all happen once per round for
the whole ensemble instead of once per round per seed.

Row compaction
~~~~~~~~~~~~~~
When ``stop_when_informed`` holds (the default) and
``SimulationConfig.batch_row_compaction`` is on, completed replications are
*remapped out* of the ``(R, n)`` state the moment they finish: the state
planes, the informed-index vectors, the per-replication generator lists, and
any protocol-held per-row tables (via the
:meth:`BroadcastProtocol.vector_compact_rows` hook) are all sliced down to
the surviving rows, and an ``origin`` map carries results back to the
original seed order.  Long-tail sweeps therefore shrink their arrays as rows
finish instead of carrying dead rows to the last straggler's round.
Compaction never touches a generator stream, so the results are bit-identical
with compaction on or off (asserted in ``tests/test_engine_compaction.py``).

Dispatch rules
--------------
The fast path reproduces the scalar engine's *aggregate* semantics (success,
rounds-to-completion distribution, transmission and channel accounting
identities) but not its per-call draw order, so runs with the same seed agree
statistically, not bit-for-bit.  ``run_broadcast`` therefore selects it only
when nothing the scalar engine offers beyond aggregates is requested:

* the protocol opts in (``supports_vectorized``) and needs neither the
  per-channel exchange hook nor the contact-memory mechanism;
* no tracer is attached (tracing is inherently per-event);
* churn, when present, is a model that opted into the bulk membership hook
  (``ChurnModel.supports_vectorized`` / ``vector_apply``) driving a protocol
  that opted into dynamic membership
  (``BroadcastProtocol.supports_dynamic_membership``) — and the run is
  single-seed (the batched engine rejects churn outright: replications'
  graphs diverge, so there is no shared CSR to batch over);
* the failure model is ``ReliableDelivery`` or ``IndependentLoss`` (arbitrary
  strategy objects cannot be batched);
* the graph's node ids are contiguous ``0..n-1``.

:func:`vectorization_unsupported_reason` centralises these checks and returns
a human-readable reason (or ``None``) so the dispatcher and error messages
stay in sync.  The batched engine accepts exactly the combinations the
single-run engine accepts except churn (``batched=True`` names that reason;
``repro.core.engine.run_broadcast_batch`` owns the fallback to a per-seed
loop).

Dynamic membership (vectorized churn)
-------------------------------------
With an opted-in churn model the single-run engine switches to *dynamic
mode*: it copies the graph's CSR into private mutable arrays (the caller's
graph object is never touched), enables tombstone masks on the state
(:meth:`VectorState.enable_membership`), and applies the churn model's
``vector_apply`` at the top of every round through a narrow mutation surface
(:class:`VectorChurnOps`):

* **departures** clear a node's flags, evict its id from every sorted index
  pool (engine- and protocol-held), and mark it dead.  Its CSR row stays as
  a *tombstone* — survivors' stubs that point at it are filtered out at call
  time together with self-loops and failed channels, so survivors keep their
  stub-count degree (the draw arithmetic never changes shape mid-round);
* **joins** splice each joiner into ``max(1, target_degree // 2)`` uniformly
  chosen live stubs by batched CSR edits — replace stub ``(u, v)`` with
  ``(u, J)``/``(v, J)`` in place and append ``[u, v, …]`` as ``J``'s tail
  row — so existing nodes keep their degree and id growth is append-only;
* when a quarter of the id space is dead, **node compaction** renumbers it
  away (the node-axis mirror of batch row compaction): the state planes are
  sliced via :meth:`VectorState.compact_nodes`, the CSR is rebuilt through
  the returned id-remap table (dead targets become ``-1`` sentinels), and
  protocol-held pools remap through
  :meth:`BroadcastProtocol.vector_compact_nodes`.

Every random decision on this path — the churn models' draws and the
engine's sampling — depends only on live-node *positions* (rank in ascending
id order), live counts, and per-row stub counts, all invariant under the
monotone compaction remap.  Vectorized churn is therefore draw-for-draw
deterministic and bit-identical across compaction on/off
(``SimulationConfig.churn_node_compaction``) and across every execution path
that replays the same seeds (asserted in ``tests/test_churn_vectorized.py``).
Scalar and vectorized churn agree *statistically*, not bit-for-bit: the
scalar engine deletes departed nodes' edges outright (survivor degrees
shrink) where this engine tombstones them (survivor stub-counts persist
until their calls are filtered).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..failures.churn import ChurnModel, NoChurn
from ..failures.message_loss import FailureModel, IndependentLoss, ReliableDelivery
from ..graphs.base import Graph
from ..protocols.base import BroadcastProtocol
from .config import SimulationConfig
from .errors import SimulationError
from .metrics import RoundRecord, RunResult
from .node import VectorState
from .rng import RandomSource
from .trace import NullTracer, Tracer

__all__ = [
    "VectorizedRoundEngine",
    "BatchedVectorizedRoundEngine",
    "VectorChurnOps",
    "vectorization_unsupported_reason",
]

#: Upper bound on random keys materialised per sampling chunk (rows × max
#: degree); keeps the k-distinct path's peak memory flat on dense graphs.
_CHUNK_ENTRIES = 1 << 22


def vectorization_unsupported_reason(
    graph: Graph,
    protocol: BroadcastProtocol,
    config: SimulationConfig,
    failure_model: Optional[FailureModel] = None,
    churn_model: Optional[ChurnModel] = None,
    tracer: Optional[Tracer] = None,
    batched: bool = False,
) -> Optional[str]:
    """Why this run cannot use the bulk engine, or ``None`` if it can.

    ``batched=True`` asks about the batched multi-seed engine, which rejects
    all churn (replications' graphs diverge); the default asks about the
    single-run engine, where churn is admissible for models and protocols
    that opted into the dynamic-membership hooks.
    """
    if not protocol.supports_vectorized:
        return f"protocol {protocol.name!r} does not implement the bulk hooks"
    if protocol.needs_exchange_hook:
        return f"protocol {protocol.name!r} needs the per-channel exchange hook"
    if protocol.memory_window > 0:
        return f"protocol {protocol.name!r} uses the contact-memory mechanism"
    # The bulk engine never builds a StateTable, so protocols that override
    # the StateTable-based lifecycle hooks cannot run on it even if they
    # opted in — guard against a future protocol combining both.
    if type(protocol).on_round_start is not BroadcastProtocol.on_round_start:
        return f"protocol {protocol.name!r} overrides the on_round_start hook"
    if type(protocol).finished is not BroadcastProtocol.finished:
        return f"protocol {protocol.name!r} overrides the finished() rule"
    if type(protocol).on_round_committed is not BroadcastProtocol.on_round_committed and (
        type(protocol).vector_on_round_committed
        is BroadcastProtocol.vector_on_round_committed
    ):
        return (
            f"protocol {protocol.name!r} overrides on_round_committed without "
            "a bulk counterpart"
        )
    if (
        type(protocol).select_call_targets is not BroadcastProtocol.select_call_targets
        and not protocol.has_custom_vector_targets
    ):
        return (
            f"protocol {protocol.name!r} overrides select_call_targets without "
            "a bulk counterpart"
        )
    if tracer is not None and not isinstance(tracer, NullTracer):
        return "a tracer is attached (tracing is per-event)"
    if churn_model is not None and not isinstance(churn_model, NoChurn):
        if batched:
            return (
                "churn cannot run on the batched engine (membership diverges "
                "per replication; run per-seed vectorized instead)"
            )
        if not getattr(churn_model, "supports_vectorized", False):
            return (
                f"churn model {type(churn_model).__name__} does not implement "
                "the bulk membership hook (vector_apply)"
            )
        if not protocol.supports_dynamic_membership:
            return (
                f"protocol {protocol.name!r} does not support dynamic "
                "membership (departures/joins mid-broadcast)"
            )
    if failure_model is not None and not isinstance(
        failure_model, (ReliableDelivery, IndependentLoss)
    ):
        return (
            f"failure model {type(failure_model).__name__} cannot be batched "
            "(only ReliableDelivery / IndependentLoss are vectorizable)"
        )
    if not graph.has_contiguous_ids():
        return "graph node ids are not contiguous 0..n-1 (CSR export impossible)"
    return None


def _fanout1_offsets(
    uniforms: np.ndarray, sampler_degrees
) -> np.ndarray:
    """Uniform stub offsets from pre-drawn uniforms (``floor(U · d)``).

    A batch of uniforms is ~2× faster to generate than per-element bounded
    integers and ``floor(U · d)`` is uniform over ``[0, d)`` up to an
    O(2⁻⁵³) float bias; the clip guards the half-ulp rounding edge where
    ``U · d`` could land exactly on ``d``.  ``sampler_degrees`` may be a
    per-sampler array or a scalar (regular graphs).  Both engines draw
    exactly one ``generator.random(k)`` per (replication, round) and map it
    through this function, which is what keeps a batch row's stream identical
    to a single run's.
    """
    offsets = (uniforms * sampler_degrees).astype(np.int64)
    np.minimum(offsets, np.asarray(sampler_degrees) - 1, out=offsets)
    return offsets


def _sample_stub_targets(
    generator: np.random.Generator,
    samplers: np.ndarray,
    fanout: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    uniform_degree: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Each sampler calls ``min(fanout, degree)`` distinct adjacency stubs.

    Returns flat ``(callers, callees)`` arrays, one entry per channel.
    Sampling is over adjacency *positions*, so parallel edges weight the
    draw exactly as the scalar ``select_call_targets`` does.  This is a
    module-level function (parameterised by the generator) so the single-run
    and batched engines share one draw sequence per generator by
    construction.  ``uniform_degree`` short-circuits the per-sampler degree
    gathers on regular graphs (it never changes the draw sequence).
    """
    empty = np.empty(0, dtype=np.int64)
    if samplers.size == 0 or fanout <= 0:
        return empty, empty

    if fanout == 1:
        # Hot path of the standard model: one uniform stub per node.
        uniforms = generator.random(samplers.size)
        if uniform_degree is not None:
            offsets = _fanout1_offsets(uniforms, uniform_degree)
            return samplers, indices[samplers * uniform_degree + offsets]
        offsets = _fanout1_offsets(uniforms, degrees[samplers])
        return samplers, indices[indptr[samplers] + offsets]

    sampler_degrees = degrees[samplers]
    saturated = sampler_degrees <= fanout

    # Saturated nodes (degree <= fanout) call every neighbour.
    callers_parts = []
    callees_parts = []
    full_nodes = samplers[saturated]
    if full_nodes.size:
        lengths = sampler_degrees[saturated]
        total = int(lengths.sum())
        starts = np.repeat(indptr[full_nodes], lengths)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        callers_parts.append(np.repeat(full_nodes, lengths))
        callees_parts.append(indices[starts + within])

    # Remaining nodes draw a uniform k-subset of stubs via random keys:
    # the k smallest of d iid uniforms index a uniformly random distinct
    # sample.  Chunked so rows × max-degree stays within a flat budget.
    deep_nodes = samplers[~saturated]
    if deep_nodes.size:
        deep_degrees = sampler_degrees[~saturated]
        max_degree = int(deep_degrees.max())
        rows_per_chunk = max(1, _CHUNK_ENTRIES // max_degree)
        column = np.arange(max_degree, dtype=np.int64)
        for start in range(0, deep_nodes.size, rows_per_chunk):
            nodes = deep_nodes[start : start + rows_per_chunk]
            node_degrees = deep_degrees[start : start + rows_per_chunk]
            keys = generator.random((nodes.size, max_degree))
            keys[column[None, :] >= node_degrees[:, None]] = np.inf
            chosen = np.argpartition(keys, fanout - 1, axis=1)[:, :fanout]
            positions = indptr[nodes][:, None] + chosen
            callers_parts.append(np.repeat(nodes, fanout))
            callees_parts.append(indices[positions.ravel()])

    if not callers_parts:
        return empty, empty
    return np.concatenate(callers_parts), np.concatenate(callees_parts)


def _resolve_failure_model(
    config: SimulationConfig, failure_model: Optional[FailureModel]
) -> FailureModel:
    """The failure model a run uses: explicit object, config-derived, or none."""
    if failure_model is not None:
        return failure_model
    if config.message_loss_probability > 0 or config.channel_failure_probability > 0:
        return IndependentLoss(
            transmission_loss_probability=config.message_loss_probability,
            channel_failure_probability=config.channel_failure_probability,
        )
    return ReliableDelivery()


class VectorChurnOps:
    """The membership-mutation surface handed to ``ChurnModel.vector_apply``.

    A thin, per-round view over the engine's dynamic-membership machinery:
    ascending live-id queries plus the two mutators (bulk departures and
    stub-stealing joins).  Churn models draw their own randomness from the
    engine's dedicated ``"churn"`` stream and must keep every draw a function
    of live *positions*, counts, and degrees only (renumbering invariance —
    see :mod:`repro.failures.churn`).
    """

    __slots__ = ("_engine", "_state", "_round_index")

    def __init__(
        self, engine: "VectorizedRoundEngine", state: VectorState, round_index: int
    ) -> None:
        self._engine = engine
        self._state = state
        self._round_index = round_index

    # -- queries ---------------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Number of live nodes right now."""
        return self._state.alive_count

    @property
    def source(self) -> int:
        """Current id of the broadcast source (``-1`` if it departed)."""
        return self._state.source

    def live_nodes(self) -> np.ndarray:
        """Ascending ids of all live nodes."""
        return np.flatnonzero(self._state.alive)

    def informed_nodes(self) -> np.ndarray:
        """Ascending ids of live informed nodes (dead nodes never count)."""
        return np.flatnonzero(self._state.informed)

    def newly_informed_nodes(self) -> np.ndarray:
        """Ascending ids of nodes informed exactly last round (the frontier)."""
        state = self._state
        return np.flatnonzero(
            state.informed & (state.informed_round == self._round_index - 1)
        )

    # -- mutators --------------------------------------------------------------

    def depart(self, ids: np.ndarray) -> None:
        """Remove the (live, ascending) node ids in ``ids`` from the network."""
        self._engine._depart_nodes(ids, self._state)

    def join(
        self, count: int, target_degree: int, generator: np.random.Generator
    ) -> List[int]:
        """Add ``count`` fresh nodes by stub-stealing splices; return their ids.

        Draws exactly one ``generator.random(count · splices)`` batch for the
        stub choices (splices = ``max(1, target_degree // 2)``), positions
        taken uniformly over the live stub space snapshot at call time.
        """
        return self._engine._join_nodes(count, target_degree, generator, self._state)


class _BulkEngineBase:
    """CSR-derived caches, scratch buffers, and failure unpacking shared by
    both bulk engines.

    Kept in one place so a fix to channel-cost caching, self-loop detection,
    degree caching, or the loss-probability plumbing cannot drift between the
    single-run and batched engines.  Subclasses call the two ``_init_*``
    helpers after setting ``self.failure_model``.
    """

    def _init_bulk_state(self, graph: Graph) -> None:
        self._indptr, self._indices = graph.csr()
        # Cached on the graph next to the CSR view, so per-seed loops over
        # the same graph do not re-derive these O(m) facts per run.
        self._has_self_loops, self._uniform_degree = graph.csr_stats()
        self._n = self._indptr.size - 1
        # Every O(n) derived array below is materialised lazily: a push
        # broadcast over a regular graph touches none of them, which keeps
        # the engine's own footprint out of the peak.
        self._channel_cost_cache: dict = {}
        self._channel_info_cache: dict = {}
        self._degrees_array: Optional[np.ndarray] = None
        self._degree_positive_array: Optional[np.ndarray] = None
        self._nz_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if self._uniform_degree is not None:
            self._all_degrees_positive: Optional[bool] = self._uniform_degree > 0
        else:
            self._all_degrees_positive = None
        # Fanout-1 scratch buffers (allocated lazily at first use, reused
        # every round): uniforms, stub offsets, gather positions, callees.
        self._scratch_uniform: Optional[np.ndarray] = None
        self._scratch_offset: Optional[np.ndarray] = None
        self._scratch_position: Optional[np.ndarray] = None
        self._scratch_callee: Optional[np.ndarray] = None

    def _init_failure_probabilities(self) -> None:
        if isinstance(self.failure_model, IndependentLoss):
            self._loss_p = self.failure_model.transmission_loss_probability
            self._channel_fail_p = self.failure_model.channel_failure_probability
        else:
            self._loss_p = 0.0
            self._channel_fail_p = 0.0

    # -- lazy CSR-derived caches ---------------------------------------------------

    @property
    def _degrees(self) -> np.ndarray:
        if self._degrees_array is None:
            self._degrees_array = np.diff(self._indptr)
        return self._degrees_array

    @property
    def _degree_positive(self) -> np.ndarray:
        if self._degree_positive_array is None:
            self._degree_positive_array = self._degrees > 0
        return self._degree_positive_array

    def _all_positive(self) -> bool:
        if self._all_degrees_positive is None:
            self._all_degrees_positive = bool(self._degree_positive.all())
        return self._all_degrees_positive

    def _nz(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(nodes with a neighbour, their degrees)`` in CSR index dtype."""
        if self._nz_cache is None:
            if self._all_positive():
                nodes = np.arange(self._n, dtype=self._indices.dtype)
            else:
                nodes = np.flatnonzero(self._degree_positive).astype(
                    self._indices.dtype, copy=False
                )
            self._nz_cache = (nodes, self._degrees[nodes])
        return self._nz_cache

    def _channel_info(self, fanout: int) -> Tuple[int, Optional[int]]:
        """``(total channels over all nodes, uniform per-node cost or None)``.

        The uniform cost applies when every node pays the same
        ``min(degree, fanout)`` — regular graphs, or fanout 1 without
        isolated nodes — and turns pool/mask channel accounting into a
        multiplication instead of a gather over a cost array.
        """
        cached = self._channel_info_cache.get(fanout)
        if cached is None:
            if self._uniform_degree is not None:
                cost = min(self._uniform_degree, fanout)
                cached = (self._n * cost, cost)
            elif fanout == 1 and self._all_positive():
                cached = (self._n, 1)
            else:
                cached = (int(self._channel_cost_array(fanout).sum()), None)
            self._channel_info_cache[fanout] = cached
        return cached

    def _channel_cost_array(self, fanout: int) -> np.ndarray:
        """``min(degree, fanout)`` per node, cached per fanout."""
        cached = self._channel_cost_cache.get(fanout)
        if cached is None:
            cached = np.minimum(self._degrees, fanout)
            self._channel_cost_cache[fanout] = cached
        return cached

    # -- fanout-1 scratch sampling -------------------------------------------------

    def _ensure_scratch(self, capacity: int) -> None:
        current = self._scratch_uniform
        if current is not None and current.size >= capacity:
            return
        # Free before reallocating so the old and new generation of buffers
        # never coexist (the growth pattern is geometric anyway — sampler
        # counts roughly double per round during the growth phase).
        self._scratch_uniform = None
        self._scratch_offset = None
        self._scratch_position = None
        self._scratch_callee = None
        idx_dtype = self._indices.dtype
        self._scratch_uniform = np.empty(capacity, dtype=np.float64)
        self._scratch_offset = np.empty(capacity, dtype=idx_dtype)
        self._scratch_position = np.empty(capacity, dtype=idx_dtype)
        self._scratch_callee = np.empty(capacity, dtype=idx_dtype)

    #: Below this sampler count the plain allocation path beats the scratch
    #: pipeline (whose extra view/out bookkeeping costs ~10 µs per round,
    #: which dominates when the arrays themselves are only a few KB).
    _SCRATCH_MIN_SAMPLERS = 1 << 15

    def _fanout1_callees(
        self, generator: np.random.Generator, samplers: np.ndarray
    ) -> np.ndarray:
        """Callees of one uniform stub draw per sampler, via scratch buffers.

        Returns a view into the callee scratch buffer (valid until the next
        call); draws bit-identically to the allocation-based path —
        ``generator.random(out=...)`` consumes the same stream, and the
        in-place ``floor(U · d)`` arithmetic produces the same offsets.
        """
        k = samplers.size
        if k < self._SCRATCH_MIN_SAMPLERS:
            uniforms = generator.random(k)
            if self._uniform_degree is not None:
                offsets = _fanout1_offsets(uniforms, self._uniform_degree)
                return self._indices[samplers * self._uniform_degree + offsets]
            offsets = _fanout1_offsets(uniforms, self._degrees[samplers])
            return self._indices[self._indptr[samplers] + offsets]
        self._ensure_scratch(k)
        uniforms = self._scratch_uniform[:k]
        generator.random(out=uniforms)
        offsets = self._scratch_offset[:k]
        positions = self._scratch_position[:k]
        if self._uniform_degree is not None:
            degree = self._uniform_degree
            np.multiply(uniforms, degree, out=uniforms)
            np.copyto(offsets, uniforms, casting="unsafe")  # trunc == floor ≥ 0
            np.minimum(offsets, degree - 1, out=offsets)
            np.multiply(samplers, degree, out=positions, casting="unsafe")
            np.add(positions, offsets, out=positions)
        else:
            sampler_degrees = self._degrees[samplers]
            np.multiply(uniforms, sampler_degrees, out=uniforms)
            np.copyto(offsets, uniforms, casting="unsafe")
            np.subtract(sampler_degrees, 1, out=sampler_degrees)
            np.minimum(offsets, sampler_degrees, out=offsets)
            np.take(self._indptr, samplers, out=positions)
            np.add(positions, offsets, out=positions)
        callees = self._scratch_callee[:k]
        np.take(self._indices, positions, out=callees)
        return callees


class VectorizedRoundEngine(_BulkEngineBase):
    """Drives one protocol over one graph with bulk array operations.

    Accepts the same parameters as :class:`repro.core.engine.RoundEngine` and
    produces the same :class:`RunResult` shape; construction raises
    :class:`SimulationError` if the combination cannot be vectorized (see
    :func:`vectorization_unsupported_reason`).  RNG streams are spawned with
    the same labels as the scalar engine ("protocol" / "failures"), but draw
    granularity differs, so equal seeds give statistically equivalent — not
    identical — runs.
    """

    def __init__(
        self,
        graph: Graph,
        protocol: BroadcastProtocol,
        config: Optional[SimulationConfig] = None,
        seed: int = 0,
        failure_model: Optional[FailureModel] = None,
        churn_model: Optional[ChurnModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.protocol = protocol
        self.config = config if config is not None else SimulationConfig()
        self.failure_model = _resolve_failure_model(self.config, failure_model)
        self.churn_model = churn_model if churn_model is not None else NoChurn()

        reason = vectorization_unsupported_reason(
            graph, protocol, self.config, self.failure_model, self.churn_model, tracer
        )
        if reason is not None:
            raise SimulationError(f"run cannot be vectorized: {reason}")

        self.rng = RandomSource(seed=seed, name="engine")
        self._protocol_gen = self.rng.spawn("protocol").generator
        self._failure_gen = self.rng.spawn("failures").generator
        # Spawned with the scalar engine's label whether or not churn is
        # attached (spawns are independent derivations, not stream draws).
        self._churn_rng = self.rng.spawn("churn")
        self._dynamic = not isinstance(self.churn_model, NoChurn)
        self._state: Optional[VectorState] = None
        self._departures_total = 0
        self._arrivals_total = 0
        self._node_compactions = 0
        self._init_failure_probabilities()
        self._init_bulk_state(graph)

    # -- public API ---------------------------------------------------------------

    def run(self, source: int = 0) -> RunResult:
        """Broadcast a single message created at ``source`` in round 0."""
        if source not in self.graph:
            raise SimulationError(f"source node {source} is not in the graph")

        n = self.graph.node_count
        self.protocol.reset()
        self.churn_model.reset()
        state = VectorState(n=n, source=source)
        if self.protocol.uses_index_pools:
            state.enable_index_tracking()
        if self._dynamic:
            state.enable_membership()
            self._state = state
            self._reset_dynamic_topology()
        horizon = self.protocol.horizon()
        if self.config.max_rounds is not None:
            horizon = min(horizon, self.config.max_rounds)

        history: list = []
        phase_transmissions: dict = {}
        totals = {"push": 0, "pull": 0, "channels": 0, "lost": 0}
        rounds_to_completion: Optional[int] = None
        rounds_executed = 0

        for round_index in range(1, horizon + 1):
            rounds_executed = round_index
            if self._dynamic:
                self._apply_churn(round_index, state)
            record = self._run_round(round_index, state)
            totals["push"] += record.push_transmissions
            totals["pull"] += record.pull_transmissions
            totals["channels"] += record.channels_opened
            totals["lost"] += record.lost_transmissions
            if record.phase:
                phase_transmissions[record.phase] = (
                    phase_transmissions.get(record.phase, 0) + record.transmissions
                )
            if self.config.collect_round_history:
                history.append(record)

            if rounds_to_completion is None and state.all_informed():
                rounds_to_completion = round_index
                if self.config.stop_when_informed:
                    break

        success = bool(state.all_informed())
        metadata = {
            "protocol": self.protocol.describe(),
            "failure_model": self.failure_model.describe(),
            "churn_model": self.churn_model.describe(),
            "final_node_count": (
                state.alive_count if self._dynamic else self.graph.node_count
            ),
            "engine": "vectorized",
        }
        if self._dynamic:
            metadata["churn"] = {
                "departures": self._departures_total,
                "arrivals": self._arrivals_total,
                "node_compactions": self._node_compactions,
            }
            self._state = None
        return RunResult(
            n=n,
            protocol=self.protocol.name,
            source=source,
            success=success,
            rounds_executed=rounds_executed,
            rounds_to_completion=rounds_to_completion,
            total_push_transmissions=totals["push"],
            total_pull_transmissions=totals["pull"],
            total_channels_opened=totals["channels"],
            total_lost_transmissions=totals["lost"],
            final_informed=int(state.informed_count),
            history=history,
            phase_transmissions=phase_transmissions,
            metadata=metadata,
        )

    # -- dynamic membership (vectorized churn) -------------------------------------

    def _reset_dynamic_topology(self) -> None:
        """Private mutable CSR copies for a fresh churn run.

        The caller's graph is never mutated on this path — departures
        tombstone rows, joins append — so re-running the engine (or running
        many seeds over one graph) needs no ``graph.copy()``; each run
        restarts from the graph's pristine CSR here.
        """
        indptr, indices = self.graph.csr()
        self._indptr = np.array(indptr, copy=True)
        self._indices = np.array(indices, copy=True)
        self._n = self._indptr.size - 1
        # Joiner degrees differ from the seed graph's, so the regular-graph
        # shortcuts no longer hold; everything runs off per-row stub counts.
        self._uniform_degree = None
        self._invalidate_topology_caches()
        self._departures_total = 0
        self._arrivals_total = 0
        self._node_compactions = 0

    def _invalidate_topology_caches(self) -> None:
        self._degrees_array = None
        self._degree_positive_array = None
        self._all_degrees_positive = None
        self._nz_cache = None
        self._channel_cost_cache = {}
        self._channel_info_cache = {}

    def _apply_churn(self, round_index: int, state: VectorState) -> None:
        """Run the churn model's bulk hook, then compact if enough ids died."""
        ops = VectorChurnOps(self, state, round_index)
        event = self.churn_model.vector_apply(round_index, ops, self._churn_rng)
        self._departures_total += event.departures
        self._arrivals_total += event.arrivals
        if self.config.churn_node_compaction:
            dead = state.n - state.alive_count
            # Same threshold as batch row compaction: each compaction costs
            # one O(live + stubs) rebuild, so waiting for a quarter of the id
            # space keeps total copy volume linear while the per-round scans
            # track the live network instead of the tombstones.
            if dead and dead * 4 >= state.n:
                self._compact_nodes(state)

    def _depart_nodes(self, ids: np.ndarray, state: VectorState) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        state.remove_nodes(ids)
        self.protocol.vector_remove_nodes(ids, state)
        # Degrees and cost arrays are untouched (tombstone rows keep their
        # stubs); only the live-node aggregates change.
        self._nz_cache = None
        self._channel_info_cache = {}

    def _join_nodes(
        self,
        count: int,
        target_degree: int,
        generator: np.random.Generator,
        state: VectorState,
    ) -> List[int]:
        count = int(count)
        if count <= 0:
            return []
        splices = max(1, int(target_degree) // 2)
        # Snapshot the live stub space *before* growing: stub positions are
        # (live-rank, offset) pairs, invariant under compaction renumbering.
        alive_nodes = np.flatnonzero(state.alive)
        base_n = state.n
        degrees = self._degrees
        live_degrees = degrees[alive_nodes].astype(np.int64, copy=False)
        cum = np.cumsum(live_degrees)
        total_stubs = int(cum[-1]) if cum.size else 0

        new_ids = state.grow_nodes(count)
        indptr = self._indptr
        indices = self._indices
        rows: List[List[int]] = [[] for _ in range(count)]
        if total_stubs > 0:
            uniforms = generator.random(count * splices)
            positions = (uniforms * total_stubs).astype(np.int64)
            np.minimum(positions, total_stubs - 1, out=positions)
            owner_rank = np.searchsorted(cum, positions, side="right")
            owners = alive_nodes[owner_rank]
            offsets = positions - (cum[owner_rank] - live_degrees[owner_rank])
            stub_pos = indptr[owners].astype(np.int64) + offsets
            alive = state.alive
            draw = 0
            for j in range(count):
                joiner = int(new_ids[j])
                row = rows[j]
                for _ in range(splices):
                    u = int(owners[draw])
                    pos = int(stub_pos[draw])
                    draw += 1
                    v = int(indices[pos])
                    # Skip tombstones (dead or -1 targets), self-loop stubs,
                    # and targets without a CSR row yet (same-round joiners)
                    # — the bulk analog of the scalar path's has_edge check.
                    if v < 0 or v >= base_n or v == u or not alive[v]:
                        continue
                    back = np.flatnonzero(
                        indices[indptr[v] : indptr[v + 1]] == u
                    )
                    if back.size == 0:
                        continue
                    indices[pos] = joiner
                    indices[int(indptr[v]) + int(back[0])] = joiner
                    row.append(u)
                    row.append(v)

        lengths = np.fromiter(
            (len(row) for row in rows), count=count, dtype=indptr.dtype
        )
        new_indptr = np.empty(indptr.size + count, dtype=indptr.dtype)
        new_indptr[: indptr.size] = indptr
        np.cumsum(lengths, out=new_indptr[indptr.size :])
        new_indptr[indptr.size :] += indptr[-1]
        tail_parts = [
            np.asarray(row, dtype=indices.dtype) for row in rows if row
        ]
        if tail_parts:
            self._indices = np.concatenate([indices] + tail_parts)
        self._indptr = new_indptr
        self._n = new_indptr.size - 1
        self._invalidate_topology_caches()
        return [int(node) for node in new_ids]

    def _compact_nodes(self, state: VectorState) -> None:
        """Renumber dead ids away: state planes, CSR, and protocol pools.

        The remap is monotone on survivors (``remap[keep[i]] = i``), so every
        position/degree-based draw downstream is unchanged — compaction
        on/off is bit-transparent, mirroring batch row compaction.
        """
        keep = np.flatnonzero(state.alive)
        indptr = self._indptr
        indices = self._indices
        remap = state.compact_nodes(keep)
        lengths = np.diff(indptr)[keep]
        total = int(lengths.sum())
        new_indptr = np.zeros(keep.size + 1, dtype=indptr.dtype)
        np.cumsum(lengths, out=new_indptr[1:])
        if total:
            starts = np.repeat(indptr[keep], lengths)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            values = indices[starts + within]
            # Dead targets (stale ids and prior -1 sentinels) all map to -1:
            # remap already carries -1 for dropped ids, so only the -1
            # entries themselves need the index guard.
            sentinel = values < 0
            safe = np.where(sentinel, 0, values)
            mapped = remap[safe].astype(indices.dtype, copy=False)
            mapped[sentinel] = -1
            self._indices = mapped
        else:
            self._indices = np.empty(0, dtype=indices.dtype)
        self._indptr = new_indptr
        self._n = keep.size
        self.protocol.vector_compact_nodes(remap, state)
        self._invalidate_topology_caches()
        self._node_compactions += 1

    # -- dynamic-aware CSR aggregates ----------------------------------------------

    def _nz(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self._dynamic:
            return super()._nz()
        # Dynamic mode: "every node with a neighbour" additionally means
        # *live* — dead rows are tombstones that must never sample.
        if self._nz_cache is None:
            alive = self._state.alive
            if self._all_positive():
                nodes = np.flatnonzero(alive)
            else:
                nodes = np.flatnonzero(alive & self._degree_positive)
            nodes = nodes.astype(self._indices.dtype, copy=False)
            self._nz_cache = (nodes, self._degrees[nodes])
        return self._nz_cache

    def _channel_info(self, fanout: int) -> Tuple[int, Optional[int]]:
        if not self._dynamic:
            return super()._channel_info(fanout)
        cached = self._channel_info_cache.get(fanout)
        if cached is None:
            total = int(
                self._channel_cost_array(fanout)[self._state.alive].sum()
            )
            cached = (total, None)
            self._channel_info_cache[fanout] = cached
        return cached

    # -- round mechanics -------------------------------------------------------------

    def _push_samplers(self, round_index: int, state: VectorState) -> np.ndarray:
        """This round's pushers with a neighbour, as a sorted index vector.

        Uses the protocol's index pool when available (O(pushers)), the
        boolean mask otherwise (O(n) scan) — same set, same ascending order,
        so the draw sequence does not depend on the representation.
        """
        if self.protocol.uses_index_pools:
            pool = self.protocol.vector_push_samplers(round_index, state)
            if pool is not None:
                if self._all_positive():
                    return pool
                return pool[self._degree_positive[pool]]
        push_mask = self.protocol.vector_wants_push(round_index, state)
        if self._all_positive():
            return np.flatnonzero(push_mask)
        return np.flatnonzero(push_mask & self._degree_positive)

    def _channels_opened(self, round_index: int, state: VectorState, fanout: int) -> int:
        """Channels charged this round (full phone-call model arithmetic).

        Every calling node opens min(fanout, degree) channels per round,
        whether or not its calls can carry information — identical to the
        scalar engine's accounting.  Protocols whose uninformed nodes stay
        silent report the calling set (as an index pool or a mask) so the
        charge matches the scalar per-node fanout of 0.
        """
        channel_total, uniform_cost = self._channel_info(fanout)
        if self.protocol.uses_index_pools:
            pool = self.protocol.vector_caller_pool(round_index, state)
            if pool is not None:
                if uniform_cost is not None:
                    return int(pool.size) * uniform_cost
                return int(self._channel_cost_array(fanout)[pool].sum())
        caller_mask = self.protocol.vector_caller_mask(round_index, state)
        if caller_mask is None:
            return channel_total
        if uniform_cost is not None:
            return int(caller_mask.sum()) * uniform_cost
        return int(self._channel_cost_array(fanout)[caller_mask].sum())

    def _run_round(self, round_index: int, state: VectorState) -> RoundRecord:
        protocol = self.protocol
        informed_before = int(state.informed_count)

        push_active = protocol.push_round(round_index)
        pull_active = protocol.pull_round(round_index)
        fanout = protocol.vector_fanout(round_index)

        channels_opened = self._channels_opened(round_index, state, fanout)

        pull_mask = protocol.vector_wants_pull(round_index, state) if pull_active else None

        # Only channels that can carry a message this round are materialised:
        # in pull rounds any caller may receive, in push-only rounds only the
        # pushers' calls matter.
        push_mask: Optional[np.ndarray] = None
        if pull_active:
            samplers = self._nz()[0]
            if push_active:
                push_mask = protocol.vector_wants_push(round_index, state)
        elif push_active:
            samplers = self._push_samplers(round_index, state)
        else:
            samplers = np.empty(0, dtype=self._indices.dtype)

        if protocol.has_custom_vector_targets:
            if fanout != 1:
                raise SimulationError(
                    "custom bulk target selection requires uniform fanout 1"
                )
            if samplers.size:
                callers = samplers
                callees = protocol.vector_call_targets(
                    round_index, state, samplers, self._protocol_gen,
                    self._indptr, self._indices, self._degrees,
                )
            else:
                callers = callees = np.empty(0, dtype=np.int64)
        elif fanout == 1:
            callers = samplers
            if samplers.size:
                callees = self._fanout1_callees(self._protocol_gen, samplers)
            else:
                callees = np.empty(0, dtype=self._indices.dtype)
        else:
            callers, callees = _sample_stub_targets(
                self._protocol_gen, samplers, fanout,
                self._indptr, self._indices, self._degrees,
                uniform_degree=self._uniform_degree,
            )

        # Self-calls (self-loop stubs) count as opened channels but never
        # connect; failed channels are unusable for both directions; under
        # churn, stubs pointing at departed nodes (or compaction's -1
        # sentinels) are tombstones that connect nowhere.  On a static
        # self-loop-free graph with reliable channels nothing can be
        # filtered, so the pass is skipped outright.
        if self._dynamic or self._has_self_loops or self._channel_fail_p > 0.0:
            usable = callers != callees
            if self._dynamic and callees.size:
                valid = callees >= 0
                usable &= valid
                usable &= state.alive[np.where(valid, callees, 0)]
            if self._channel_fail_p > 0.0 and callers.size:
                usable &= self._failure_gen.random(callers.size) >= self._channel_fail_p
            if not usable.all():
                # Push-only deliveries never read the callers again, so the
                # caller compress (a full-size copy in the endgame) is only
                # paid when a pull can use it.
                callees = callees[usable]
                if pull_active:
                    callers = callers[usable]
                else:
                    callers = callees

        push_transmissions = 0
        pull_transmissions = 0
        lost_transmissions = 0
        delivered_parts: List[np.ndarray] = []

        if push_active and callers.size:
            if pull_active:
                sending = push_mask[callers]
                receivers = callees[sending]
            else:
                # Push-only rounds sample exactly the pushers, so the
                # push-mask gather would keep every channel.
                receivers = callees
            push_transmissions = int(receivers.size)
            receivers, lost = self._drop_lost(receivers)
            lost_transmissions += lost
            delivered_parts.append(receivers)

        if pull_active and callers.size:
            answering = pull_mask[callees]
            receivers = callers[answering]
            pull_transmissions = int(receivers.size)
            receivers, lost = self._drop_lost(receivers)
            lost_transmissions += lost
            delivered_parts.append(receivers)

        if len(delivered_parts) == 1:
            delivered = delivered_parts[0]
        elif delivered_parts:
            delivered = np.concatenate(delivered_parts)
        else:
            delivered = np.empty(0, dtype=np.int64)

        newly_informed = state.commit_delivered(delivered, round_index)
        protocol.vector_on_round_committed(round_index, state, newly_informed)

        return RoundRecord(
            round_index=round_index,
            informed_before=informed_before,
            informed_after=int(state.informed_count),
            push_transmissions=push_transmissions,
            pull_transmissions=pull_transmissions,
            channels_opened=channels_opened,
            lost_transmissions=lost_transmissions,
            phase=protocol.phase_label(round_index),
        )

    def _drop_lost(self, receivers: np.ndarray) -> Tuple[np.ndarray, int]:
        """Apply per-transmission loss; return (delivered receivers, lost count)."""
        if self._loss_p <= 0.0 or receivers.size == 0:
            return receivers, 0
        lost_mask = self._failure_gen.random(receivers.size) < self._loss_p
        lost = int(lost_mask.sum())
        if lost:
            receivers = receivers[~lost_mask]
        return receivers, lost


class BatchedVectorizedRoundEngine(_BulkEngineBase):
    """Runs R independent replications of one configuration in lock-step.

    Every replication uses its own seed from ``seeds`` (generator streams
    spawned exactly as :class:`VectorizedRoundEngine` spawns them) and its
    per-replication draw sequence is kept call-for-call identical to a single
    run, so each row of the batch is bit-identical to the corresponding
    single-seed vectorized run.  The whole ensemble's state lives in one
    ``(R, n)`` :class:`VectorState`; delivery scatter, commits, and channel
    accounting are performed once per round for all replications together,
    and completed replications are compacted out of the state as they finish
    (see the module docstring).

    One protocol instance drives all replications; it is :meth:`reset` once at
    the start of the batch, and protocols with per-node state (e.g. the
    quasirandom pointer table) keep it per replication via the ``row``
    argument of the bulk hooks (and remap it on compaction via
    ``vector_compact_rows``).
    """

    def __init__(
        self,
        graph: Graph,
        protocol: BroadcastProtocol,
        seeds: Sequence[int],
        config: Optional[SimulationConfig] = None,
        failure_model: Optional[FailureModel] = None,
        churn_model: Optional[ChurnModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if len(seeds) == 0:
            raise SimulationError("batched run requires at least one seed")
        self.graph = graph
        self.protocol = protocol
        self.config = config if config is not None else SimulationConfig()
        self.failure_model = _resolve_failure_model(self.config, failure_model)
        self.churn_model = churn_model if churn_model is not None else NoChurn()
        self.seeds = [int(seed) for seed in seeds]

        reason = vectorization_unsupported_reason(
            graph,
            protocol,
            self.config,
            self.failure_model,
            self.churn_model,
            tracer,
            batched=True,
        )
        if reason is not None:
            raise SimulationError(f"run cannot be vectorized: {reason}")

        # Per-replication streams, spawned with the single-run labels so the
        # draw sequences line up bit-for-bit with VectorizedRoundEngine.
        self._protocol_gens = []
        self._failure_gens = []
        for seed in self.seeds:
            rng = RandomSource(seed=seed, name="engine")
            self._protocol_gens.append(rng.spawn("protocol").generator)
            self._failure_gens.append(rng.spawn("failures").generator)

        self._init_failure_probabilities()
        self._init_bulk_state(graph)
        # Row compaction only applies when completed rows actually leave the
        # round loop (early stopping); it is bit-transparent either way.
        self._compaction = bool(
            self.config.batch_row_compaction and self.config.stop_when_informed
        )

    # -- public API ---------------------------------------------------------------

    def run(self, source: int = 0) -> List[RunResult]:
        """Run all replications; returns one :class:`RunResult` per seed."""
        if source not in self.graph:
            raise SimulationError(f"source node {source} is not in the graph")

        n = self.graph.node_count
        batch = len(self.seeds)
        self.protocol.reset()
        state = VectorState(n=n, source=source, batch=batch)
        if self.protocol.uses_index_pools:
            state.enable_index_tracking()
        horizon = self.protocol.horizon()
        if self.config.max_rounds is not None:
            horizon = min(horizon, self.config.max_rounds)

        # Live generator lists and the state-row -> original-seed map; both
        # shrink together with the state when rows are compacted away.
        self._live_protocol_gens = list(self._protocol_gens)
        self._live_failure_gens = list(self._failure_gens)
        origin = np.arange(batch, dtype=np.int64)

        active = np.ones(batch, dtype=bool)
        rounds_to_completion = np.full(batch, -1, dtype=np.int64)
        rounds_executed = np.zeros(batch, dtype=np.int64)
        success = np.zeros(batch, dtype=bool)
        final_informed = np.zeros(batch, dtype=np.int64)
        totals = {
            key: np.zeros(batch, dtype=np.int64)
            for key in ("push", "pull", "channels", "lost")
        }
        collect = self.config.collect_round_history
        histories: List[list] = [[] for _ in range(batch)]
        phase_transmissions: List[dict] = [{} for _ in range(batch)]

        for round_index in range(1, horizon + 1):
            active_rows = np.flatnonzero(active)
            if active_rows.size == 0:
                break
            informed_before = np.array(state.informed_count, copy=True)
            push_tx, pull_tx, channels, lost = self._run_round_batch(
                round_index, state, active_rows
            )
            executed = origin[active_rows]
            rounds_executed[executed] = round_index
            totals["push"][origin] += push_tx
            totals["pull"][origin] += pull_tx
            totals["channels"][origin] += channels
            totals["lost"][origin] += lost

            phase = self.protocol.phase_label(round_index)
            informed_after = state.informed_count
            if phase:
                for local in active_rows:
                    row = int(origin[local])
                    phase_transmissions[row][phase] = phase_transmissions[row].get(
                        phase, 0
                    ) + int(push_tx[local] + pull_tx[local])
            if collect:
                for local in active_rows:
                    histories[int(origin[local])].append(
                        RoundRecord(
                            round_index=round_index,
                            informed_before=int(informed_before[local]),
                            informed_after=int(informed_after[local]),
                            push_transmissions=int(push_tx[local]),
                            pull_transmissions=int(pull_tx[local]),
                            channels_opened=int(channels[local]),
                            lost_transmissions=int(lost[local]),
                            phase=phase,
                        )
                    )

            done = active & state.all_informed()
            newly_done = done & (rounds_to_completion[origin] < 0)
            if newly_done.any():
                rounds_to_completion[origin[newly_done]] = round_index
                if self.config.stop_when_informed:
                    active &= ~newly_done
                    dead = state.batch - int(active.sum())
                    # Compact once a quarter of the state rows are dead: each
                    # event costs one O(live·n) copy, so the threshold keeps
                    # the total copy volume linear in R·n while the per-round
                    # O(rows·n) terms (dense commits, informed-index merges)
                    # track the live ensemble instead of the original batch.
                    if self._compaction and dead * 4 >= state.batch:
                        keep = np.flatnonzero(active)
                        dropped_origin = origin[~active]
                        success[dropped_origin] = True
                        final_informed[dropped_origin] = n
                        if keep.size == 0:
                            origin = origin[keep]
                            break
                        # Protocol first (it may need the old row count),
                        # then the engine-owned state and generator lists.
                        self.protocol.vector_compact_rows(keep, n, state.batch)
                        state.compact_rows(keep)
                        origin = origin[keep]
                        self._live_protocol_gens = [
                            self._live_protocol_gens[i] for i in keep
                        ]
                        self._live_failure_gens = [
                            self._live_failure_gens[i] for i in keep
                        ]
                        active = np.ones(state.batch, dtype=bool)

        # Rows still in the state at the end (never compacted away).
        if origin.size:
            live_finished = state.all_informed()
            success[origin] = live_finished
            final_informed[origin] = state.informed_count

        shared_metadata = {
            "protocol": self.protocol.describe(),
            "failure_model": self.failure_model.describe(),
            "churn_model": self.churn_model.describe(),
            "final_node_count": self.graph.node_count,
            "engine": "vectorized",
        }
        results: List[RunResult] = []
        for row in range(batch):
            results.append(
                RunResult(
                    n=n,
                    protocol=self.protocol.name,
                    source=source,
                    success=bool(success[row]),
                    rounds_executed=int(rounds_executed[row]),
                    rounds_to_completion=(
                        int(rounds_to_completion[row])
                        if rounds_to_completion[row] >= 0
                        else None
                    ),
                    total_push_transmissions=int(totals["push"][row]),
                    total_pull_transmissions=int(totals["pull"][row]),
                    total_channels_opened=int(totals["channels"][row]),
                    total_lost_transmissions=int(totals["lost"][row]),
                    final_informed=int(final_informed[row]),
                    history=histories[row],
                    phase_transmissions=phase_transmissions[row],
                    metadata={**shared_metadata, "batch_size": batch},
                )
            )
        return results

    # -- round mechanics -------------------------------------------------------------

    def _pool_bounds(self, pool: np.ndarray, n: int, batch: int) -> np.ndarray:
        """Row-boundary positions of a sorted flat index pool."""
        return np.searchsorted(pool, np.arange(batch + 1, dtype=np.int64) * n)

    def _pool_row_samplers(
        self, pool: np.ndarray, bounds: np.ndarray, row: int, n: int
    ) -> np.ndarray:
        """One row's pool segment as node ids, neighbourless nodes removed.

        The single place that turns flat ``row * n + node`` pool entries back
        into per-row sampler ids — shared by the fanout-1 segment builder and
        the per-row (custom-target / fanout > 1) loop so the two sampling
        paths cannot drift.  The result is exactly what a boolean-mask scan
        of that row would produce, at O(segment) instead of O(n).
        """
        segment = pool[int(bounds[row]) : int(bounds[row + 1])]
        if segment.size:
            segment = segment - pool.dtype.type(row * n)
            if not self._all_positive():
                segment = segment[self._degree_positive[segment]]
        return segment

    def _pool_segments(
        self,
        pool: np.ndarray,
        active_rows: np.ndarray,
        n: int,
        batch: int,
    ) -> Tuple[np.ndarray, List[int], List[int]]:
        """Split a sorted flat index pool into per-active-row node-id segments.

        Returns ``(cols, part_rows, part_lengths)`` in ascending-row order:
        ``cols`` holds node ids (row offsets removed), ``part_rows`` the state
        row of each non-empty segment.  Dead rows' entries are skipped without
        being touched.
        """
        bounds = self._pool_bounds(pool, n, batch)
        part_rows: List[int] = []
        part_lengths: List[int] = []
        pieces: List[np.ndarray] = []
        for row in active_rows.tolist():
            segment = self._pool_row_samplers(pool, bounds, row, n)
            if segment.size == 0:
                continue
            part_rows.append(row)
            part_lengths.append(int(segment.size))
            pieces.append(segment)
        if not pieces:
            return np.empty(0, dtype=pool.dtype), part_rows, part_lengths
        cols = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        return cols, part_rows, part_lengths

    def _run_round_batch(
        self,
        round_index: int,
        state: VectorState,
        active_rows: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One lock-step round; returns per-state-row counter arrays."""
        protocol = self.protocol
        n = state.n
        batch = state.batch

        push_active = protocol.push_round(round_index)
        pull_active = protocol.pull_round(round_index)
        fanout = protocol.vector_fanout(round_index)

        pull_mask = protocol.vector_wants_pull(round_index, state) if pull_active else None
        push_mask: Optional[np.ndarray] = None
        if push_active and pull_active:
            push_mask = protocol.vector_wants_push(round_index, state)

        channels = self._channels_batch(round_index, state, fanout, active_rows)

        custom = protocol.has_custom_vector_targets
        if custom and fanout != 1:
            raise SimulationError(
                "custom bulk target selection requires uniform fanout 1"
            )

        # Stage A — per-replication sampling.  Generator draws cannot be
        # merged across replications (each row owns its stream, and parity
        # with single runs pins the exact call sequence), so the per-row work
        # is exactly one draw on the fast path; sampler construction,
        # offset arithmetic, gathers, filtering, and commit are all batched
        # over the concatenated channel arrays.  ``cols`` holds caller node
        # ids, ``bases`` the ``row * n`` flattening offsets, and ``row_of``
        # the replication of each channel, in ascending-row order throughout
        # (the per-replication counting and loss draws rely on it).
        cols = np.empty(0, dtype=np.int64)
        bases = np.empty(0, dtype=np.int64)
        callees = np.empty(0, dtype=np.int64)
        part_rows: List[int] = []
        part_lengths: List[int] = []
        if (push_active or pull_active) and fanout > 0:
            if fanout == 1 and not custom:
                uniform = self._uniform_degree
                if pull_active:
                    # Every node with a neighbour samples, in every active
                    # replication: the sampler set is one tiled constant.
                    nz_nodes, nz_degrees = self._nz()
                    size = int(nz_nodes.size)
                    if size:
                        part_rows = active_rows.tolist()
                        part_lengths = [size] * len(part_rows)
                        cols = np.tile(nz_nodes, active_rows.size)
                        if uniform is None:
                            sampler_degrees = np.tile(
                                nz_degrees, active_rows.size
                            )
                else:
                    cols, part_rows, part_lengths = self._push_sampler_segments(
                        round_index, state, active_rows
                    )
                if part_rows:
                    if not pull_active:
                        bases = np.repeat(
                            np.asarray(part_rows, dtype=np.int64) * n,
                            np.asarray(part_lengths, dtype=np.int64),
                        )
                        if uniform is None:
                            sampler_degrees = self._degrees[cols]
                    draws = [
                        self._live_protocol_gens[row].random(size)
                        for row, size in zip(part_rows, part_lengths)
                    ]
                    uniforms = draws[0] if len(draws) == 1 else np.concatenate(draws)
                    if uniform is not None:
                        offsets = _fanout1_offsets(uniforms, uniform)
                        callees = self._indices[cols * uniform + offsets]
                    else:
                        offsets = _fanout1_offsets(uniforms, sampler_degrees)
                        callees = self._indices[self._indptr[cols] + offsets]
            else:
                cols, callees, part_rows, part_lengths = self._per_row_targets(
                    round_index, state, active_rows, fanout, custom
                )

        push_tx = np.zeros(batch, dtype=np.int64)
        pull_tx = np.zeros(batch, dtype=np.int64)
        lost = np.zeros(batch, dtype=np.int64)

        if cols.size:
            row_array = np.asarray(part_rows, dtype=np.int64)
            length_array = np.asarray(part_lengths, dtype=np.int64)
            if bases.size != cols.size:
                bases = np.repeat(row_array * n, length_array)
            callers_flat = cols + bases
            callees_flat = callees + bases
            row_of: Optional[np.ndarray] = None
            filtered = False

            # Self-calls (self-loop stubs) never connect and failed channels
            # are unusable in both directions; on a self-loop-free graph with
            # reliable channels the filter would keep everything, so skip it.
            if self._has_self_loops or self._channel_fail_p > 0.0:
                usable = cols != callees
                if self._channel_fail_p > 0.0:
                    position = 0
                    for row, size in zip(part_rows, part_lengths):
                        usable[position : position + size] &= (
                            self._live_failure_gens[row].random(size)
                            >= self._channel_fail_p
                        )
                        position += size
                if not usable.all():
                    filtered = True
                    row_of = np.repeat(row_array, length_array)[usable]
                    callers_flat = callers_flat[usable]
                    callees_flat = callees_flat[usable]

            delivered_parts: List[np.ndarray] = []
            if push_active and callers_flat.size:
                if pull_active:
                    # In pull rounds everyone samples, so the pushers are the
                    # subset flagged by the mask …
                    if row_of is None:
                        row_of = np.repeat(row_array, length_array)
                    sending = push_mask.reshape(-1)[callers_flat]
                    receivers = callees_flat[sending]
                    receiver_rows = row_of[sending]
                    push_tx = np.bincount(receiver_rows, minlength=batch)
                else:
                    # … while push-only rounds sample exactly the pushers,
                    # making the mask gather a keep-everything no-op.
                    receivers = callees_flat
                    if row_of is None and self._loss_p > 0.0:
                        row_of = np.repeat(row_array, length_array)
                    receiver_rows = row_of
                    if filtered:
                        push_tx = np.bincount(receiver_rows, minlength=batch)
                    else:
                        push_tx[row_array] = length_array
                receivers, lost_rows = self._drop_lost_rows(receivers, receiver_rows)
                lost += lost_rows
                delivered_parts.append(receivers)

            if pull_active and callers_flat.size:
                if row_of is None:
                    row_of = np.repeat(row_array, length_array)
                answering = pull_mask.reshape(-1)[callees_flat]
                receivers = callers_flat[answering]
                receiver_rows = row_of[answering]
                pull_tx = np.bincount(receiver_rows, minlength=batch)
                receivers, lost_rows = self._drop_lost_rows(receivers, receiver_rows)
                lost += lost_rows
                delivered_parts.append(receivers)

            if len(delivered_parts) == 1:
                delivered = delivered_parts[0]
            elif delivered_parts:
                delivered = np.concatenate(delivered_parts)
            else:
                delivered = np.empty(0, dtype=np.int64)
        else:
            delivered = np.empty(0, dtype=np.int64)

        newly_informed = state.commit_delivered(delivered, round_index)
        protocol.vector_on_round_committed(round_index, state, newly_informed)
        return push_tx, pull_tx, channels, lost

    def _channels_batch(
        self,
        round_index: int,
        state: VectorState,
        fanout: int,
        active_rows: np.ndarray,
    ) -> np.ndarray:
        """Per-state-row channel charge for this round."""
        batch = state.batch
        n = state.n
        channel_total, uniform_cost = self._channel_info(fanout)
        channels = np.zeros(batch, dtype=np.int64)
        if self.protocol.uses_index_pools:
            pool = self.protocol.vector_caller_pool(round_index, state)
            if pool is not None:
                bounds = self._pool_bounds(pool, n, batch)
                lengths = np.diff(bounds)
                if uniform_cost is not None:
                    per_row = lengths * uniform_cost
                else:
                    cost = self._channel_cost_array(fanout)
                    sums = np.concatenate(
                        ([0], np.cumsum(cost[pool % n]))
                    )
                    per_row = sums[bounds[1:]] - sums[bounds[:-1]]
                channels[active_rows] = per_row[active_rows]
                return channels
        caller_mask = self.protocol.vector_caller_mask(round_index, state)
        if caller_mask is None:
            channels[active_rows] = channel_total
        elif uniform_cost is not None:
            channels[active_rows] = (
                caller_mask[active_rows].sum(axis=1) * uniform_cost
            )
        else:
            cost = self._channel_cost_array(fanout)
            per_row = (cost[None, :] * caller_mask).sum(axis=1)
            channels[active_rows] = per_row[active_rows]
        return channels

    def _push_sampler_segments(
        self, round_index: int, state: VectorState, active_rows: np.ndarray
    ) -> Tuple[np.ndarray, List[int], List[int]]:
        """Push-only sampler node ids per active row (ascending-row order)."""
        n = state.n
        batch = state.batch
        if self.protocol.uses_index_pools:
            pool = self.protocol.vector_push_samplers(round_index, state)
            if pool is not None:
                return self._pool_segments(pool, active_rows, n, batch)
        push_mask = self.protocol.vector_wants_push(round_index, state)
        # Work on the active rows only: when replications have completed,
        # the scan shrinks with the live ensemble instead of staying
        # O(R·n) until the last straggler.
        if active_rows.size == batch:
            mask = push_mask
            row_ids = None
        else:
            mask = push_mask[active_rows]
            row_ids = active_rows
        if not self._all_positive():
            mask = mask & self._degree_positive
        flat = np.flatnonzero(mask.ravel())
        part_rows: List[int] = []
        part_lengths: List[int] = []
        cols = np.empty(0, dtype=np.int64)
        if flat.size:
            live = active_rows.size
            row_boundaries = np.arange(live + 1, dtype=np.int64) * n
            counts = np.diff(np.searchsorted(flat, row_boundaries))
            occupied = np.flatnonzero(counts)
            for local in occupied.tolist():
                part_rows.append(
                    local if row_ids is None else int(row_ids[local])
                )
                part_lengths.append(int(counts[local]))
            cols = flat - np.repeat(occupied * n, counts[occupied])
        return cols, part_rows, part_lengths

    def _per_row_targets(
        self,
        round_index: int,
        state: VectorState,
        active_rows: np.ndarray,
        fanout: int,
        custom: bool,
    ) -> Tuple[np.ndarray, np.ndarray, List[int], List[int]]:
        """Sampling paths that must loop rows: custom targets and fanout > 1."""
        protocol = self.protocol
        n = state.n
        batch = state.batch
        pull_active = protocol.pull_round(round_index)

        pool: Optional[np.ndarray] = None
        pool_bounds: Optional[np.ndarray] = None
        push_mask: Optional[np.ndarray] = None
        if not pull_active:
            if protocol.uses_index_pools:
                pool = protocol.vector_push_samplers(round_index, state)
            if pool is not None:
                pool_bounds = self._pool_bounds(pool, n, batch)
            else:
                push_mask = protocol.vector_wants_push(round_index, state)

        caller_parts: List[np.ndarray] = []
        callee_parts: List[np.ndarray] = []
        part_rows: List[int] = []
        part_lengths: List[int] = []
        for row in active_rows.tolist():
            if pull_active:
                samplers = self._nz()[0]
            elif pool is not None:
                samplers = self._pool_row_samplers(pool, pool_bounds, row, n)
            else:
                samplers = np.flatnonzero(push_mask[row] & self._degree_positive)
            if samplers.size == 0:
                continue
            generator = self._live_protocol_gens[row]
            if custom:
                row_callees = protocol.vector_call_targets(
                    round_index, state, samplers, generator,
                    self._indptr, self._indices, self._degrees, row=row,
                )
                row_callers = samplers
            else:
                row_callers, row_callees = _sample_stub_targets(
                    generator, samplers, fanout,
                    self._indptr, self._indices, self._degrees,
                    uniform_degree=self._uniform_degree,
                )
            caller_parts.append(row_callers)
            callee_parts.append(row_callees)
            part_rows.append(row)
            part_lengths.append(int(row_callers.size))
        if not caller_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, part_rows, part_lengths
        cols = np.concatenate(caller_parts)
        callees = np.concatenate(callee_parts)
        return cols, callees, part_rows, part_lengths

    def _drop_lost_rows(
        self, receivers: np.ndarray, receiver_rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-replication transmission loss over row-grouped flat receivers.

        ``receiver_rows`` (the replication of each receiver) must be
        non-decreasing — which the row-ordered sampling stage guarantees — so
        each replication's loss draw matches the single-run ``_drop_lost``
        call exactly.
        """
        batch = len(self._live_failure_gens)
        lost = np.zeros(batch, dtype=np.int64)
        if self._loss_p <= 0.0 or receivers.size == 0:
            return receivers, lost
        bounds = np.searchsorted(receiver_rows, np.arange(batch + 1))
        kept_parts: List[np.ndarray] = []
        for row in range(batch):
            start, end = int(bounds[row]), int(bounds[row + 1])
            if end == start:
                continue
            lost_mask = self._live_failure_gens[row].random(end - start) < self._loss_p
            dropped = int(lost_mask.sum())
            if dropped:
                lost[row] = dropped
                kept_parts.append(receivers[start:end][~lost_mask])
            else:
                kept_parts.append(receivers[start:end])
        if kept_parts:
            receivers = np.concatenate(kept_parts)
        else:
            receivers = np.empty(0, dtype=np.int64)
        return receivers, lost
