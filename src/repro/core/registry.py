"""A shared plugin-registry mechanism for protocols, graph families, and failures.

Experiments, scenario specs, and the CLI refer to pluggable components by
short string ids (``"push"``, ``"random-regular"``, ``"independent-loss"``).
Each component kind keeps one :class:`Registry` instance mapping those ids to
constructor callables plus human-readable help text, so sweep definitions stay
declarative data instead of imports, and so the CLI ``list-*`` commands and
:mod:`repro.spec` validation can all be driven from one place.

A registry entry knows which keyword arguments its builder accepts (derived
from the builder's signature), which lets callers validate a kwargs dict
*before* spending any compute and raise a :class:`ConfigurationError` that
names the offending key.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from .errors import ConfigurationError

__all__ = ["Registry", "RegistryEntry"]


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its id, builder, and help text.

    Attributes
    ----------
    name:
        The string id users write in specs and on the command line.
    builder:
        Callable constructing the component.
    summary:
        One-line description shown by the CLI ``list-*`` commands.
    params:
        Mapping of keyword-argument name to a one-line help string.  Only
        documented kwargs appear in CLI help; validation uses the builder's
        actual signature, so undocumented-but-accepted kwargs still work.
    """

    name: str
    builder: Callable[..., Any]
    summary: str = ""
    params: Mapping[str, str] = field(default_factory=dict)

    def accepted_kwargs(self) -> Optional[frozenset]:
        """Keyword names the builder accepts, or ``None`` if it takes ``**kwargs``."""
        try:
            signature = inspect.signature(self.builder)
        except (TypeError, ValueError):  # builtins without introspectable signatures
            return None
        names = set()
        for parameter in signature.parameters.values():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                return None
            if parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                names.add(parameter.name)
        return frozenset(names)


class Registry:
    """A name -> builder mapping with validation and discovery support.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"protocol"``, ``"graph family"``,
        ``"failure model"``), used in error messages and CLI output.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        builder: Callable[..., Any],
        summary: str = "",
        params: Optional[Mapping[str, str]] = None,
    ) -> RegistryEntry:
        """Register ``builder`` under ``name``; re-registration replaces."""
        entry = RegistryEntry(
            name=name, builder=builder, summary=summary, params=dict(params or {})
        )
        self._entries[name] = entry
        return entry

    # -- discovery -------------------------------------------------------------

    def names(self) -> List[str]:
        """The sorted list of registered ids."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[RegistryEntry]:
        for name in self.names():
            yield self._entries[name]

    def entry(self, name: str) -> RegistryEntry:
        """The entry registered under ``name``.

        Raises
        ------
        ConfigurationError
            Naming the unknown id and listing the available ones.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            ) from None

    def describe(self) -> Dict[str, Tuple[str, Mapping[str, str]]]:
        """Mapping of id to ``(summary, params help)`` for CLI listings."""
        return {
            entry.name: (entry.summary, entry.params) for entry in self
        }

    # -- validation & construction ---------------------------------------------

    def validate_kwargs(
        self, name: str, kwargs: Mapping[str, object], reserved: Tuple[str, ...] = ()
    ) -> None:
        """Check every key of ``kwargs`` against the builder's signature.

        ``reserved`` names are kwargs the *caller* supplies (e.g. a protocol's
        ``n_estimate`` or a graph builder's ``rng``); they are rejected when
        they appear in ``kwargs`` so specs cannot shadow runner-provided
        values.

        Raises
        ------
        ConfigurationError
            Naming the offending key and the accepted parameter names.
        """
        entry = self.entry(name)
        accepted = entry.accepted_kwargs()
        for key in kwargs:
            if key in reserved:
                raise ConfigurationError(
                    f"{self.kind} {name!r}: parameter {key!r} is supplied by the "
                    "runner and cannot be set explicitly"
                )
            if accepted is not None and key not in accepted:
                allowed = sorted(accepted - set(reserved))
                raise ConfigurationError(
                    f"{self.kind} {name!r} does not accept parameter {key!r}; "
                    f"accepted parameters: {', '.join(allowed)}"
                )

    def missing_required(
        self, name: str, kwargs: Mapping[str, object], reserved: Tuple[str, ...] = ()
    ) -> List[str]:
        """Required builder parameters absent from ``kwargs``.

        Parameters with defaults, ``reserved`` (runner-supplied) names, and
        positional-only parameters are not required of ``kwargs``.
        """
        entry = self.entry(name)
        try:
            signature = inspect.signature(entry.builder)
        except (TypeError, ValueError):
            return []
        missing = []
        for parameter in signature.parameters.values():
            if parameter.kind not in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            ):
                continue
            if parameter.default is not inspect.Parameter.empty:
                continue
            if parameter.name in reserved:
                continue
            if parameter.name not in kwargs:
                missing.append(parameter.name)
        return missing

    def build(self, name: str, *args: object, **kwargs: object) -> Any:
        """Validate ``kwargs`` and call the builder registered under ``name``."""
        self.validate_kwargs(name, kwargs)
        return self.entry(name).builder(*args, **kwargs)
