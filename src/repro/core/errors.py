"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation, protocol, or graph parameter is invalid.

    Raised eagerly (at object construction time) so that a misconfigured
    experiment fails before any compute is spent.
    """


class GraphGenerationError(ReproError):
    """A random graph could not be generated with the requested parameters.

    Typical causes: ``n * d`` odd (no d-regular graph exists), ``d >= n``,
    or exhausting the retry budget when rejection-sampling a simple graph.
    """


class ProtocolError(ReproError):
    """A protocol was driven in a way that violates its contract.

    For example, asking a phase-structured protocol for its decision in a
    round beyond its configured horizon.
    """


class SimulationError(ReproError):
    """The round engine reached an inconsistent state.

    This indicates a bug in the engine or a protocol implementation rather
    than a user configuration mistake, and therefore should never be caught
    and ignored by experiment code.
    """


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown or invalid target."""
