"""Deterministic, splittable random number streams.

Every stochastic component of the simulator (graph generation, per-node
neighbour choices, failure injection, churn) draws from its own named
sub-stream derived from a single master seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — a run is fully determined by ``(seed, parameters)``.
* **Isolation** — adding an extra draw in one component (say, the failure
  model) does not perturb the random choices made by another component (say,
  the protocol), so ablations compare like with like.

The implementation wraps :class:`numpy.random.Generator` seeded through
:class:`numpy.random.SeedSequence`, which is explicitly designed for spawning
statistically independent child streams.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RandomSource", "derive_seed"]


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a new 63-bit seed from ``seed`` and a sequence of labels.

    The derivation is a stable hash (a BLAKE2 digest of each label's string
    form, mixed through SeedSequence) of the master seed and the labels, so
    the same ``(seed, labels)`` pair always produces the same child seed
    across processes and Python versions.  Python's built-in ``hash`` is
    deliberately *not* used: string hashes are randomised per process
    (``PYTHONHASHSEED``), which would silently break cross-process
    reproducibility of every experiment seed.

    Parameters
    ----------
    seed:
        Master seed.
    labels:
        Arbitrary labels identifying the consumer, e.g. ``("graph", n, d)``
        or ``("replica", 3)``; each is digested via ``str(label)``.
    """
    material = [seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF]
    for label in labels:
        digest = hashlib.blake2b(str(label).encode("utf-8"), digest_size=4)
        material.append(int.from_bytes(digest.digest(), "little"))
    ss = np.random.SeedSequence(material)
    return int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


@dataclass
class RandomSource:
    """A named, seedable source of randomness with child-stream spawning.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  Two sources built from the same seed
        produce identical draw sequences.
    name:
        Human-readable label used when spawning children; purely for
        diagnostics and stable child derivation.
    """

    seed: int
    name: str = "root"
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        self._generator = np.random.default_rng(self.seed)

    # -- stream management -------------------------------------------------

    def spawn(self, *labels: object) -> "RandomSource":
        """Create an independent child source identified by ``labels``."""
        child_seed = derive_seed(self.seed, self.name, *labels)
        child_name = f"{self.name}/" + "/".join(str(label) for label in labels)
        return RandomSource(seed=child_seed, name=child_name)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for bulk vectorised draws)."""
        return self._generator

    # -- scalar draws --------------------------------------------------------

    def random(self) -> float:
        """A uniform float in ``[0, 1)``."""
        return float(self._generator.random())

    def randint(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high)``."""
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        return int(self._generator.integers(low, high))

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        if p == 0.0:
            return False
        if p == 1.0:
            return True
        return bool(self._generator.random() < p)

    # -- collection draws ----------------------------------------------------

    def choice(self, items: list):
        """A uniformly random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[int(self._generator.integers(0, len(items)))]

    def sample_distinct(self, items: list, k: int) -> list:
        """``k`` distinct elements of ``items``, uniformly without replacement.

        If ``k`` exceeds ``len(items)`` the whole list is returned in random
        order — this matches the phone-call model's behaviour for nodes whose
        degree is smaller than the fanout.
        """
        size = len(items)
        if size == 0:
            return []
        if k == 1:
            # Fast path: the standard phone call model samples a single
            # neighbour per round, so this branch dominates large runs.
            return [items[int(self._generator.integers(0, size))]]
        if k >= size:
            indices = self._generator.permutation(size)
            return [items[i] for i in indices]
        indices = self._generator.choice(size, size=k, replace=False)
        return [items[i] for i in indices]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._generator.shuffle(items)

    def permutation(self, n: int) -> np.ndarray:
        """A random permutation of ``range(n)``."""
        return self._generator.permutation(n)

    def binomial(self, n: int, p: float) -> int:
        """A binomial draw, used by bulk failure injection."""
        return int(self._generator.binomial(n, p))
