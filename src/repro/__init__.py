"""repro — randomised broadcasting in random regular networks.

A faithful, simulation-backed reproduction of Berenbrink, Elsässer and
Friedetzky, *"Efficient randomised broadcasting in random regular networks
with applications in peer-to-peer systems"* (PODC 2008 / Distributed
Computing 2016).

Quickstart
----------

>>> from repro import RandomSource, random_regular_graph, Algorithm1, run_broadcast
>>> rng = RandomSource(seed=1)
>>> graph = random_regular_graph(n=1024, d=8, rng=rng)
>>> result = run_broadcast(graph, Algorithm1(n_estimate=1024), seed=1)
>>> result.success
True

The public API re-exports the most commonly used pieces; the sub-packages
(:mod:`repro.core`, :mod:`repro.graphs`, :mod:`repro.protocols`,
:mod:`repro.failures`, :mod:`repro.p2p`, :mod:`repro.analysis`,
:mod:`repro.experiments`) expose the full surface.
"""

from .core import (
    ConfigurationError,
    GraphGenerationError,
    NodeState,
    RandomSource,
    ReproError,
    RoundEngine,
    RoundRecord,
    RunAggregate,
    RunResult,
    SimulationConfig,
    SimulationError,
    StateTable,
    VectorState,
    BatchedVectorizedRoundEngine,
    VectorizedRoundEngine,
    aggregate_runs,
    run_broadcast,
    run_broadcast_batch,
    vectorization_unsupported_reason,
)
from .failures import (
    EstimateError,
    IndependentLoss,
    NoChurn,
    ReliableDelivery,
    UniformChurn,
    available_failure_models,
    build_failure_model,
)
from .graphs import (
    Graph,
    available_graph_families,
    build_graph,
    complete_graph,
    connected_random_regular_graph,
    gnp_graph,
    hypercube_graph,
    pairing_multigraph,
    random_regular_graph,
)
from .protocols import (
    Algorithm1,
    Algorithm2,
    BroadcastProtocol,
    PullProtocol,
    PushProtocol,
    PushPullProtocol,
    QuasirandomPushProtocol,
    SequentialAlgorithm1,
    available_protocols,
    build_protocol,
)
from .spec import (
    FailureSpec,
    GraphSpec,
    PointRun,
    ProtocolSpec,
    ScenarioRun,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    load_spec,
    run_spec,
    save_spec,
)
from .dist import (
    ParallelScenarioExecutor,
    PointFailure,
    PointProgress,
    RetryPolicy,
    SweepInterrupted,
    log_point_progress,
    merge_runs,
)
from .faultinject import FaultPlan, FaultRule

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # core
    "RandomSource",
    "SimulationConfig",
    "RoundEngine",
    "VectorizedRoundEngine",
    "BatchedVectorizedRoundEngine",
    "vectorization_unsupported_reason",
    "run_broadcast",
    "run_broadcast_batch",
    "RunResult",
    "RoundRecord",
    "RunAggregate",
    "aggregate_runs",
    "NodeState",
    "StateTable",
    "VectorState",
    "ReproError",
    "ConfigurationError",
    "GraphGenerationError",
    "SimulationError",
    # graphs
    "Graph",
    "random_regular_graph",
    "connected_random_regular_graph",
    "pairing_multigraph",
    "complete_graph",
    "gnp_graph",
    "hypercube_graph",
    # protocols
    "BroadcastProtocol",
    "PushProtocol",
    "PullProtocol",
    "PushPullProtocol",
    "Algorithm1",
    "Algorithm2",
    "SequentialAlgorithm1",
    "QuasirandomPushProtocol",
    "build_protocol",
    "available_protocols",
    # failures
    "IndependentLoss",
    "ReliableDelivery",
    "UniformChurn",
    "NoChurn",
    "EstimateError",
    "build_failure_model",
    "available_failure_models",
    # graph/failure registries
    "build_graph",
    "available_graph_families",
    # scenario specs
    "ScenarioSpec",
    "GraphSpec",
    "ProtocolSpec",
    "FailureSpec",
    "SweepSpec",
    "SweepAxis",
    "ScenarioRun",
    "PointRun",
    "run_spec",
    "load_spec",
    "save_spec",
    # distributed sweeps
    "ParallelScenarioExecutor",
    "merge_runs",
    "PointProgress",
    "log_point_progress",
    # resilience & fault injection
    "RetryPolicy",
    "PointFailure",
    "SweepInterrupted",
    "FaultPlan",
    "FaultRule",
]
