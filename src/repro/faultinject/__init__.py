"""Deterministic fault injection for the sweep harness.

``repro.faultinject`` proves the resilience layer of :mod:`repro.dist`: a
:class:`FaultPlan` describes — as plain, seed-derivable, JSON-serialisable
data — exactly which faults strike which grid points (transient exceptions,
worker kills, timeout stalls, torn checkpoint writes, interrupts) and which
disk faults strike the streaming result sink (torn segment writes, ENOSPC,
fsync failures, SIGKILL after N records), and the executor replays it
deterministically via ``run_spec(fault_plan=...)`` or the CLI's hidden
``run-spec --fault-plan`` flag.

The cardinal invariant, asserted by the chaos suite
(``tests/test_faultinject.py``) and CI's
``benchmarks/check_parallel_parity.py --chaos``: a sweep that survives an
injected fault plan is **bit-identical, down to per-round history, to the
clean serial run** — recovery re-executes points, and the
seed = f(master, label) discipline makes re-execution invisible.
"""

from .plan import (
    FAULT_KINDS,
    SINK_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedTransientError,
    bundled_plans,
    bundled_stream_plans,
    load_plan,
    save_plan,
)

__all__ = [
    "FAULT_KINDS",
    "SINK_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedTransientError",
    "bundled_plans",
    "bundled_stream_plans",
    "load_plan",
    "save_plan",
]
