"""Deterministic fault plans and their injector.

A :class:`FaultPlan` is plain data — a tuple of :class:`FaultRule` entries,
JSON round-trippable like a :class:`~repro.spec.ScenarioSpec` — describing
exactly which faults strike which grid points on which dispatch.  Because
every rule is keyed on the point's grid **index** and its 1-based
**dispatch** number (how many times the executor has sent the point to a
worker), a plan replays identically on every run: there is no wall-clock or
scheduling dependence in *what* fails, only in *where* the work lands.

The injector has two halves:

* **worker side** — :meth:`FaultInjector.before_point` runs just before a
  point executes and can raise an :class:`InjectedTransientError`, stall the
  worker past its timeout budget (``time.sleep``), or kill the worker
  process outright (``os._exit``).  In ``"inline"`` mode (the executor's
  serial and fallback paths) kill and stall rules are skipped: they model
  worker-process faults, and the in-process path has no worker to lose.
* **parent side** — :meth:`FaultInjector.corrupt_checkpoint` truncates a
  just-written checkpoint file mid-record (simulating a torn write), and
  :meth:`FaultInjector.wants_interrupt` triggers the executor's clean
  SIGINT path after a chosen point completes (so interrupt handling has a
  deterministic regression test that sends no real signal).

Plans are either hand-built or sampled reproducibly from a seed with
:meth:`FaultPlan.sample`, which derives all of its randomness through
:func:`repro.core.rng.derive_seed` — the same plan comes back for the same
``(seed, point_count)`` on every platform.
"""

from __future__ import annotations

import errno
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError, ReproError
from ..core.rng import RandomSource, derive_seed

__all__ = [
    "FAULT_KINDS",
    "SINK_FAULT_KINDS",
    "InjectedTransientError",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "bundled_plans",
    "bundled_stream_plans",
    "load_plan",
    "save_plan",
]

#: Recognised rule kinds.
FAULT_KINDS = (
    "transient-error",
    "kill-worker",
    "stall",
    "truncate-checkpoint",
    "interrupt",
    # Disk-fault rules for the streaming result sink (repro.dist.sink):
    "torn-write",
    "enospc",
    "fsync-error",
    "kill-after-records",
)

#: Rules that strike the parent-side streaming sink, not a worker point.
SINK_FAULT_KINDS = ("torn-write", "enospc", "fsync-error", "kill-after-records")

PathLike = Union[str, Path]

_ENOSPC = errno.ENOSPC
_EIO = errno.EIO


class InjectedTransientError(ReproError):
    """The synthetic transient failure raised by ``transient-error`` rules."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault site.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`:

        * ``"transient-error"`` — raise :class:`InjectedTransientError`
          before the point runs (worker and inline paths);
        * ``"kill-worker"`` — ``os._exit`` the worker process (skipped
          inline);
        * ``"stall"`` — sleep ``duration`` seconds before the point runs,
          pushing it past its timeout budget (skipped inline);
        * ``"truncate-checkpoint"`` — after the parent writes the point's
          checkpoint, truncate the file to half its bytes (fires once);
        * ``"interrupt"`` — request the executor's clean-interrupt path
          after the point completes (parent side);
        * ``"torn-write"`` — after the streaming sink appends the point's
          record, tear the segment file ``offset`` bytes into that record
          (half the record when ``offset`` is ``None``) and stop the sweep
          as a crash would, so a resume must recover the torn tail (fires
          once, parent side);
        * ``"enospc"`` — the sink's append for the point fails with
          ``OSError(ENOSPC)``, driving the graceful-degradation path
          (``SinkFullError``; fires once, parent side);
        * ``"fsync-error"`` — the fsync following the point's append fails
          once with ``OSError(EIO)``; the sink must retry at the next
          cadence point and the sweep must complete bit-identically
          (parent side);
        * ``"kill-after-records"`` — ``SIGKILL`` the **parent** process the
          moment the sink has appended its ``records``-th record of this
          run.  Lethal by design: only use from a subprocess harness (the
          chaos CI job and ``tests/test_sink.py`` do).
    index:
        Grid index the rule targets.  ``None`` is only valid for
        ``kill-worker`` rules using ``worker_point``.
    dispatches:
        1-based dispatch numbers on which the rule fires; the empty tuple
        means *every* dispatch (the poison-point form).  A point's dispatch
        count increments each time the executor sends it to a worker —
        whether as a retry or as a resubmission after a pool death — so
        ``dispatches=(1,)`` models a fault that strikes once and is gone.
    worker_point:
        ``kill-worker`` alternative trigger: die when the executing worker
        process reaches its ``worker_point``-th point, whatever that point
        is.  Because every replacement worker also counts from one, such a
        rule keeps killing pools until the executor degrades to its serial
        fallback — the designed test for graceful degradation.
    duration:
        ``stall`` sleep length in seconds.
    offset:
        ``torn-write`` tear position in bytes from the start of the
        appended record; ``None`` tears at half the record.  The tear is
        clamped inside the record so the segment always ends mid-record.
    records:
        ``kill-after-records`` trigger: SIGKILL the parent once the sink
        has appended this many records (1-based count of this process's
        appends).
    """

    kind: str
    index: Optional[int] = None
    dispatches: Tuple[int, ...] = (1,)
    worker_point: Optional[int] = None
    duration: float = 0.0
    offset: Optional[int] = None
    records: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        object.__setattr__(
            self, "dispatches", tuple(int(d) for d in self.dispatches)
        )
        if any(d < 1 for d in self.dispatches):
            raise ConfigurationError("fault rule dispatches are 1-based")
        if self.worker_point is not None:
            if self.kind != "kill-worker":
                raise ConfigurationError(
                    "worker_point only applies to kill-worker rules"
                )
            if self.worker_point < 1:
                raise ConfigurationError("worker_point is 1-based")
        elif self.kind == "kill-after-records":
            if self.records is None or int(self.records) < 1:
                raise ConfigurationError(
                    "kill-after-records rules need a positive 'records' count"
                )
        elif self.index is None:
            raise ConfigurationError(
                f"{self.kind} rule needs a target grid 'index'"
            )
        if self.records is not None and self.kind != "kill-after-records":
            raise ConfigurationError(
                "'records' only applies to kill-after-records rules"
            )
        if self.offset is not None:
            if self.kind != "torn-write":
                raise ConfigurationError(
                    "'offset' only applies to torn-write rules"
                )
            if int(self.offset) < 1:
                raise ConfigurationError(
                    "torn-write 'offset' is in bytes and must be >= 1 "
                    "(the tear lands inside the record)"
                )
        if self.kind == "stall" and self.duration <= 0:
            raise ConfigurationError("stall rules need a positive 'duration'")

    def matches(self, index: int, dispatch: int) -> bool:
        """Does this rule fire for grid point ``index`` on ``dispatch``?"""
        if self.index != index:
            return False
        return not self.dispatches or dispatch in self.dispatches

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "index": self.index,
            "dispatches": list(self.dispatches),
            "worker_point": self.worker_point,
            "duration": self.duration,
            "offset": self.offset,
            "records": self.records,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultRule":
        unknown = sorted(
            set(data)
            - {
                "kind",
                "index",
                "dispatches",
                "worker_point",
                "duration",
                "offset",
                "records",
            }
        )
        if unknown:
            raise ConfigurationError(
                f"fault rule has unknown field(s) {', '.join(map(repr, unknown))}"
            )
        if "kind" not in data:
            raise ConfigurationError("fault rule is missing the 'kind' field")
        return cls(
            kind=data["kind"],
            index=data.get("index"),
            dispatches=tuple(data.get("dispatches", (1,))),
            worker_point=data.get("worker_point"),
            duration=data.get("duration", 0.0),
            offset=data.get("offset"),
            records=data.get("records"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A serialisable set of deterministic fault rules.

    Attributes
    ----------
    rules:
        The fault sites (see :class:`FaultRule`).
    seed:
        Provenance only: the seed :meth:`sample` derived the plan from, or
        ``None`` for hand-built plans.
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rules",
            tuple(
                rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
                for rule in self.rules
            ),
        )

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def kinds(self) -> Tuple[str, ...]:
        """The distinct rule kinds in this plan, sorted."""
        return tuple(sorted({rule.kind for rule in self.rules}))

    def to_dict(self) -> Dict[str, object]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        unknown = sorted(set(data) - {"rules", "seed"})
        if unknown:
            raise ConfigurationError(
                f"fault plan has unknown field(s) {', '.join(map(repr, unknown))}"
            )
        rules = data.get("rules", ())
        if not isinstance(rules, (list, tuple)):
            raise ConfigurationError("fault plan 'rules' must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            seed=data.get("seed"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"fault plan JSON is malformed: {error}"
            ) from error
        return cls.from_dict(data)

    @classmethod
    def sample(
        cls,
        point_count: int,
        seed: int,
        kinds: Sequence[str] = ("transient-error",),
        faults: int = 1,
        stall_duration: float = 5.0,
    ) -> "FaultPlan":
        """A reproducible random plan: ``faults`` rules over the grid.

        All randomness derives from ``derive_seed(seed, "fault-plan")``, so
        the same ``(point_count, seed, kinds, faults)`` always yields the
        same plan — chaos runs are replayable from one number, exactly like
        the sweeps they disturb.  Sampled rules strike on the first
        dispatch only, so every fault is transient by construction.
        """
        if point_count < 1:
            raise ConfigurationError("sample needs at least one grid point")
        for kind in kinds:
            if kind not in ("transient-error", "kill-worker", "stall"):
                raise ConfigurationError(
                    f"cannot sample fault kind {kind!r}; pick from "
                    "transient-error, kill-worker, stall"
                )
        rng = RandomSource(seed=derive_seed(seed, "fault-plan"), name="fault-plan")
        rules = []
        for _ in range(faults):
            kind = kinds[rng.randint(0, len(kinds))]
            rules.append(
                FaultRule(
                    kind=kind,
                    index=rng.randint(0, point_count),
                    dispatches=(1,),
                    duration=stall_duration if kind == "stall" else 0.0,
                )
            )
        return cls(rules=tuple(rules), seed=seed)


def load_plan(path: PathLike) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as error:
        raise ConfigurationError(
            f"cannot read fault plan file {source}: {error}"
        ) from error
    return FaultPlan.from_json(text)


def save_plan(plan: FaultPlan, path: PathLike) -> Path:
    """Write ``plan`` to ``path`` as JSON; returns the resolved path."""
    destination = Path(path)
    destination.write_text(plan.to_json() + "\n")
    return destination


class FaultInjector:
    """Executes a :class:`FaultPlan` at the harness's injection points.

    Parameters
    ----------
    plan:
        The plan (or its dict form, as shipped to workers via the pool
        initializer).
    mode:
        ``"worker"`` in pool worker processes (all rule kinds live);
        ``"inline"`` in the executor's in-process paths, where
        ``kill-worker`` and ``stall`` rules are skipped — they model
        worker-process faults and would otherwise kill or hang the parent.
    """

    def __init__(
        self, plan: Union[FaultPlan, Mapping], mode: str = "worker"
    ) -> None:
        if mode not in ("worker", "inline"):
            raise ConfigurationError(f"unknown injector mode {mode!r}")
        self.plan = plan if isinstance(plan, FaultPlan) else FaultPlan.from_dict(plan)
        self.mode = mode
        self._points_started = 0
        self._fired_truncations: set = set()
        self._fired_sink_rules: set = set()

    # -- worker side -----------------------------------------------------------

    def before_point(self, index: int, dispatch: int) -> None:
        """Apply worker-side rules just before a point executes.

        May raise :class:`InjectedTransientError`, sleep, or terminate the
        process; called once per dispatched point, so the per-process point
        counter that ``worker_point`` kills key off advances here.
        """
        self._points_started += 1
        for rule in self.plan.rules:
            if rule.kind == "kill-worker":
                killed = (
                    self._points_started == rule.worker_point
                    if rule.worker_point is not None
                    else rule.matches(index, dispatch)
                )
                if killed and self.mode == "worker":
                    # Abrupt death, as an OOM kill would be: no cleanup, no
                    # exception crossing the pool boundary.
                    os._exit(1)
            elif rule.kind == "stall" and rule.matches(index, dispatch):
                if self.mode == "worker":
                    time.sleep(rule.duration)
            elif rule.kind == "transient-error" and rule.matches(index, dispatch):
                raise InjectedTransientError(
                    f"injected transient fault at point {index} "
                    f"(dispatch {dispatch})"
                )

    # -- parent side -----------------------------------------------------------

    def corrupt_checkpoint(self, index: int, path: PathLike) -> bool:
        """Truncate the just-written checkpoint for ``index`` (once per rule).

        Returns ``True`` when a truncation fired, so callers can log it.
        """
        for position, rule in enumerate(self.plan.rules):
            if (
                rule.kind == "truncate-checkpoint"
                and rule.index == index
                and position not in self._fired_truncations
            ):
                self._fired_truncations.add(position)
                target = Path(path)
                data = target.read_bytes()
                target.write_bytes(data[: len(data) // 2])
                return True
        return False

    def wants_interrupt(self, index: int) -> bool:
        """Should the executor's clean-interrupt path fire after ``index``?"""
        return any(
            rule.kind == "interrupt" and rule.index == index
            for rule in self.plan.rules
        )

    # -- streaming-sink side (parent process) -----------------------------------

    def sink_append_fault(self, index: int) -> None:
        """Raise ``OSError(ENOSPC)`` for a matching ``enospc`` rule (once).

        Installed as the sink's ``append_hook``; the sink handles the error
        exactly like a real full disk — roll back to the record boundary,
        fsync what fits, raise :class:`~repro.dist.sink.SinkFullError`.
        """
        for position, rule in enumerate(self.plan.rules):
            if (
                rule.kind == "enospc"
                and rule.index == index
                and ("enospc", position) not in self._fired_sink_rules
            ):
                self._fired_sink_rules.add(("enospc", position))
                raise OSError(
                    _ENOSPC, f"injected ENOSPC at stream record {index}"
                )

    def sink_fsync_fault(self, index: int) -> None:
        """Fail one fsync with ``OSError(EIO)`` for a matching rule.

        Installed as the sink's ``fsync_hook``; ``index`` is the most
        recently appended record's grid index.  Fires once per rule, so the
        sink's retry at the next cadence point succeeds — the designed test
        for transient fsync failure.
        """
        for position, rule in enumerate(self.plan.rules):
            if (
                rule.kind == "fsync-error"
                and rule.index == index
                and ("fsync", position) not in self._fired_sink_rules
            ):
                self._fired_sink_rules.add(("fsync", position))
                raise OSError(
                    _EIO, f"injected fsync failure after stream record {index}"
                )

    def tear_stream(
        self, index: int, path: PathLike, start: int, end: int
    ) -> bool:
        """Tear the just-appended stream record mid-byte (once per rule).

        ``start``/``end`` delimit the record inside its segment file; the
        tear lands ``rule.offset`` bytes past ``start`` (clamped inside the
        record; half the record when unset).  Returns ``True`` when a tear
        fired — the executor then freezes the sink and stops the sweep the
        way a crash at that exact byte offset would, so the resume path is
        exercised against a genuinely torn tail.
        """
        for position, rule in enumerate(self.plan.rules):
            if (
                rule.kind == "torn-write"
                and rule.index == index
                and ("tear", position) not in self._fired_sink_rules
            ):
                self._fired_sink_rules.add(("tear", position))
                length = max(1, end - start)
                offset = length // 2 if rule.offset is None else int(rule.offset)
                offset = min(max(1, offset), length - 1)
                with Path(path).open("rb+") as handle:
                    handle.truncate(start + offset)
                return True
        return False

    def kill_after_records(self, appended: int) -> bool:
        """Does a ``kill-after-records`` rule fire at this append count?

        The caller (the executor) performs the actual ``SIGKILL`` — keeping
        the lethal syscall in one greppable place — and only ever from a
        process the test harness owns.
        """
        return any(
            rule.kind == "kill-after-records" and rule.records == appended
            for rule in self.plan.rules
        )


def bundled_plans(
    point_count: int, stall_duration: float = 30.0
) -> Dict[str, FaultPlan]:
    """The canonical chaos plans used by tests and CI's ``--chaos`` parity run.

    One plan per failure mode, each targeting deterministic points of a
    ``point_count``-sized grid; all but ``"poison-point"`` are survivable,
    and ``"poison-point"`` is the *only* plan designed to quarantine.
    ``stall_duration`` must exceed the group timeout deadline in force, or
    the stalled point finishes before detection and nothing is exercised.
    """
    if point_count < 1:
        raise ConfigurationError("bundled_plans needs at least one grid point")
    last = point_count - 1
    mid = point_count // 2
    return {
        "worker-kill": FaultPlan(
            rules=(FaultRule(kind="kill-worker", index=mid, dispatches=(1,)),)
        ),
        "transient-double": FaultPlan(
            rules=(
                FaultRule(kind="transient-error", index=0, dispatches=(1, 2)),
            )
        ),
        "timeout-stall": FaultPlan(
            rules=(
                FaultRule(
                    kind="stall",
                    index=last,
                    dispatches=(1,),
                    duration=stall_duration,
                ),
            )
        ),
        "checkpoint-truncate": FaultPlan(
            rules=(FaultRule(kind="truncate-checkpoint", index=mid),)
        ),
        "poison-point": FaultPlan(
            rules=(FaultRule(kind="transient-error", index=last, dispatches=()),)
        ),
    }


def bundled_stream_plans(
    point_count: int, include_kill: bool = False
) -> Dict[str, FaultPlan]:
    """The canonical **disk-fault** chaos plans for the streaming sink.

    One plan per sink failure mode, each deterministic for a
    ``point_count``-sized grid:

    * ``"torn-write"`` — the mid-grid point's record is torn a few bytes in
      and the sweep stops as a crash would; the resume must quarantine the
      tail and re-run exactly that point, bit-identically.
    * ``"enospc"`` — the disk "fills" at the mid-grid point; the run raises
      a resumable :class:`~repro.dist.sink.SinkFullError` with everything
      before it durable.
    * ``"fsync-error"`` — one fsync fails transiently; the sweep completes
      in one go, bit-identically.
    * ``"kill-9"`` (only when ``include_kill=True``) — SIGKILL the parent
      after the second appended record.  **Lethal**: run it only inside a
      subprocess harness.
    """
    if point_count < 1:
        raise ConfigurationError(
            "bundled_stream_plans needs at least one grid point"
        )
    mid = point_count // 2
    plans = {
        "torn-write": FaultPlan(
            rules=(FaultRule(kind="torn-write", index=mid, offset=7),)
        ),
        "enospc": FaultPlan(rules=(FaultRule(kind="enospc", index=mid),)),
        "fsync-error": FaultPlan(
            rules=(FaultRule(kind="fsync-error", index=mid),)
        ),
    }
    if include_kill:
        plans["kill-9"] = FaultPlan(
            rules=(
                FaultRule(
                    kind="kill-after-records",
                    records=min(2, point_count),
                ),
            )
        )
    return plans
