"""Distributed execution of scenario sweeps.

``repro.dist`` scales :func:`repro.spec.run_spec` horizontally: it splits a
scenario's row-major sweep grid into deterministic shards
(:mod:`~repro.dist.partition`), fans the points out over worker processes
(:class:`~repro.dist.executor.ParallelScenarioExecutor`), checkpoints each
completed point so interrupted sweeps resume where they stopped
(:mod:`~repro.dist.checkpoint`), and merges worker outputs back into one
:class:`~repro.spec.ScenarioRun` that is **bit-identical** to the serial
run — the label-keyed seed derivation makes every point's randomness
independent of where (and in which order) it executes.

The executor is fault-tolerant (:mod:`~repro.dist.resilience`): failing
points are isolated, retried with deterministic backoff, and quarantined
after exhausting their budget; dead workers are detected and their in-flight
points resubmitted; per-point wall-clock budgets catch stalls; a pool that
keeps dying degrades gracefully to in-process serial execution; and
SIGINT/SIGTERM shut the sweep down cleanly into a resumable checkpoint
directory (:class:`SweepInterrupted`).  Deterministic fault injection for
all of it lives in :mod:`repro.faultinject`.

For grids too large to hold in memory, the **streaming result sink**
(:mod:`~repro.dist.sink`) appends every completed point to checksummed,
fsync'd segment files behind a write-ahead manifest: a sweep killed with
``kill -9`` at any byte offset resumes from exactly what reached the disk
(torn tails are quarantined, never guessed at), and the merged table is
produced by a k-way streaming merge in O(segments) memory
(:func:`merge_streams`, :func:`streamed_table`).  ``ENOSPC`` degrades
gracefully into a resumable :class:`SinkFullError`.

The usual entry point is ``run_spec(spec, workers=N, ...)``; this package is
the machinery behind it, exposed for callers that need shard-level control
(e.g. running one shard per host and merging with :func:`merge_runs`).
"""

from .checkpoint import CHECKPOINT_SCHEMA, CheckpointStore, spec_fingerprint
from .executor import ParallelScenarioExecutor, merge_runs
from .resilience import (
    PointFailure,
    RetryPolicy,
    SweepInterrupted,
    WorkerPoolError,
    backoff_delay,
)
from .partition import (
    ExpandedPoint,
    expand_points,
    parse_shard,
    select_indices,
    shard_indices,
)
from .progress import (
    PointProgress,
    ProgressCallback,
    log_point_progress,
    print_point_progress,
)
from .sink import (
    SINK_SCHEMA,
    SinkError,
    SinkFullError,
    SinkWriteError,
    StreamingResultSink,
    merge_streams,
    point_run_from_payload,
    stream_payloads,
    streamed_table,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "spec_fingerprint",
    "ParallelScenarioExecutor",
    "merge_runs",
    "RetryPolicy",
    "PointFailure",
    "SweepInterrupted",
    "WorkerPoolError",
    "backoff_delay",
    "ExpandedPoint",
    "expand_points",
    "parse_shard",
    "select_indices",
    "shard_indices",
    "PointProgress",
    "ProgressCallback",
    "log_point_progress",
    "print_point_progress",
    "SINK_SCHEMA",
    "SinkError",
    "SinkFullError",
    "SinkWriteError",
    "StreamingResultSink",
    "merge_streams",
    "point_run_from_payload",
    "stream_payloads",
    "streamed_table",
]
