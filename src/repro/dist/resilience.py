"""Recovery semantics for distributed sweeps.

The paper's protocols keep broadcasting when nodes and channels fail; this
module applies the same discipline to the sweep harness itself.  A grid
point that raises no longer kills the whole sweep: the executor records a
structured failure, retries the point with bounded deterministic backoff,
and — when the retry budget is exhausted — **quarantines** it so every other
point still completes.  Quarantined points are reported in
``ScenarioRun.provenance["failures"]`` (and therefore in
``Table.metadata["distributed"]``), never silently dropped.

Three pieces live here:

* :class:`RetryPolicy` — the knobs: per-point retry budget, deterministic
  backoff schedule, per-point wall-clock timeout, how many pool deaths to
  tolerate before degrading to in-process serial execution.
* :class:`PointFailure` — the JSON-safe record of one quarantined point
  (every failed attempt's error is kept, so post-mortems need no logs).
* :class:`SweepInterrupted` — raised on SIGINT/SIGTERM after the executor
  has terminated the pool and flushed every completed checkpoint; the
  message states how to resume.

None of this changes any result bit: recovery only re-executes points, and
the seed = f(master, label) discipline makes a re-executed point
bit-identical to an undisturbed one (asserted by the chaos suite in
``tests/test_faultinject.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError, ReproError

__all__ = [
    "RetryPolicy",
    "PointFailure",
    "SweepInterrupted",
    "WorkerPoolError",
    "backoff_delay",
    "record_failure_event",
]


class WorkerPoolError(ReproError):
    """The worker pool died more times than the restart budget allows.

    Only raised when :attr:`RetryPolicy.serial_fallback` is disabled; the
    default policy degrades to in-process execution instead.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor reacts when grid points or workers fail.

    Attributes
    ----------
    max_attempts:
        Total execution attempts per point (first try included).  A point
        that fails ``max_attempts`` times is quarantined: the sweep
        completes without it and the point appears in
        ``provenance["failures"]``.
    backoff_seconds / backoff_multiplier / backoff_max_seconds:
        Deterministic retry backoff: attempt ``k`` (1-based failure count)
        waits ``backoff_seconds * backoff_multiplier**(k-1)``, capped at
        ``backoff_max_seconds``.  No jitter — the schedule is part of the
        reproducibility story.
    timeout_seconds:
        Per-point wall-clock budget.  A worker batch that exceeds the sum of
        its points' budgets is declared stalled: the pool is restarted, the
        overdue points are charged one failed attempt, and every other
        in-flight point is resubmitted without penalty.  ``None`` disables
        timeouts.  The in-process (``workers=1``) path cannot preempt a
        running point and therefore ignores this knob.
    max_pool_restarts:
        Pool deaths (crashed workers, stalls) tolerated before the executor
        gives up on multiprocessing.
    serial_fallback:
        What to do after ``max_pool_restarts`` is exceeded: ``True``
        (default) degrades gracefully to in-process serial execution for the
        remaining points; ``False`` re-raises the pool failure.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 2.0
    timeout_seconds: Optional[float] = None
    max_pool_restarts: int = 3
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be a positive int, got {self.max_attempts!r}"
            )
        if self.backoff_seconds < 0 or self.backoff_max_seconds < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout_seconds must be positive or None, got {self.timeout_seconds}"
            )
        if not isinstance(self.max_pool_restarts, int) or self.max_pool_restarts < 0:
            raise ConfigurationError(
                "max_pool_restarts must be a non-negative int, "
                f"got {self.max_pool_restarts!r}"
            )


def backoff_delay(policy: RetryPolicy, failure_count: int) -> float:
    """The deterministic wait before retry number ``failure_count`` (1-based)."""
    delay = policy.backoff_seconds * (
        policy.backoff_multiplier ** max(0, failure_count - 1)
    )
    return min(delay, policy.backoff_max_seconds)


@dataclass(frozen=True)
class PointFailure:
    """One quarantined grid point, with its full attempt history.

    Attributes
    ----------
    index / label:
        Which grid point (row-major index and baked run label).
    attempts:
        Failed execution attempts before quarantine.
    error_type / message:
        Exception class name and message of the *final* attempt.
    errors:
        One ``{"attempt", "error_type", "message"}`` dict per failed
        attempt, in order.  JSON-safe, so the record survives the trip into
        ``Table.metadata["distributed"]["failures"]`` and saved tables.
    """

    index: int
    label: str
    attempts: int
    error_type: str
    message: str
    errors: Tuple[Dict[str, object], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": int(self.index),
            "label": str(self.label),
            "attempts": int(self.attempts),
            "error_type": str(self.error_type),
            "message": str(self.message),
            "errors": [dict(event) for event in self.errors],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PointFailure":
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            attempts=int(data["attempts"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            errors=tuple(dict(event) for event in data.get("errors", ())),
        )


class SweepInterrupted(ReproError):
    """A sweep was stopped by SIGINT/SIGTERM after a clean shutdown.

    Raised by :class:`~repro.dist.executor.ParallelScenarioExecutor` once the
    worker pool has been terminated and every already-completed point has
    been flushed to its checkpoint file — the checkpoint directory is left
    in a resumable state (no stray ``.json.tmp`` files, no lost finished
    points).

    Attributes
    ----------
    completed / total:
        Points finished (checkpointed when a directory was given) versus
        points selected for this run.
    checkpoint_dir:
        Where the completed points were flushed, or ``None``.
    stream_dir:
        The streaming-sink directory holding the durable records, or
        ``None``.  Either directory makes the interrupt resumable.
    """

    def __init__(
        self,
        completed: int,
        total: int,
        checkpoint_dir: Optional[str] = None,
        stream_dir: Optional[str] = None,
    ) -> None:
        self.completed = completed
        self.total = total
        self.checkpoint_dir = checkpoint_dir
        self.stream_dir = stream_dir
        if checkpoint_dir:
            resume_hint = (
                "; resume with the same checkpoint directory "
                f"({checkpoint_dir}) and resume=True (CLI: --resume)"
            )
        elif stream_dir:
            resume_hint = (
                f"; resume with the same stream directory ({stream_dir}) "
                "and resume=True (CLI: --resume)"
            )
        else:
            resume_hint = (
                "; re-run with a checkpoint or stream directory to make "
                "interrupts resumable"
            )
        super().__init__(
            f"sweep interrupted: {completed} of {total} selected point(s) "
            f"completed{resume_hint}"
        )


def record_failure_event(
    errors: Dict[int, List[Dict[str, object]]],
    index: int,
    attempt: int,
    error_type: str,
    message: str,
) -> None:
    """Append one failed attempt to the per-point error log (JSON-safe)."""
    errors.setdefault(index, []).append(
        {
            "attempt": int(attempt),
            "error_type": str(error_type),
            "message": str(message),
        }
    )
