"""Crash-safe streaming result sink for scenario sweeps.

``repro.dist`` holds merged sweep results in memory and (optionally) writes
one checkpoint file per point.  For 10⁴–10⁶-point grids that is the wrong
shape twice over: memory grows with the grid, and a crash between
checkpoint writes can still lose completed work.  This module provides the
third result path: every completed grid point is **appended** to an
on-disk segment file as one self-validating record, durable up to a
configurable fsync cadence, and the merged table is produced by a
**streaming** k-way merge whose memory is O(segments), not O(points).

Record format (one per line, "length-prefixed-and-checksummed JSONL")::

    llllllll cccccccc {"schema_version":1,"index":4,...}\n
    ^8-hex   ^8-hex   ^payload: compact JSON, CRC32 = cccccccc,
    payload          exactly llllllll bytes, newline-terminated
    length

The fixed-width header makes every record self-delimiting, and the CRC
makes torn tails *detectable at the exact byte*: on open, a sink scans each
segment, keeps every record that validates, and truncates the file at the
first byte of the first invalid record — the torn bytes are quarantined to
``<segment>.torn`` for post-mortems, never silently dropped.  A sweep
killed with ``SIGKILL`` at any byte offset therefore resumes from exactly
the set of records that reached the disk.

Segments and the write-ahead manifest
-------------------------------------

Records are appended to **segment files** (``segment-0000.jsonl``, ...).
Within one segment, grid indices are strictly ascending: when a record
arrives out of order (parallel sweeps complete points out of order), the
sink seals the active segment and rolls a new one, so every segment is a
sorted run and :func:`merge_streams` is a true heap merge holding one
record per segment.  Each new segment is registered in the sink's
**manifest** (``manifest.json``) *before* its first byte is written; the
manifest commit is an atomic rename followed by a directory fsync
(:func:`~repro.dist.durability.atomic_write_text`), and it carries the
scenario's :func:`~repro.dist.checkpoint.spec_fingerprint` so a stream
directory can only ever be resumed by the exact scenario that produced it.
Sharded sweeps write disjoint manifests (``manifest-<tag>.json``) so
multiple hosts can share one collection directory.

Durability and degradation
--------------------------

``fsync_every=N`` fsyncs the active segment after every N appended records
(default 1: every completed point is durable before the sweep moves on).
A *transient* fsync failure is retried at the next cadence point and
surfaces as :class:`SinkWriteError` only if it still fails at close;
``ENOSPC`` — from a write or an fsync — is not transient: the sink rolls
the segment back to its last record boundary, fsyncs what fits, and raises
:class:`SinkFullError` naming the directory, leaving everything written so
far durable and resumable.
"""

from __future__ import annotations

import errno
import heapq
import json
import logging
import os
import re
import zlib
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import ConfigurationError, ReproError
from ..core.metrics import RunResult
from ..spec.run import PointRun
from ..spec.scenario import ScenarioSpec
from .checkpoint import spec_fingerprint
from .durability import atomic_write_text, fsync_dir, fsync_fileobj

__all__ = [
    "SINK_SCHEMA",
    "SinkError",
    "SinkFullError",
    "SinkWriteError",
    "encode_record",
    "iter_records",
    "scan_segment",
    "StreamingResultSink",
    "merge_streams",
    "stream_payloads",
    "point_run_from_payload",
    "streamed_table",
]

logger = logging.getLogger("repro.dist")

#: Version stamped into every record and manifest; bumped on breaking changes.
SINK_SCHEMA = 1

#: ``{length:08x} {crc32:08x} `` — 8 hex digits, space, 8 hex digits, space.
_HEADER_BYTES = 18
_HEADER_RE = re.compile(rb"^[0-9a-f]{8} [0-9a-f]{8} $")

PathLike = Union[str, Path]


class SinkError(ReproError):
    """A streaming result sink is inconsistent or was misused."""


class SinkWriteError(SinkError):
    """A sink write or fsync failed and could not be retried successfully."""


class SinkFullError(SinkError):
    """The sink's filesystem is out of space (``ENOSPC``).

    Everything appended before the failure has been flushed and fsynced, so
    the stream directory is left durable and **resumable**: free space (or
    point the resume at a larger volume and copy the directory), then re-run
    with ``resume=True`` — completed points are not re-executed.
    """

    def __init__(self, directory: PathLike, index: Optional[int] = None) -> None:
        self.directory = str(directory)
        self.index = index
        at_point = f" while streaming point {index}" if index is not None else ""
        super().__init__(
            f"stream directory {self.directory} is out of disk space"
            f"{at_point}; everything already appended is durable — free "
            "space and resume with the same directory (resume=True, "
            "CLI: --resume)"
        )


# -- record framing --------------------------------------------------------------


def encode_record(payload: Dict[str, object]) -> bytes:
    """Frame one point payload as a length-prefixed, CRC32-checksummed line."""
    record = {"schema_version": SINK_SCHEMA, **payload}
    body = json.dumps(record, separators=(",", ":")).encode("utf-8")
    header = b"%08x %08x " % (len(body), zlib.crc32(body) & 0xFFFFFFFF)
    return header + body + b"\n"


def _read_record(handle) -> Optional[Dict[str, object]]:
    """Read and validate one record; ``None`` = invalid/torn from here on.

    Raises ``StopIteration``-style by returning ``None`` for *any* framing
    defect — short header, malformed header, short payload, missing
    newline, CRC mismatch, or unparsable JSON — because an append-only file
    written through :func:`encode_record` can only be damaged at its tail.
    """
    header = handle.read(_HEADER_BYTES)
    if len(header) == 0:
        raise EOFError  # clean end of segment
    if len(header) < _HEADER_BYTES or not _HEADER_RE.match(header):
        return None
    length = int(header[:8], 16)
    crc = int(header[9:17], 16)
    body = handle.read(length + 1)
    if len(body) != length + 1 or body[-1:] != b"\n":
        return None
    body = body[:-1]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or "index" not in record:
        return None
    version = record.get("schema_version")
    if not isinstance(version, int) or version > SINK_SCHEMA:
        raise SinkError(
            f"stream record was written by sink schema {version!r}; this "
            f"build reads up to {SINK_SCHEMA}"
        )
    return record


def iter_records(path: PathLike) -> Iterator[Dict[str, object]]:
    """Yield the validated record payloads of one segment file, in order.

    Strict: an invalid (torn) record raises :class:`SinkError` — read-only
    consumers must not guess past damage.  Open the directory through
    :class:`StreamingResultSink` (``resume=True``) first to repair torn
    tails; after recovery every segment iterates cleanly.
    """
    source = Path(path)
    with source.open("rb") as handle:
        while True:
            try:
                record = _read_record(handle)
            except EOFError:
                return
            if record is None:
                raise SinkError(
                    f"segment {source} holds a torn or corrupt record; "
                    "open the stream directory with resume=True to "
                    "quarantine the damage before reading"
                )
            yield record


def scan_segment(path: PathLike) -> Tuple[List[int], int, bool]:
    """Validate a segment sequentially without retaining payloads.

    Returns ``(indices, valid_end, torn)``: the grid indices of the records
    that validate (in file order), the byte offset just past the last valid
    record, and whether damaged bytes follow that offset.  Memory is one
    record at a time — the scan never holds the segment.
    """
    source = Path(path)
    indices: List[int] = []
    valid_end = 0
    torn = False
    size = source.stat().st_size
    with source.open("rb") as handle:
        while True:
            try:
                record = _read_record(handle)
            except EOFError:
                break
            if record is None:
                torn = True
                break
            indices.append(int(record["index"]))
            valid_end = handle.tell()
    if not torn and valid_end != size:  # trailing garbage after a clean tail
        torn = valid_end < size
    return indices, valid_end, torn


# -- the sink --------------------------------------------------------------------


class StreamingResultSink:
    """Append completed grid points durably; recover from any crash state.

    Parameters
    ----------
    directory:
        The stream directory; created (with parents) on demand.
    spec:
        The full-grid scenario.  Its fingerprint is committed into the
        manifest and verified on resume, exactly like checkpoints.
    fsync_every:
        Fsync the active segment after every N appended records (default 1
        — every record durable before the sweep proceeds).  Larger values
        trade the durability window for throughput; a crash can lose at
        most the last ``fsync_every - 1`` appended records plus the one in
        flight.
    durable:
        ``False`` disables all fsync calls (segments *and* manifest) for
        tests and throwaway runs; torn-tail recovery still works.
    tag:
        Distinguishes manifests of sharded sweeps sharing one collection
        directory (``manifest-<tag>.json`` + ``segment-<tag>-*.jsonl``).
    resume:
        Recover the directory's existing records (repairing torn tails)
        and continue after them.  Without ``resume``, a directory that
        already holds records for this scenario is refused — silently
        appending would duplicate grid points.
    append_hook / fsync_hook:
        Fault-injection seams (:mod:`repro.faultinject`): called with the
        record's grid index just before the write / just before each fsync.
        An ``OSError`` they raise is handled exactly like a real one.
    """

    def __init__(
        self,
        directory: PathLike,
        spec: ScenarioSpec,
        *,
        fsync_every: int = 1,
        durable: bool = True,
        tag: str = "",
        resume: bool = False,
        append_hook: Optional[Callable[[int], None]] = None,
        fsync_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        if not isinstance(fsync_every, int) or fsync_every < 1:
            raise ConfigurationError(
                f"fsync_every must be a positive int, got {fsync_every!r}"
            )
        if tag and not re.fullmatch(r"[A-Za-z0-9_-]+", tag):
            raise ConfigurationError(
                f"sink tag must be alphanumeric/_/-, got {tag!r}"
            )
        self.directory = Path(directory)
        self.fingerprint = spec_fingerprint(spec)
        self.fsync_every = fsync_every
        self.durable = durable
        self.tag = tag
        self._append_hook = append_hook
        self._fsync_hook = fsync_hook
        self.directory.mkdir(parents=True, exist_ok=True)

        self._handle = None  # raw FileIO of the active segment
        self._active_path: Optional[Path] = None
        self._active_size = 0
        self._last_index: Optional[int] = None  # last index in active segment
        self._unsynced = 0
        self._last_appended: Optional[int] = None
        self._frozen = False
        self._closed = False
        self.records_appended = 0
        self.fsync_calls = 0
        self.fsync_failures = 0
        self.torn_quarantined: List[str] = []

        self._segments: List[str] = []
        self._next_seq = 0
        recovered: List[int] = []
        manifest = self._load_manifest()
        if manifest is not None or self._existing_segment_names():
            if not resume:
                raise ConfigurationError(
                    f"stream directory {self.directory} already holds "
                    "records for this scenario; pass resume=True to "
                    "continue it, or use a fresh directory"
                )
            recovered = self._recover(manifest)
        self.recovered_indices = frozenset(recovered)
        self.records_recovered = len(recovered)

    # -- naming ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        name = f"manifest-{self.tag}.json" if self.tag else "manifest.json"
        return self.directory / name

    def _segment_name(self, seq: int) -> str:
        middle = f"{self.tag}-" if self.tag else ""
        return f"segment-{middle}{seq:04d}.jsonl"

    def _segment_seq(self, name: str) -> Optional[int]:
        middle = re.escape(f"{self.tag}-") if self.tag else ""
        match = re.fullmatch(rf"segment-{middle}(\d{{4,}})\.jsonl", name)
        return int(match.group(1)) if match else None

    def _existing_segment_names(self) -> List[str]:
        names = [
            path.name
            for path in self.directory.glob("segment-*.jsonl")
            if self._segment_seq(path.name) is not None
        ]
        return sorted(names)

    # -- manifest ----------------------------------------------------------------

    def _load_manifest(self) -> Optional[Dict[str, object]]:
        path = self.manifest_path
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            # The manifest is only ever replaced atomically, so damage here
            # means external interference, not a crash — fail loudly.
            raise SinkError(
                f"stream manifest {path} is unreadable ({error}); the "
                "directory cannot be trusted"
            ) from error
        version = manifest.get("schema_version")
        if not isinstance(version, int) or version > SINK_SCHEMA:
            raise SinkError(
                f"stream manifest {path} was written by sink schema "
                f"{version!r}; this build reads up to {SINK_SCHEMA}"
            )
        if manifest.get("fingerprint") != self.fingerprint:
            raise ConfigurationError(
                f"stream directory {self.directory} belongs to a different "
                "scenario (spec fingerprint mismatch); point it at a fresh "
                "directory or delete the stale stream"
            )
        return manifest

    def _commit_manifest(self) -> None:
        manifest = {
            "schema_version": SINK_SCHEMA,
            "fingerprint": self.fingerprint,
            "tag": self.tag,
            "segments": list(self._segments),
            "fsync_every": self.fsync_every,
        }
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, indent=2) + "\n",
            durable=self.durable,
        )

    # -- recovery ----------------------------------------------------------------

    def _recover(self, manifest: Optional[Dict[str, object]]) -> List[int]:
        """Adopt the directory's segments, repairing torn tails.

        The manifest's segment list is authoritative; segment files it does
        not know about (possible only when a non-durable manifest commit was
        lost to a crash) are adopted in name order so their records are not
        orphaned.  Every segment is scanned record-by-record; the torn tail
        — if any — is moved to ``<segment>.torn`` and the segment truncated
        to its last valid record boundary.
        """
        listed = list(manifest.get("segments", [])) if manifest else []
        for name in listed:
            if self._segment_seq(name) is None:
                raise SinkError(
                    f"stream manifest {self.manifest_path} lists a foreign "
                    f"segment name {name!r}"
                )
        orphans = [n for n in self._existing_segment_names() if n not in listed]
        if orphans:
            logger.warning(
                "stream directory %s holds %d segment(s) missing from the "
                "manifest (lost non-durable commit?); adopting %s",
                self.directory,
                len(orphans),
                ", ".join(orphans),
            )
        self._segments = listed + orphans
        if orphans:
            self._commit_manifest()
        recovered: List[int] = []
        for name in self._segments:
            path = self.directory / name
            if not path.exists():
                # Write-ahead commit without a first byte: the crash landed
                # between the manifest rename and the segment creation.
                continue
            indices, valid_end, torn = scan_segment(path)
            if torn:
                self._quarantine_tail(path, valid_end)
            previous = None
            for index in indices:
                if previous is not None and index <= previous:
                    raise SinkError(
                        f"segment {path} is not an ascending run (index "
                        f"{index} after {previous}); segments written by "
                        "this sink are always sorted — the file was "
                        "modified externally"
                    )
                previous = index
            duplicates = set(indices) & set(recovered)
            if duplicates:
                raise SinkError(
                    f"grid point(s) {sorted(duplicates)[:10]} appear in more "
                    f"than one segment of {self.directory}; the directory "
                    "was written by overlapping sweeps and cannot be merged"
                )
            recovered.extend(indices)
        known = [
            seq
            for seq in (self._segment_seq(name) for name in self._segments)
            if seq is not None
        ]
        self._next_seq = max(known, default=-1) + 1
        return recovered

    def _quarantine_tail(self, path: Path, valid_end: int) -> None:
        size = path.stat().st_size
        quarantine = path.with_name(path.name + ".torn")
        with path.open("rb") as source:
            source.seek(valid_end)
            tail = source.read()
        # lint: disable=DUR001 -- quarantine copy of an already-torn tail;
        # the bytes are forensic evidence, not a durable artefact
        with quarantine.open("ab") as target:
            target.write(tail)
            if self.durable:
                fsync_fileobj(target)
        # lint: disable=DUR001 -- in-place truncation to the last record
        # boundary, fsynced below on the sink's own durability setting
        with path.open("rb+") as handle:
            handle.truncate(valid_end)
            if self.durable:
                fsync_fileobj(handle)
        if self.durable:
            fsync_dir(self.directory)
        self.torn_quarantined.append(quarantine.name)
        logger.warning(
            "segment %s held a torn tail (%d byte(s) past offset %d); "
            "quarantined to %s and truncated — every record before the "
            "tear is kept",
            path,
            size - valid_end,
            valid_end,
            quarantine,
        )

    # -- appending ---------------------------------------------------------------

    def _roll_segment(self) -> None:
        """Seal the active segment and open a fresh one (write-ahead)."""
        self._seal_active()
        name = self._segment_name(self._next_seq)
        self._next_seq += 1
        self._segments.append(name)
        # Write-ahead: the manifest knows the segment before its first byte
        # exists, so recovery can never encounter an unlisted durable record.
        self._commit_manifest()
        path = self.directory / name
        # lint: disable=DUR001 -- the designed raw append path: records are
        # CRC-framed, fsynced on the fsync_every cadence, and the segment is
        # registered write-ahead in the durable manifest before its first byte
        self._handle = path.open("ab", buffering=0)
        self._active_path = path
        self._active_size = 0
        self._last_index = None
        if self.durable:
            fsync_dir(self.directory)

    def _seal_active(self) -> None:
        if self._handle is None:
            return
        self._fsync_active(strict=True)
        self._handle.close()
        self._handle = None
        self._active_path = None

    def _fsync_active(self, strict: bool = False) -> None:
        """Fsync the active segment; transient failures retry at next cadence."""
        if self._handle is None or self._unsynced == 0:
            return
        try:
            if self._fsync_hook is not None:
                self._fsync_hook(
                    self._last_appended if self._last_appended is not None else -1
                )
            self.fsync_calls += 1
            os.fsync(self._handle.fileno())
        except OSError as error:
            self.fsync_failures += 1
            if error.errno == errno.ENOSPC:
                raise SinkFullError(self.directory, self._last_appended) from error
            if strict:
                raise SinkWriteError(
                    f"fsync of {self._active_path} keeps failing ({error}); "
                    f"the last {self._unsynced} record(s) may not be durable"
                ) from error
            logger.warning(
                "fsync of %s failed transiently (%s); will retry at the "
                "next cadence point",
                self._active_path,
                error,
            )
            return
        self._unsynced = 0

    def append(self, payload: Dict[str, object]) -> Tuple[Path, int, int]:
        """Durably append one completed point; returns (path, start, end).

        Rolls to a fresh segment when ``payload["index"]`` would break the
        active segment's ascending-run invariant.  On ``ENOSPC`` the
        partial write is rolled back to the last record boundary, what fits
        is fsynced, and :class:`SinkFullError` is raised; other ``OSError``
        s roll back likewise and surface as :class:`SinkWriteError`.
        """
        if self._closed:
            raise SinkError("cannot append to a closed sink")
        if self._frozen:
            # Crash simulation (fault injection): the process is "dead" from
            # the torn write onward, so later completions never reach disk —
            # exactly what resume must tolerate.
            return (self._active_path or self.directory, 0, 0)
        index = int(payload["index"])
        try:
            if self._append_hook is not None:
                self._append_hook(index)
            if self._handle is None or (
                self._last_index is not None and index <= self._last_index
            ):
                self._roll_segment()
            data = encode_record(payload)
            start = self._active_size
            written = 0
            while written < len(data):
                written += self._handle.write(data[written:])
        except OSError as error:
            self._rollback_active()
            if error.errno == errno.ENOSPC:
                self._fsync_active(strict=False)
                raise SinkFullError(self.directory, index) from error
            raise SinkWriteError(
                f"append of point {index} to {self._active_path} failed: "
                f"{error}"
            ) from error
        self._active_size += len(data)
        self._last_index = index
        self._last_appended = index
        self.records_appended += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every and self.durable:
            self._fsync_active(strict=False)
        return (self._active_path, start, start + len(data))

    def _rollback_active(self) -> None:
        """Truncate a failed append back to the last record boundary."""
        if self._handle is None:
            return
        try:
            os.ftruncate(self._handle.fileno(), self._active_size)
        except OSError:  # pragma: no cover - nothing more can be done
            logger.warning(
                "could not roll back a failed append on %s; the torn tail "
                "will be quarantined on the next resume",
                self._active_path,
            )

    def freeze(self) -> None:
        """Silently drop all further appends (crash-simulation machinery)."""
        self._frozen = True

    def close(self, strict: bool = True) -> None:
        """Flush and fsync everything; ``strict=False`` never raises."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._handle is not None:
                if self.durable:
                    self._fsync_active(strict=strict)
                self._handle.close()
                self._handle = None
        except SinkError:
            if strict:
                raise

    # -- reading -----------------------------------------------------------------

    def completed_indices(self) -> frozenset:
        """Grid indices durably recorded by this sink (recovered + appended)."""
        appended: set = set()
        for name in self._segments:
            path = self.directory / name
            if path.exists():
                indices, _, _ = scan_segment(path)
                appended.update(indices)
        return frozenset(appended) | self.recovered_indices

    def segment_paths(self) -> List[Path]:
        """This sink's segment files, in creation order."""
        return [
            self.directory / name
            for name in self._segments
            if (self.directory / name).exists()
        ]

    def iter_merged(self) -> Iterator[Dict[str, object]]:
        """All of this sink's records, merged by ascending grid index."""
        return merge_streams(self.segment_paths())

    def stats(self) -> Dict[str, object]:
        """JSON-safe provenance of what this sink did."""
        return {
            "directory": str(self.directory),
            "tag": self.tag or None,
            "segments": len(self._segments),
            "records_appended": self.records_appended,
            "records_recovered": self.records_recovered,
            "fsync_every": self.fsync_every,
            "durable": self.durable,
            "fsync_calls": self.fsync_calls,
            "fsync_failures": self.fsync_failures,
            "torn_quarantined": list(self.torn_quarantined),
        }


# -- streaming merge -------------------------------------------------------------


def merge_streams(
    segments: Sequence[PathLike],
) -> Iterator[Dict[str, object]]:
    """K-way merge segment files by grid index in O(segments) memory.

    Every segment written by :class:`StreamingResultSink` is an ascending
    run, so the merge is a plain heap merge holding **one record per
    segment** — memory is O(1) in the number of points, which is what lets
    a million-point grid merge on a laptop.  A segment that is not
    ascending, or a grid index that appears in more than one segment, is an
    error: duplicates would silently prefer one shard's record over
    another's.
    """
    streams = []
    for path in segments:
        streams.append(_ascending(iter_records(path), Path(path)))
    last: Optional[int] = None
    for record in heapq.merge(*streams, key=lambda r: int(r["index"])):
        index = int(record["index"])
        if last is not None and index == last:
            raise SinkError(
                f"grid point {index} appears in more than one stream "
                "segment; overlapping sweeps wrote this directory"
            )
        last = index
        yield record


def _ascending(
    records: Iterator[Dict[str, object]], path: Path
) -> Iterator[Dict[str, object]]:
    previous: Optional[int] = None
    for record in records:
        index = int(record["index"])
        if previous is not None and index <= previous:
            raise SinkError(
                f"segment {path} is not an ascending run (index {index} "
                f"after {previous}); was the file modified externally?"
            )
        previous = index
        yield record


def stream_payloads(
    directory: PathLike, spec: Optional[ScenarioSpec] = None
) -> Iterator[Dict[str, object]]:
    """Merge every manifest's segments in ``directory``, by grid index.

    This is the multi-shard entry point: hosts running ``shard="i/k"`` with
    distinct sink tags can share (or later combine into) one directory, and
    this merges all of their sorted segments in one streaming pass.  When
    ``spec`` is given, every manifest's fingerprint is verified against it.
    """
    base = Path(directory)
    manifests = sorted(base.glob("manifest*.json"))
    if not manifests:
        raise SinkError(f"{base} holds no stream manifest")
    expected = spec_fingerprint(spec) if spec is not None else None
    segments: List[Path] = []
    for path in manifests:
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SinkError(f"stream manifest {path} is unreadable: {error}")
        if expected is not None and manifest.get("fingerprint") != expected:
            raise ConfigurationError(
                f"stream manifest {path} belongs to a different scenario "
                "(spec fingerprint mismatch)"
            )
        for name in manifest.get("segments", []):
            segment = base / name
            if segment.exists():
                segments.append(segment)
    return merge_streams(segments)


def point_run_from_payload(payload: Dict[str, object]) -> PointRun:
    """Rebuild a :class:`PointRun` from the wire/checkpoint/stream payload.

    Fresh, checkpointed, and streamed points all pass through this single
    deserialisation path, so a resumed or streamed sweep is bit-identical
    to an uninterrupted in-memory one.
    """
    return PointRun(
        index=int(payload["index"]),
        values=dict(payload["values"]),
        label=payload["label"],
        spec=ScenarioSpec.from_dict(payload["spec"]),
        results=[RunResult.from_dict(result) for result in payload["results"]],
    )


def streamed_table(
    spec: ScenarioSpec,
    directory: PathLike,
    provenance: Optional[Dict[str, object]] = None,
):
    """Build the scenario summary table from a stream directory, streaming.

    Byte-identical to ``run_spec(spec, ...).to_table()`` for the same
    completed points, but holds **one point's results at a time**: records
    flow from the k-way merge straight into aggregate rows.  This is the
    memory-bounded consumption path for grids too large to materialise.
    """
    from ..spec.run import build_scenario_table

    points = (
        point_run_from_payload(payload)
        for payload in stream_payloads(directory, spec)
    )
    return build_scenario_table(spec, points, provenance)
