"""Parallel execution of scenario sweeps over worker processes.

:class:`ParallelScenarioExecutor` fans the grid points of one
:class:`~repro.spec.ScenarioSpec` out over a :mod:`multiprocessing` pool.
Nothing unpicklable crosses the process boundary: each task is the point's
index, axis values, baked label, and its **serialised single-point spec**;
the worker rebuilds the graph, protocol, and failure model from the spec
through the registries and returns the results as JSON-safe dicts
(:meth:`RunResult.to_dict`).  Because the seeding discipline keys every
random stream off the master seed and the point's label — never off
execution order or worker identity — a point produces bit-identical results
no matter which process runs it, which makes the merged
:class:`~repro.spec.ScenarioRun` **bit-identical to the serial**
``run_spec`` result (asserted down to per-round history in
``tests/test_dist.py``).

Tasks are dispatched **graph-first**: points that materialise the same graph
(equal ``ExperimentRunner.graph_cache_key``) are grouped so one worker's
per-process graph cache serves every sibling point it receives — instead of
every worker rebuilding identical graphs.  Groups larger than
``ceil(points / workers)`` are split so a single-graph sweep still uses the
whole pool (the graph is then built at most once per worker, never once per
point).  ``run.provenance["graph_builds"]`` records how many graphs the
pool actually constructed next to ``"graphs_distinct"`` (equal when priming
was perfect).

Checkpoints (optional) are written by the parent as points complete, so an
interrupted sweep resumes where it stopped; sharded runs
(:func:`~repro.dist.partition.select_indices`) execute a deterministic
subset of the grid, and :func:`merge_runs` reassembles shard outputs into
the one full-grid run.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.metrics import RunResult
from ..spec.run import PointRun, ScenarioRun
from ..spec.scenario import ScenarioSpec
from .checkpoint import CheckpointStore, PathLike
from .partition import ExpandedPoint, ShardLike, expand_points, parse_shard, select_indices
from .progress import PointProgress, ProgressCallback

__all__ = ["ParallelScenarioExecutor", "merge_runs"]


#: Wire format of one task: (index, values, label, single-point spec dict).
_Task = Tuple[int, Dict[str, object], str, Dict[str, object]]

#: Tasks are dispatched to the pool in *graph groups*: every task in a group
#: materialises the same graph (equal ``ExperimentRunner.graph_cache_key``),
#: so the worker that receives the group builds that graph exactly once and
#: serves all of its points from the cache.  Without the grouping, sibling
#: points of one graph land on arbitrary workers and each of them rebuilds
#: an identical graph.
_TaskGroup = List[_Task]

#: Per-worker-process runner, created once by the pool initializer so graph
#: caches persist across the tasks a worker executes.
_WORKER_RUNNER = None


def _build_runner(runner_kwargs: Dict[str, object]):
    from ..experiments.runner import ExperimentRunner

    return ExperimentRunner(**runner_kwargs)


def _init_worker(runner_kwargs: Dict[str, object]) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = _build_runner(runner_kwargs)


def _execute_task(runner, task: _Task) -> Dict[str, object]:
    """Run one grid point and return its checkpoint/wire payload."""
    index, values, label, spec_dict = task
    started = time.perf_counter()
    point = ExpandedPoint(
        index=index,
        values=values,
        label=label,
        spec=ScenarioSpec.from_dict(spec_dict),
    )
    point_run = runner.run_point(point)
    elapsed = time.perf_counter() - started
    return {
        "index": index,
        "values": values,
        "label": label,
        "spec": spec_dict,
        "elapsed_seconds": elapsed,
        "results": [result.to_dict() for result in point_run.results],
    }


def _run_group_in_worker(group: _TaskGroup) -> Dict[str, object]:
    """Run one graph group and report the payloads plus graph-build count."""
    builds_before = _WORKER_RUNNER.graph_builds
    payloads = [_execute_task(_WORKER_RUNNER, task) for task in group]
    return {
        "payloads": payloads,
        "graph_builds": _WORKER_RUNNER.graph_builds - builds_before,
    }


def _group_by_graph(
    pending: List[ExpandedPoint], workers: int
) -> List[_TaskGroup]:
    """Expand the pending points graph-first: task groups of same-graph points.

    Group order follows first appearance in the (row-major) grid and tasks
    keep their grid order within a group; grouping only affects which
    *worker* a point lands on (and hence checkpoint/progress completion
    order), never its seeds or results — points merge by grid index.  With
    one worker every point is its own group, preserving exact grid order.

    A group is capped at ``ceil(pending / workers)`` tasks so that a sweep
    whose points all share one graph (e.g. protocol or failure-rate axes
    over a fixed graph) still spreads across the whole pool: the graph is
    then built once per *worker that receives a chunk* — at most ``workers``
    times — instead of once per point, and never at the price of
    serialising the sweep onto a single process.
    """
    from ..experiments.runner import ExperimentRunner

    if workers <= 1:
        return [
            [(p.index, p.values, p.label, p.spec.to_dict())] for p in pending
        ]
    groups: Dict[tuple, List[_TaskGroup]] = {}
    order: List[tuple] = []
    cap = -(-len(pending) // workers)  # ceil division
    for point in pending:
        key = ExperimentRunner.graph_cache_key(point.spec.graph)
        if key not in groups:
            groups[key] = [[]]
            order.append(key)
        chunks = groups[key]
        if len(chunks[-1]) >= cap:
            chunks.append([])
        chunks[-1].append(
            (point.index, point.values, point.label, point.spec.to_dict())
        )
    return [chunk for key in order for chunk in groups[key]]


def _point_run_from_payload(payload: Dict[str, object]) -> PointRun:
    """Rebuild a :class:`PointRun` from the wire/checkpoint payload.

    Fresh and resumed points both pass through this single deserialisation
    path, so a resumed sweep is indistinguishable from an uninterrupted one.
    """
    return PointRun(
        index=int(payload["index"]),
        values=dict(payload["values"]),
        label=payload["label"],
        spec=ScenarioSpec.from_dict(payload["spec"]),
        results=[RunResult.from_dict(result) for result in payload["results"]],
    )


@dataclass
class ParallelScenarioExecutor:
    """Shard a scenario grid across worker processes and merge the results.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` executes in-process (no pool) but still
        routes every point through the serialised wire format, so the output
        is byte-for-byte what a multi-process run produces.
    checkpoint_dir:
        When set, one checkpoint file per completed point is written there
        (see :class:`CheckpointStore`); an interrupted sweep keeps them.
    resume:
        Skip points whose checkpoint file already exists (requires
        ``checkpoint_dir``).  The scenario fingerprint is verified, so a
        directory from a different spec fails loudly.
    progress:
        Optional per-point callback (see :mod:`repro.dist.progress`).
    mp_context:
        :func:`multiprocessing.get_context` method name (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.
    """

    workers: int = 1
    checkpoint_dir: Optional[PathLike] = None
    resume: bool = False
    progress: Optional[ProgressCallback] = None
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {self.workers!r}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint directory"
            )

    def run(
        self,
        spec: ScenarioSpec,
        shard: Optional[ShardLike] = None,
        points: Optional[Union[slice, Iterable[int]]] = None,
    ) -> ScenarioRun:
        """Execute (the selected slice of) ``spec`` and merge the results.

        Returns a :class:`ScenarioRun` whose points are in grid order
        regardless of completion order; ``run.provenance`` records the
        worker count, shard layout, resume statistics, and wall-clock.
        """
        started = time.perf_counter()
        all_points = expand_points(spec)
        total = len(all_points)
        indices = select_indices(total, shard=shard, points=points)
        selected = [all_points[i] for i in indices]

        store: Optional[CheckpointStore] = None
        completed: Dict[int, Dict[str, object]] = {}
        if self.checkpoint_dir is not None:
            store = CheckpointStore(self.checkpoint_dir, spec)
            if self.resume:
                completed = store.load()

        point_runs: Dict[int, PointRun] = {}
        resumed = 0
        for point in selected:
            payload = completed.get(point.index)
            if payload is None:
                continue
            point_runs[point.index] = _point_run_from_payload(payload)
            resumed += 1
            self._emit(point.index, total, point.label, 0.0, source="checkpoint")

        from ..experiments.runner import ExperimentRunner

        pending = [p for p in selected if p.index not in point_runs]
        graphs_distinct = len(
            {ExperimentRunner.graph_cache_key(p.spec.graph) for p in pending}
        )
        groups = _group_by_graph(pending, self.workers)
        runner_kwargs = {
            "master_seed": spec.master_seed,
            "repetitions": spec.repetitions,
            "engine": spec.engine,
            "batch": spec.batch,
        }
        graph_builds = 0
        for group_result in self._execute(groups, runner_kwargs):
            graph_builds += int(group_result["graph_builds"])
            for payload in group_result["payloads"]:
                if store is not None:
                    store.save(payload)
                point_runs[int(payload["index"])] = _point_run_from_payload(payload)
                self._emit(
                    int(payload["index"]),
                    total,
                    payload["label"],
                    float(payload["elapsed_seconds"]),
                )

        run = ScenarioRun(
            spec=spec,
            points=[point_runs[index] for index in sorted(point_runs)],
        )
        run.provenance = {
            "workers": self.workers,
            "shard": list(parse_shard(shard)) if shard is not None else None,
            "points_total": total,
            "points_selected": len(selected),
            "points_run": len(pending),
            "points_resumed": resumed,
            # Distinct graphs among the executed points vs. graphs actually
            # constructed across the pool: equal means the graph-first
            # grouping primed every worker cache perfectly (no sibling
            # rebuilt a graph another worker already built); builds may
            # exceed it when a large same-graph group was split across
            # workers to keep the pool busy.
            "graphs_distinct": graphs_distinct,
            "graph_builds": graph_builds,
            "wall_clock_seconds": round(time.perf_counter() - started, 6),
            "checkpoint_dir": (
                str(self.checkpoint_dir) if self.checkpoint_dir is not None else None
            ),
        }
        return run

    # -- internals --------------------------------------------------------------

    def _emit(
        self, index: int, total: int, label: str, elapsed: float, source: str = "run"
    ) -> None:
        if self.progress is not None:
            self.progress(
                PointProgress(
                    index=index,
                    total=total,
                    label=label,
                    elapsed_seconds=elapsed,
                    source=source,
                )
            )

    def _execute(
        self, groups: List[_TaskGroup], runner_kwargs: Dict[str, object]
    ) -> Iterable[Dict[str, object]]:
        if not groups:
            return
        if self.workers == 1:
            runner = _build_runner(runner_kwargs)
            for group in groups:
                builds_before = runner.graph_builds
                payloads = [_execute_task(runner, task) for task in group]
                yield {
                    "payloads": payloads,
                    "graph_builds": runner.graph_builds - builds_before,
                }
            return
        context = multiprocessing.get_context(self.mp_context)
        pool = context.Pool(
            processes=min(self.workers, len(groups)),
            initializer=_init_worker,
            initargs=(runner_kwargs,),
        )
        try:
            # chunksize=1 so a slow graph group does not pin fast ones behind
            # it; completion order is nondeterministic, merging is by index.
            yield from pool.imap_unordered(_run_group_in_worker, groups, chunksize=1)
        finally:
            pool.terminate()
            pool.join()


def merge_runs(runs: Sequence[ScenarioRun]) -> ScenarioRun:
    """Reassemble shard outputs into the one full-grid :class:`ScenarioRun`.

    All runs must come from the *same* scenario; together they must cover
    every grid point exactly once (the partition invariant).  The merged
    result is independent of the order the shards are given in — points are
    keyed by grid index — and bit-identical to a serial ``run_spec``.
    """
    if not runs:
        raise ConfigurationError("merge_runs needs at least one ScenarioRun")
    spec = runs[0].spec
    reference = spec.to_dict()
    for run in runs[1:]:
        if run.spec.to_dict() != reference:
            raise ConfigurationError(
                "cannot merge runs of different scenarios "
                f"({run.spec.name!r} vs {spec.name!r})"
            )
    merged: Dict[int, PointRun] = {}
    for run in runs:
        for point in run.points:
            if point.index in merged:
                raise ConfigurationError(
                    f"grid point {point.index} appears in more than one shard; "
                    "shards must be disjoint"
                )
            merged[point.index] = point
    expected = spec.sweep.size if spec.sweep is not None else 1
    missing = sorted(set(range(expected)) - set(merged))
    if missing:
        raise ConfigurationError(
            f"merged shards do not cover the full grid; missing point "
            f"index(es) {missing[:10]}{'...' if len(missing) > 10 else ''} "
            f"of {expected}"
        )
    result = ScenarioRun(
        spec=spec, points=[merged[index] for index in sorted(merged)]
    )
    shards = [run.provenance for run in runs if run.provenance]
    result.provenance = {
        "merged_from": len(runs),
        "workers": max(
            (int(p.get("workers", 1)) for p in shards), default=1
        ),
        "shards": [p.get("shard") for p in shards] or None,
        "points_total": expected,
        "wall_clock_seconds": round(
            sum(float(p.get("wall_clock_seconds", 0.0)) for p in shards), 6
        ),
    }
    return result
