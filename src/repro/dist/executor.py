"""Parallel execution of scenario sweeps over worker processes.

:class:`ParallelScenarioExecutor` fans the grid points of one
:class:`~repro.spec.ScenarioSpec` out over a process pool.  Nothing
unpicklable crosses the process boundary: each task is the point's index,
axis values, baked label, its **serialised single-point spec**, and its
dispatch count; the worker rebuilds the graph, protocol, and failure model
from the spec through the registries and returns the results as JSON-safe
dicts (:meth:`RunResult.to_dict`).  Because the seeding discipline keys
every random stream off the master seed and the point's label — never off
execution order, worker identity, or *how many times the point had to be
attempted* — a point produces bit-identical results no matter which process
runs it (or re-runs it), which makes the merged
:class:`~repro.spec.ScenarioRun` **bit-identical to the serial**
``run_spec`` result (asserted down to per-round history in
``tests/test_dist.py``, and under injected faults in
``tests/test_faultinject.py``).

Tasks are dispatched **graph-first**: points that materialise the same graph
(equal ``ExperimentRunner.graph_cache_key``) are grouped so one worker's
per-process graph cache serves every sibling point it receives — instead of
every worker rebuilding identical graphs.  Groups larger than
``ceil(points / workers)`` are split so a single-graph sweep still uses the
whole pool (the graph is then built at most once per worker, never once per
point).  ``run.provenance["graph_builds"]`` records how many graphs the
pool actually constructed next to ``"graphs_distinct"`` (equal when priming
was perfect).

The executor is **fault-tolerant** (see :mod:`repro.dist.resilience`):

* a point that raises yields a structured failure record, not a dead sweep
  — the worker isolates exceptions per point;
* failed points retry with bounded deterministic backoff
  (:class:`RetryPolicy`), and are **quarantined** after exhausting the
  budget: the sweep completes, and the quarantined points appear in
  ``run.provenance["failures"]``;
* per-point wall-clock budgets (``RetryPolicy.timeout_seconds``) catch
  stalled workers: the pool is restarted and the overdue points retried;
* a dead worker (crash, OOM kill) breaks the pool; the executor restarts it
  and resubmits every in-flight point without charging their retry budgets;
* when the pool keeps dying (``max_pool_restarts`` exceeded) the executor
  degrades gracefully to in-process serial execution of the remaining
  points;
* SIGINT/SIGTERM trigger a clean shutdown: ready results are flushed to
  their checkpoints, the pool is terminated, stale temp files are swept,
  and :class:`SweepInterrupted` reports how to resume.

Checkpoints (optional) are written by the parent as points complete, so an
interrupted sweep resumes where it stopped; sharded runs
(:func:`~repro.dist.partition.select_indices`) execute a deterministic
subset of the grid, and :func:`merge_runs` reassembles shard outputs into
the one full-grid run.  With ``stream_dir`` set, every completed point is
additionally **streamed** to a crash-safe on-disk sink
(:class:`~repro.dist.sink.StreamingResultSink`): records are appended as
checksummed, fsync'd segment entries instead of being held in memory, a
``kill -9`` at any byte offset resumes from exactly what reached the disk,
and the final run is materialised by a k-way streaming merge.
Deterministic fault injection for all of the above lives in
:mod:`repro.faultinject` (``run_spec(fault_plan=...)``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import ConfigurationError
from ..core.metrics import RunResult
from ..faultinject.plan import FaultInjector, FaultPlan
from ..spec.run import PointRun, ScenarioRun
from ..spec.scenario import ScenarioSpec
from .checkpoint import CheckpointStore, PathLike
from .partition import ExpandedPoint, ShardLike, expand_points, parse_shard, select_indices
from .progress import PointProgress, ProgressCallback
from .sink import SinkError, StreamingResultSink, point_run_from_payload
from .resilience import (
    PointFailure,
    RetryPolicy,
    SweepInterrupted,
    WorkerPoolError,
    backoff_delay,
    record_failure_event,
)

__all__ = ["ParallelScenarioExecutor", "merge_runs"]


#: Wire format of one *queued* task: (index, values, label, single-point
#: spec dict).  At submit time a 1-based dispatch count is appended (the
#: fault-injection hook and failure records key off it).
_Task = Tuple[int, Dict[str, object], str, Dict[str, object]]

#: Tasks are dispatched to the pool in *graph groups*: every task in a group
#: materialises the same graph (equal ``ExperimentRunner.graph_cache_key``),
#: so the worker that receives the group builds that graph exactly once and
#: serves all of its points from the cache.  Without the grouping, sibling
#: points of one graph land on arbitrary workers and each of them rebuilds
#: an identical graph.
_TaskGroup = List[_Task]

#: Per-worker-process runner and fault injector, created once by the pool
#: initializer so graph caches (and injector point counters) persist across
#: the tasks a worker executes.
_WORKER_RUNNER = None
_WORKER_INJECTOR: Optional[FaultInjector] = None

#: Upper bound on one event-loop wait, so interrupts and backoff promotions
#: are noticed promptly even while every worker is busy.
_POLL_SECONDS = 0.2


def _build_runner(runner_kwargs: Dict[str, object]):
    from ..experiments.runner import ExperimentRunner

    return ExperimentRunner(**runner_kwargs)


def _init_worker(
    runner_kwargs: Dict[str, object],
    fault_plan_dict: Optional[Dict[str, object]] = None,
) -> None:
    global _WORKER_RUNNER, _WORKER_INJECTOR
    _WORKER_RUNNER = _build_runner(runner_kwargs)
    _WORKER_INJECTOR = (
        FaultInjector(fault_plan_dict, mode="worker")
        if fault_plan_dict is not None
        else None
    )


def _execute_task(
    runner, task, injector: Optional[FaultInjector] = None
) -> Dict[str, object]:
    """Run one grid point and return its checkpoint/wire payload."""
    index, values, label, spec_dict, dispatch = task
    started = time.perf_counter()
    if injector is not None:
        injector.before_point(index, dispatch)
    point = ExpandedPoint(
        index=index,
        values=values,
        label=label,
        spec=ScenarioSpec.from_dict(spec_dict),
    )
    point_run = runner.run_point(point)
    elapsed = time.perf_counter() - started
    return {
        "index": index,
        "values": values,
        "label": label,
        "spec": spec_dict,
        "elapsed_seconds": elapsed,
        "results": [result.to_dict() for result in point_run.results],
    }


def _run_group_in_worker(group: List[tuple]) -> Dict[str, object]:
    """Run one graph group; report payloads, per-point failures, and builds.

    Exceptions are isolated **per point**: a failing point becomes a
    structured failure record and its siblings still execute, so one bad
    grid point can never take a whole batch (or the sweep) down with it.
    """
    builds_before = _WORKER_RUNNER.graph_builds
    payloads: List[Dict[str, object]] = []
    failures: List[Dict[str, object]] = []
    for task in group:
        try:
            payloads.append(_execute_task(_WORKER_RUNNER, task, _WORKER_INJECTOR))
        except Exception as error:  # noqa: BLE001 - the isolation boundary
            failures.append(
                {
                    "index": int(task[0]),
                    "label": str(task[2]),
                    "error_type": type(error).__name__,
                    "message": str(error),
                }
            )
    return {
        "payloads": payloads,
        "failures": failures,
        "graph_builds": _WORKER_RUNNER.graph_builds - builds_before,
    }


def _group_by_graph(
    pending: List[ExpandedPoint], workers: int
) -> List[_TaskGroup]:
    """Expand the pending points graph-first: task groups of same-graph points.

    Group order follows first appearance in the (row-major) grid and tasks
    keep their grid order within a group; grouping only affects which
    *worker* a point lands on (and hence checkpoint/progress completion
    order), never its seeds or results — points merge by grid index.  With
    one worker every point is its own group, preserving exact grid order.

    A group is capped at ``ceil(pending / workers)`` tasks so that a sweep
    whose points all share one graph (e.g. protocol or failure-rate axes
    over a fixed graph) still spreads across the whole pool: the graph is
    then built once per *worker that receives a chunk* — at most ``workers``
    times — instead of once per point, and never at the price of
    serialising the sweep onto a single process.
    """
    from ..experiments.runner import ExperimentRunner

    if workers <= 1:
        return [
            [(p.index, p.values, p.label, p.spec.to_dict())] for p in pending
        ]
    groups: Dict[tuple, List[_TaskGroup]] = {}
    order: List[tuple] = []
    cap = -(-len(pending) // workers)  # ceil division
    for point in pending:
        key = ExperimentRunner.graph_cache_key(point.spec.graph)
        if key not in groups:
            groups[key] = [[]]
            order.append(key)
        chunks = groups[key]
        if len(chunks[-1]) >= cap:
            chunks.append([])
        chunks[-1].append(
            (point.index, point.values, point.label, point.spec.to_dict())
        )
    return [chunk for key in order for chunk in groups[key]]


def _hard_shutdown(executor) -> None:
    """Tear a (possibly broken or stalled) process pool down without waiting.

    ``shutdown(wait=False)`` alone leaves a stalled worker burning CPU on
    its current task, so the worker processes are terminated explicitly;
    the private ``_processes`` attribute is stable across supported CPython
    versions and guarded anyway.
    """
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    # lint: disable=EXC001 -- best-effort teardown of a pool already known to
    # be broken/stalled; the caller restarts or degrades regardless
    except Exception:  # pragma: no cover - defensive
        pass
    processes = getattr(executor, "_processes", None)
    for process in list((processes or {}).values()):
        try:
            process.terminate()
        # lint: disable=EXC001 -- the worker may already be dead; either way
        # the next join/restart step handles it
        except Exception:  # pragma: no cover - already dead
            continue
    for process in list((processes or {}).values()):
        try:
            process.join(timeout=1.0)
        # lint: disable=EXC001 -- best-effort reaping during hard shutdown;
        # an unjoinable process is abandoned to the OS by design
        except Exception:  # pragma: no cover - defensive
            continue


@dataclass
class _RunState:
    """Mutable bookkeeping shared by the execution paths of one sweep."""

    total: int = 0  # full grid size (progress denominators)
    total_selected: int = 0  # points selected for this run
    completed: int = 0  # resumed + freshly completed points
    graph_builds: int = 0
    retries_total: int = 0  # failed attempts that were retried
    pool_restarts: int = 0
    serial_fallback: bool = False
    failure_counts: Dict[int, int] = field(default_factory=dict)
    dispatch_counts: Dict[int, int] = field(default_factory=dict)
    errors: Dict[int, List[Dict[str, object]]] = field(default_factory=dict)
    quarantined: Dict[int, PointFailure] = field(default_factory=dict)

    def next_dispatch(self, index: int) -> int:
        self.dispatch_counts[index] = self.dispatch_counts.get(index, 0) + 1
        return self.dispatch_counts[index]


@dataclass
class ParallelScenarioExecutor:
    """Shard a scenario grid across worker processes and merge the results.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` executes in-process (no pool) but still
        routes every point through the serialised wire format, so the output
        is byte-for-byte what a multi-process run produces.
    checkpoint_dir:
        When set, one checkpoint file per completed point is written there
        (see :class:`CheckpointStore`); an interrupted sweep keeps them.
    stream_dir:
        When set, every completed point is appended to a crash-safe
        streaming sink there (:class:`~repro.dist.sink.StreamingResultSink`)
        instead of being held in memory while the sweep runs: records are
        checksummed, fsync'd on the ``fsync_every`` cadence, and recovered
        — torn tails quarantined — on resume, so a ``kill -9`` at any byte
        offset costs at most the records inside the durability window.
        The returned run is materialised from the sink by a streaming
        merge; sharded runs tag their segments so one collection directory
        can serve every shard.
    fsync_every:
        Sink fsync cadence (default 1: every record durable before the
        sweep proceeds).  Ignored without ``stream_dir``.
    stream_durable:
        ``False`` disables the sink's fsync calls entirely (tests,
        throwaway sweeps on tmpfs).  Ignored without ``stream_dir``.
    resume:
        Skip points that are already durable — in the stream directory
        and/or the checkpoint directory (requires at least one of them).
        The scenario fingerprint is verified, so a directory from a
        different spec fails loudly.  With both directories set,
        checkpointed points missing from the stream are replayed into it
        without re-execution.
    progress:
        Optional per-point callback (see :mod:`repro.dist.progress`).
    mp_context:
        :func:`multiprocessing.get_context` method name (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.
    retry:
        Recovery semantics (:class:`~repro.dist.resilience.RetryPolicy`):
        per-point retry budget and backoff, per-point timeout, pool-restart
        budget, serial fallback.  The defaults tolerate transient faults
        without changing the failure-free hot path.
    fault_plan:
        Deterministic fault injection (:class:`repro.faultinject.FaultPlan`)
        — test machinery; ``None`` (the default) injects nothing.
    """

    workers: int = 1
    checkpoint_dir: Optional[PathLike] = None
    stream_dir: Optional[PathLike] = None
    fsync_every: int = 1
    stream_durable: bool = True
    resume: bool = False
    progress: Optional[ProgressCallback] = None
    mp_context: Optional[str] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {self.workers!r}"
            )
        if self.resume and self.checkpoint_dir is None and self.stream_dir is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint directory (checkpoint_dir) "
                "or a stream directory (stream_dir)"
            )
        self._interrupt_requested = False

    def run(
        self,
        spec: ScenarioSpec,
        shard: Optional[ShardLike] = None,
        points: Optional[Union[slice, Iterable[int]]] = None,
    ) -> ScenarioRun:
        """Execute (the selected slice of) ``spec`` and merge the results.

        Returns a :class:`ScenarioRun` whose points are in grid order
        regardless of completion order; ``run.provenance`` records the
        worker count, shard layout, resume statistics, wall-clock, and the
        recovery ledger (retries, pool restarts, quarantined points under
        ``"failures"``).  Raises :class:`SweepInterrupted` on SIGINT /
        SIGTERM after flushing completed checkpoints.
        """
        started = time.perf_counter()
        all_points = expand_points(spec)
        total = len(all_points)
        indices = select_indices(total, shard=shard, points=points)
        selected = [all_points[i] for i in indices]

        parent_injector = (
            FaultInjector(self.fault_plan, mode="inline")
            if self.fault_plan is not None
            else None
        )

        store: Optional[CheckpointStore] = None
        completed_payloads: Dict[int, Dict[str, object]] = {}
        if self.checkpoint_dir is not None:
            store = CheckpointStore(self.checkpoint_dir, spec)
            if self.resume:
                completed_payloads = store.load()

        sink: Optional[StreamingResultSink] = None
        if self.stream_dir is not None:
            tag = ""
            if shard is not None:
                shard_index, shard_count = parse_shard(shard)
                tag = f"{shard_index}of{shard_count}"
            sink = StreamingResultSink(
                self.stream_dir,
                spec,
                fsync_every=self.fsync_every,
                durable=self.stream_durable,
                tag=tag,
                resume=self.resume,
                append_hook=(
                    parent_injector.sink_append_fault if parent_injector else None
                ),
                fsync_hook=(
                    parent_injector.sink_fsync_fault if parent_injector else None
                ),
            )

        state = _RunState(total=total, total_selected=len(selected))
        point_runs: Dict[int, PointRun] = {}
        streamed = sink.recovered_indices if sink is not None else frozenset()
        skipped: set = set()
        resumed = 0
        for point in selected:
            if point.index in streamed:
                skipped.add(point.index)
                resumed += 1
                state.completed += 1
                self._emit(point.index, total, point.label, 0.0, source="stream")
                continue
            payload = completed_payloads.get(point.index)
            if payload is None:
                continue
            if sink is not None:
                # Checkpoint -> stream replay: the point is already computed,
                # it only needs to reach the sink's durable record format.
                sink.append(payload)
            else:
                point_runs[point.index] = point_run_from_payload(payload)
            skipped.add(point.index)
            resumed += 1
            state.completed += 1
            self._emit(point.index, total, point.label, 0.0, source="checkpoint")

        from ..experiments.runner import ExperimentRunner

        pending = [p for p in selected if p.index not in skipped]
        graphs_distinct = len(
            {ExperimentRunner.graph_cache_key(p.spec.graph) for p in pending}
        )
        groups = _group_by_graph(pending, self.workers)
        runner_kwargs = {
            "master_seed": spec.master_seed,
            "repetitions": spec.repetitions,
            "engine": spec.engine,
            "batch": spec.batch,
        }

        def handle_payload(payload: Dict[str, object]) -> None:
            index = int(payload["index"])
            if store is not None:
                path = store.save(payload)
                if parent_injector is not None:
                    # Deliberately torn write: this run's in-memory result is
                    # intact; a later resume quarantines the file and re-runs
                    # the point (asserted in the chaos suite).
                    parent_injector.corrupt_checkpoint(index, path)
            if sink is not None:
                segment, start, end = sink.append(payload)
                if parent_injector is not None:
                    if parent_injector.tear_stream(index, segment, start, end):
                        # The record just written is now torn on disk.  The
                        # sink stops accepting appends (as if the process had
                        # died mid-write) and the sweep shuts down, so resume
                        # exercises genuine torn-tail recovery.
                        sink.freeze()
                        self._interrupt_requested = True
                    if parent_injector.kill_after_records(sink.records_appended):
                        os.kill(os.getpid(), signal.SIGKILL)
            else:
                point_runs[index] = point_run_from_payload(payload)
            state.completed += 1
            self._emit(
                index,
                total,
                payload["label"],
                float(payload["elapsed_seconds"]),
                attempt=state.failure_counts.get(index, 0) + 1,
            )
            if parent_injector is not None and parent_injector.wants_interrupt(index):
                self._interrupt_requested = True

        self._interrupt_requested = False
        previous_handlers = self._install_signal_handlers()
        try:
            if groups:
                if self.workers == 1:
                    self._run_inline(groups, runner_kwargs, state, handle_payload)
                else:
                    self._run_pool(groups, runner_kwargs, state, handle_payload)
        except SweepInterrupted:
            if store is not None:
                store.discard_stale_temps()
            if sink is not None:
                sink.close(strict=False)
            raise
        except SinkError:
            if sink is not None:
                sink.close(strict=False)
            raise
        finally:
            self._restore_signal_handlers(previous_handlers)

        if sink is not None:
            sink.close()
            selected_set = {p.index for p in selected}
            point_runs = {}
            for payload in sink.iter_merged():
                index = int(payload["index"])
                if index in selected_set:
                    point_runs[index] = point_run_from_payload(payload)
        run = ScenarioRun(
            spec=spec,
            points=[point_runs[index] for index in sorted(point_runs)],
        )
        run.provenance = {
            "workers": self.workers,
            "shard": list(parse_shard(shard)) if shard is not None else None,
            "points_total": total,
            "points_selected": len(selected),
            "points_run": len(pending) - len(state.quarantined),
            "points_resumed": resumed,
            "points_quarantined": len(state.quarantined),
            # Distinct graphs among the executed points vs. graphs actually
            # constructed across the pool: equal means the graph-first
            # grouping primed every worker cache perfectly (no sibling
            # rebuilt a graph another worker already built); builds may
            # exceed it when a large same-graph group was split across
            # workers to keep the pool busy, or when retries and pool
            # restarts rebuilt caches.
            "graphs_distinct": graphs_distinct,
            "graph_builds": state.graph_builds,
            # Recovery ledger: how hard the sweep had to fight to complete.
            "retries": state.retries_total,
            "pool_restarts": state.pool_restarts,
            "serial_fallback": state.serial_fallback,
            "failures": [
                state.quarantined[index].to_dict()
                for index in sorted(state.quarantined)
            ],
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan is not None else None
            ),
            "wall_clock_seconds": round(time.perf_counter() - started, 6),
            "checkpoint_dir": (
                str(self.checkpoint_dir) if self.checkpoint_dir is not None else None
            ),
            "stream": sink.stats() if sink is not None else None,
        }
        return run

    # -- internals --------------------------------------------------------------

    def _emit(
        self,
        index: int,
        total: int,
        label: str,
        elapsed: float,
        source: str = "run",
        attempt: int = 1,
    ) -> None:
        if self.progress is not None:
            self.progress(
                PointProgress(
                    index=index,
                    total=total,
                    label=label,
                    elapsed_seconds=elapsed,
                    source=source,
                    attempt=attempt,
                )
            )

    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM to the clean-shutdown flag (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}

        def request_interrupt(signum, frame):  # noqa: ARG001 - signal signature
            self._interrupt_requested = True

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, request_interrupt)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                continue
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        if not previous:
            return
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - defensive
                continue

    def _interrupted(self, state: _RunState) -> SweepInterrupted:
        return SweepInterrupted(
            completed=state.completed,
            total=state.total_selected,
            checkpoint_dir=(
                str(self.checkpoint_dir) if self.checkpoint_dir is not None else None
            ),
            stream_dir=(
                str(self.stream_dir) if self.stream_dir is not None else None
            ),
        )

    def _record_failure(
        self,
        state: _RunState,
        index: int,
        label: str,
        error_type: str,
        message: str,
    ) -> bool:
        """Log one failed attempt; return True if the point is now quarantined."""
        attempt = state.failure_counts.get(index, 0) + 1
        state.failure_counts[index] = attempt
        record_failure_event(state.errors, index, attempt, error_type, message)
        if attempt >= self.retry.max_attempts:
            state.quarantined[index] = PointFailure(
                index=index,
                label=label,
                attempts=attempt,
                error_type=error_type,
                message=message,
                errors=tuple(state.errors[index]),
            )
            self._emit(
                index, state.total, label, 0.0, source="quarantined", attempt=attempt
            )
            return True
        state.retries_total += 1
        return False

    # -- in-process path ---------------------------------------------------------

    def _run_inline(
        self,
        groups: Sequence[_TaskGroup],
        runner_kwargs: Dict[str, object],
        state: _RunState,
        handle_payload,
    ) -> None:
        """Serial execution with the same recovery semantics as the pool.

        Used for ``workers=1`` and as the graceful-degradation fallback when
        the pool keeps dying.  Kill/stall fault rules are skipped here (the
        injector runs in ``"inline"`` mode — there is no worker process to
        lose), and per-point timeouts cannot preempt an in-process point.
        """
        runner = _build_runner(runner_kwargs)
        injector = (
            FaultInjector(self.fault_plan, mode="inline")
            if self.fault_plan is not None
            else None
        )
        queue: Deque[_Task] = deque(task for group in groups for task in group)
        while queue:
            if self._interrupt_requested:
                raise self._interrupted(state)
            task = queue.popleft()
            index, _, label, _ = task
            dispatch = state.next_dispatch(index)
            builds_before = runner.graph_builds
            try:
                payload = _execute_task(runner, (*task, dispatch), injector)
            except Exception as error:  # noqa: BLE001 - the isolation boundary
                state.graph_builds += runner.graph_builds - builds_before
                if not self._record_failure(
                    state, index, label, type(error).__name__, str(error)
                ):
                    time.sleep(
                        backoff_delay(self.retry, state.failure_counts[index])
                    )
                    queue.appendleft(task)
                continue
            state.graph_builds += runner.graph_builds - builds_before
            handle_payload(payload)
        if self._interrupt_requested:
            # The signal landed while the final point was executing; report
            # the interruption even though nothing was left to cancel.
            raise self._interrupted(state)

    # -- pool path ---------------------------------------------------------------

    def _new_pool(self, context, runner_kwargs: Dict[str, object], size: int):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=size,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                runner_kwargs,
                self.fault_plan.to_dict() if self.fault_plan is not None else None,
            ),
        )

    def _run_pool(
        self,
        groups: Sequence[_TaskGroup],
        runner_kwargs: Dict[str, object],
        state: _RunState,
        handle_payload,
    ) -> None:
        """The resilient event loop: submit, collect, retry, restart, degrade."""
        from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait

        context = multiprocessing.get_context(self.mp_context)
        pool_size = min(self.workers, max(1, len(groups)))
        executor = self._new_pool(context, runner_kwargs, pool_size)
        pending: Deque[_TaskGroup] = deque(groups)
        delayed: List[Tuple[float, _TaskGroup]] = []  # (ready_at, group)
        in_flight: Dict[object, Tuple[_TaskGroup, Optional[float]]] = {}

        def remaining_groups() -> List[_TaskGroup]:
            groups_left = [group for group, _ in in_flight.values()]
            groups_left.extend(pending)
            groups_left.extend(group for _, group in delayed)
            in_flight.clear()
            pending.clear()
            delayed.clear()
            return groups_left

        def restart_pool() -> bool:
            """Tear the pool down and build a fresh one; False = budget spent."""
            nonlocal executor
            state.pool_restarts += 1
            _hard_shutdown(executor)
            if state.pool_restarts > self.retry.max_pool_restarts:
                return False
            executor = self._new_pool(context, runner_kwargs, pool_size)
            return True

        def fall_back_serial() -> None:
            state.serial_fallback = True
            self._run_inline(remaining_groups(), runner_kwargs, state, handle_payload)

        def schedule_retry(task: _Task) -> None:
            delay = backoff_delay(self.retry, state.failure_counts[task[0]])
            delayed.append((time.monotonic() + delay, [task]))

        def collect(future, group: _TaskGroup) -> bool:
            """Process one finished future; returns True if the pool broke."""
            try:
                result = future.result()
            except BrokenExecutor:
                pending.appendleft(group)  # resubmission, not a retry
                return True
            except Exception as error:  # noqa: BLE001 - pool infrastructure
                # The whole batch failed outside the per-point isolation
                # boundary (e.g. result transport): charge every point one
                # attempt and retry the survivors individually.
                for task in group:
                    if not self._record_failure(
                        state, task[0], task[2], type(error).__name__, str(error)
                    ):
                        schedule_retry(task)
                return False
            state.graph_builds += int(result["graph_builds"])
            for payload in result["payloads"]:
                handle_payload(payload)
            for failure in result["failures"]:
                index = int(failure["index"])
                if not self._record_failure(
                    state,
                    index,
                    str(failure["label"]),
                    str(failure["error_type"]),
                    str(failure["message"]),
                ):
                    task = next(t for t in group if t[0] == index)
                    schedule_retry(task)
            return False

        try:
            while pending or delayed or in_flight:
                if self._interrupt_requested:
                    # Flush whatever already finished so completed points
                    # reach their checkpoints before the pool dies.
                    for future in [f for f in list(in_flight) if f.done()]:
                        group, _ = in_flight.pop(future)
                        collect(future, group)
                    raise self._interrupted(state)

                now = time.monotonic()
                if delayed:  # promote retries whose backoff elapsed
                    ready = [group for at, group in delayed if at <= now]
                    if ready:
                        delayed = [(at, g) for at, g in delayed if at > now]
                        pending.extend(ready)

                broken = False
                while pending and len(in_flight) < pool_size:
                    group = pending.popleft()
                    stamped = [
                        (*task, state.next_dispatch(task[0])) for task in group
                    ]
                    try:
                        future = executor.submit(_run_group_in_worker, stamped)
                    except (BrokenExecutor, RuntimeError):
                        pending.appendleft(group)
                        broken = True
                        break
                    deadline = (
                        time.monotonic()
                        + self.retry.timeout_seconds * len(group)
                        if self.retry.timeout_seconds is not None
                        else None
                    )
                    # In-flight never exceeds the worker count, so every
                    # submitted group starts immediately and its deadline
                    # measures actual execution time.
                    in_flight[future] = (group, deadline)

                if not broken:
                    if not in_flight:
                        if delayed:  # only backoff waits remain
                            wake = min(at for at, _ in delayed) - time.monotonic()
                            time.sleep(max(0.0, min(wake, _POLL_SECONDS)))
                        continue
                    wait_timeout = _POLL_SECONDS
                    now = time.monotonic()
                    for _, deadline in in_flight.values():
                        if deadline is not None:
                            wait_timeout = min(
                                wait_timeout, max(0.0, deadline - now)
                            )
                    done, _ = wait(
                        list(in_flight),
                        timeout=wait_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        group, _ = in_flight.pop(future)
                        broken = collect(future, group) or broken

                if broken:
                    # A worker died abruptly: every in-flight batch is lost.
                    # Resubmit them all without touching their retry budgets
                    # — the victim cannot be attributed, and innocents must
                    # not drift toward quarantine.
                    for group, _ in in_flight.values():
                        pending.appendleft(group)
                    in_flight.clear()
                    if not restart_pool():
                        if not self.retry.serial_fallback:
                            raise WorkerPoolError(
                                f"worker pool died {state.pool_restarts} times "
                                f"(budget {self.retry.max_pool_restarts}) and "
                                "serial fallback is disabled"
                            )
                        fall_back_serial()
                        return
                    continue

                now = time.monotonic()
                stalled = [
                    future
                    for future, (_, deadline) in in_flight.items()
                    if deadline is not None and now >= deadline
                ]
                if stalled:
                    # A pool cannot cancel one running task, so a stall costs
                    # a pool restart: the overdue points are charged one
                    # failed attempt, everything else in flight resubmits
                    # penalty-free.
                    for future in stalled:
                        group, _ = in_flight.pop(future)
                        for task in group:
                            if not self._record_failure(
                                state,
                                task[0],
                                task[2],
                                "PointTimeout",
                                "exceeded the per-point wall-clock budget of "
                                f"{self.retry.timeout_seconds}s",
                            ):
                                schedule_retry(task)
                    for group, _ in in_flight.values():
                        pending.appendleft(group)
                    in_flight.clear()
                    if not restart_pool():
                        if not self.retry.serial_fallback:
                            raise WorkerPoolError(
                                f"worker pool was restarted {state.pool_restarts} "
                                f"times (budget {self.retry.max_pool_restarts}) "
                                "and serial fallback is disabled"
                            )
                        fall_back_serial()
                        return
            if self._interrupt_requested:
                # The signal landed while the final results were draining;
                # everything already flushed, but the interruption is real.
                raise self._interrupted(state)
        finally:
            _hard_shutdown(executor)


def merge_runs(runs: Sequence[ScenarioRun]) -> ScenarioRun:
    """Reassemble shard outputs into the one full-grid :class:`ScenarioRun`.

    All runs must come from the *same* scenario; together they must cover
    every grid point exactly once (the partition invariant) — except points
    a shard explicitly **quarantined** (``provenance["failures"]``), which
    are carried over into the merged provenance instead of failing the
    merge.  The merged result is independent of the order the shards are
    given in — points are keyed by grid index — and bit-identical to a
    serial ``run_spec``.
    """
    if not runs:
        raise ConfigurationError("merge_runs needs at least one ScenarioRun")
    spec = runs[0].spec
    reference = spec.to_dict()
    for run in runs[1:]:
        if run.spec.to_dict() != reference:
            raise ConfigurationError(
                "cannot merge runs of different scenarios "
                f"({run.spec.name!r} vs {spec.name!r})"
            )
    merged: Dict[int, PointRun] = {}
    for run in runs:
        for point in run.points:
            if point.index in merged:
                raise ConfigurationError(
                    f"grid point {point.index} appears in more than one shard; "
                    "shards must be disjoint"
                )
            merged[point.index] = point
    failures: Dict[int, Dict[str, object]] = {}
    for run in runs:
        for failure in (run.provenance or {}).get("failures") or []:
            index = int(failure["index"])
            if index in failures:
                raise ConfigurationError(
                    f"grid point {index} was quarantined by more than one "
                    "shard; shards must be disjoint — the same directory or "
                    "shard spec was probably run twice"
                )
            if index in merged:
                raise ConfigurationError(
                    f"grid point {index} completed in one shard but was "
                    "quarantined in another; overlapping shards executed the "
                    "same point with different outcomes — re-run with "
                    "disjoint shards instead of silently preferring either"
                )
            failures[index] = dict(failure)
    expected = spec.sweep.size if spec.sweep is not None else 1
    missing = sorted(set(range(expected)) - set(merged) - set(failures))
    if missing:
        raise ConfigurationError(
            "merged shards do not cover the full grid; missing point "
            f"index(es) {missing[:10]}{'...' if len(missing) > 10 else ''} "
            f"of {expected}"
        )
    result = ScenarioRun(
        spec=spec, points=[merged[index] for index in sorted(merged)]
    )
    shards = [run.provenance for run in runs if run.provenance]
    result.provenance = {
        "merged_from": len(runs),
        "workers": max(
            (int(p.get("workers", 1)) for p in shards), default=1
        ),
        "shards": [p.get("shard") for p in shards] or None,
        "points_total": expected,
        "failures": [failures[index] for index in sorted(failures)],
        "wall_clock_seconds": round(
            sum(float(p.get("wall_clock_seconds", 0.0)) for p in shards), 6
        ),
    }
    return result
