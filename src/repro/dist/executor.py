"""Parallel execution of scenario sweeps over worker processes.

:class:`ParallelScenarioExecutor` fans the grid points of one
:class:`~repro.spec.ScenarioSpec` out over a :mod:`multiprocessing` pool.
Nothing unpicklable crosses the process boundary: each task is the point's
index, axis values, baked label, and its **serialised single-point spec**;
the worker rebuilds the graph, protocol, and failure model from the spec
through the registries and returns the results as JSON-safe dicts
(:meth:`RunResult.to_dict`).  Because the seeding discipline keys every
random stream off the master seed and the point's label — never off
execution order or worker identity — a point produces bit-identical results
no matter which process runs it, which makes the merged
:class:`~repro.spec.ScenarioRun` **bit-identical to the serial**
``run_spec`` result (asserted down to per-round history in
``tests/test_dist.py``).

Checkpoints (optional) are written by the parent as points complete, so an
interrupted sweep resumes where it stopped; sharded runs
(:func:`~repro.dist.partition.select_indices`) execute a deterministic
subset of the grid, and :func:`merge_runs` reassembles shard outputs into
the one full-grid run.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.metrics import RunResult
from ..spec.run import PointRun, ScenarioRun
from ..spec.scenario import ScenarioSpec
from .checkpoint import CheckpointStore, PathLike
from .partition import ExpandedPoint, ShardLike, expand_points, parse_shard, select_indices
from .progress import PointProgress, ProgressCallback

__all__ = ["ParallelScenarioExecutor", "merge_runs"]


#: Wire format of one task: (index, values, label, single-point spec dict).
_Task = Tuple[int, Dict[str, object], str, Dict[str, object]]

#: Per-worker-process runner, created once by the pool initializer so graph
#: caches persist across the tasks a worker executes.
_WORKER_RUNNER = None


def _build_runner(runner_kwargs: Dict[str, object]):
    from ..experiments.runner import ExperimentRunner

    return ExperimentRunner(**runner_kwargs)


def _init_worker(runner_kwargs: Dict[str, object]) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = _build_runner(runner_kwargs)


def _execute_task(runner, task: _Task) -> Dict[str, object]:
    """Run one grid point and return its checkpoint/wire payload."""
    index, values, label, spec_dict = task
    started = time.perf_counter()
    point = ExpandedPoint(
        index=index,
        values=values,
        label=label,
        spec=ScenarioSpec.from_dict(spec_dict),
    )
    point_run = runner.run_point(point)
    elapsed = time.perf_counter() - started
    return {
        "index": index,
        "values": values,
        "label": label,
        "spec": spec_dict,
        "elapsed_seconds": elapsed,
        "results": [result.to_dict() for result in point_run.results],
    }


def _run_task_in_worker(task: _Task) -> Dict[str, object]:
    return _execute_task(_WORKER_RUNNER, task)


def _point_run_from_payload(payload: Dict[str, object]) -> PointRun:
    """Rebuild a :class:`PointRun` from the wire/checkpoint payload.

    Fresh and resumed points both pass through this single deserialisation
    path, so a resumed sweep is indistinguishable from an uninterrupted one.
    """
    return PointRun(
        index=int(payload["index"]),
        values=dict(payload["values"]),
        label=payload["label"],
        spec=ScenarioSpec.from_dict(payload["spec"]),
        results=[RunResult.from_dict(result) for result in payload["results"]],
    )


@dataclass
class ParallelScenarioExecutor:
    """Shard a scenario grid across worker processes and merge the results.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` executes in-process (no pool) but still
        routes every point through the serialised wire format, so the output
        is byte-for-byte what a multi-process run produces.
    checkpoint_dir:
        When set, one checkpoint file per completed point is written there
        (see :class:`CheckpointStore`); an interrupted sweep keeps them.
    resume:
        Skip points whose checkpoint file already exists (requires
        ``checkpoint_dir``).  The scenario fingerprint is verified, so a
        directory from a different spec fails loudly.
    progress:
        Optional per-point callback (see :mod:`repro.dist.progress`).
    mp_context:
        :func:`multiprocessing.get_context` method name (``"fork"``,
        ``"spawn"``, ...); ``None`` uses the platform default.
    """

    workers: int = 1
    checkpoint_dir: Optional[PathLike] = None
    resume: bool = False
    progress: Optional[ProgressCallback] = None
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {self.workers!r}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint directory"
            )

    def run(
        self,
        spec: ScenarioSpec,
        shard: Optional[ShardLike] = None,
        points: Optional[Union[slice, Iterable[int]]] = None,
    ) -> ScenarioRun:
        """Execute (the selected slice of) ``spec`` and merge the results.

        Returns a :class:`ScenarioRun` whose points are in grid order
        regardless of completion order; ``run.provenance`` records the
        worker count, shard layout, resume statistics, and wall-clock.
        """
        started = time.perf_counter()
        all_points = expand_points(spec)
        total = len(all_points)
        indices = select_indices(total, shard=shard, points=points)
        selected = [all_points[i] for i in indices]

        store: Optional[CheckpointStore] = None
        completed: Dict[int, Dict[str, object]] = {}
        if self.checkpoint_dir is not None:
            store = CheckpointStore(self.checkpoint_dir, spec)
            if self.resume:
                completed = store.load()

        point_runs: Dict[int, PointRun] = {}
        resumed = 0
        for point in selected:
            payload = completed.get(point.index)
            if payload is None:
                continue
            point_runs[point.index] = _point_run_from_payload(payload)
            resumed += 1
            self._emit(point.index, total, point.label, 0.0, source="checkpoint")

        pending = [p for p in selected if p.index not in point_runs]
        tasks: List[_Task] = [
            (p.index, p.values, p.label, p.spec.to_dict()) for p in pending
        ]
        runner_kwargs = {
            "master_seed": spec.master_seed,
            "repetitions": spec.repetitions,
            "engine": spec.engine,
            "batch": spec.batch,
        }
        for payload in self._execute(tasks, runner_kwargs):
            if store is not None:
                store.save(payload)
            point_runs[int(payload["index"])] = _point_run_from_payload(payload)
            self._emit(
                int(payload["index"]),
                total,
                payload["label"],
                float(payload["elapsed_seconds"]),
            )

        run = ScenarioRun(
            spec=spec,
            points=[point_runs[index] for index in sorted(point_runs)],
        )
        run.provenance = {
            "workers": self.workers,
            "shard": list(parse_shard(shard)) if shard is not None else None,
            "points_total": total,
            "points_selected": len(selected),
            "points_run": len(pending),
            "points_resumed": resumed,
            "wall_clock_seconds": round(time.perf_counter() - started, 6),
            "checkpoint_dir": (
                str(self.checkpoint_dir) if self.checkpoint_dir is not None else None
            ),
        }
        return run

    # -- internals --------------------------------------------------------------

    def _emit(
        self, index: int, total: int, label: str, elapsed: float, source: str = "run"
    ) -> None:
        if self.progress is not None:
            self.progress(
                PointProgress(
                    index=index,
                    total=total,
                    label=label,
                    elapsed_seconds=elapsed,
                    source=source,
                )
            )

    def _execute(
        self, tasks: List[_Task], runner_kwargs: Dict[str, object]
    ) -> Iterable[Dict[str, object]]:
        if not tasks:
            return
        if self.workers == 1:
            runner = _build_runner(runner_kwargs)
            for task in tasks:
                yield _execute_task(runner, task)
            return
        context = multiprocessing.get_context(self.mp_context)
        pool = context.Pool(
            processes=min(self.workers, len(tasks)),
            initializer=_init_worker,
            initargs=(runner_kwargs,),
        )
        try:
            # chunksize=1 so slow points do not pin fast ones behind them;
            # completion order is nondeterministic, merging is by index.
            yield from pool.imap_unordered(_run_task_in_worker, tasks, chunksize=1)
        finally:
            pool.terminate()
            pool.join()


def merge_runs(runs: Sequence[ScenarioRun]) -> ScenarioRun:
    """Reassemble shard outputs into the one full-grid :class:`ScenarioRun`.

    All runs must come from the *same* scenario; together they must cover
    every grid point exactly once (the partition invariant).  The merged
    result is independent of the order the shards are given in — points are
    keyed by grid index — and bit-identical to a serial ``run_spec``.
    """
    if not runs:
        raise ConfigurationError("merge_runs needs at least one ScenarioRun")
    spec = runs[0].spec
    reference = spec.to_dict()
    for run in runs[1:]:
        if run.spec.to_dict() != reference:
            raise ConfigurationError(
                "cannot merge runs of different scenarios "
                f"({run.spec.name!r} vs {spec.name!r})"
            )
    merged: Dict[int, PointRun] = {}
    for run in runs:
        for point in run.points:
            if point.index in merged:
                raise ConfigurationError(
                    f"grid point {point.index} appears in more than one shard; "
                    "shards must be disjoint"
                )
            merged[point.index] = point
    expected = spec.sweep.size if spec.sweep is not None else 1
    missing = sorted(set(range(expected)) - set(merged))
    if missing:
        raise ConfigurationError(
            f"merged shards do not cover the full grid; missing point "
            f"index(es) {missing[:10]}{'...' if len(missing) > 10 else ''} "
            f"of {expected}"
        )
    result = ScenarioRun(
        spec=spec, points=[merged[index] for index in sorted(merged)]
    )
    shards = [run.provenance for run in runs if run.provenance]
    result.provenance = {
        "merged_from": len(runs),
        "workers": max(
            (int(p.get("workers", 1)) for p in shards), default=1
        ),
        "shards": [p.get("shard") for p in shards] or None,
        "points_total": expected,
        "wall_clock_seconds": round(
            sum(float(p.get("wall_clock_seconds", 0.0)) for p in shards), 6
        ),
    }
    return result
