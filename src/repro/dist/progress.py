"""Per-point progress reporting for sweeps.

Both execution paths — the serial :meth:`ExperimentRunner.run_scenario` loop
and the :class:`~repro.dist.executor.ParallelScenarioExecutor` — emit one
:class:`PointProgress` event per completed grid point through a plain
callback, so callers can log, draw progress bars, or feed schedulers without
the execution layer knowing about any of that.  Two ready-made consumers are
provided: :func:`log_point_progress` (stdlib ``logging``, logger name
``"repro.dist"``) and :func:`print_point_progress` (one stderr line per
point, used by the CLI's ``run-spec --progress``).
"""

from __future__ import annotations

import logging
import sys
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

__all__ = [
    "PointProgress",
    "ProgressCallback",
    "log_point_progress",
    "print_point_progress",
]

logger = logging.getLogger("repro.dist")


@dataclass(frozen=True)
class PointProgress:
    """One completed grid point.

    Attributes
    ----------
    index:
        Row-major grid index of the point.
    total:
        Total number of points in the full grid (not just this shard).
    label:
        The point's baked run label.
    elapsed_seconds:
        Wall-clock spent executing the point (as measured where it ran —
        inside the worker process for parallel runs).  ``0.0`` for points
        restored from a checkpoint.
    source:
        ``"run"`` for freshly executed points, ``"checkpoint"`` for points
        skipped because a resume found their checkpoint file, ``"stream"``
        for points skipped because a resume found them durably recorded in
        the stream directory (:class:`~repro.dist.sink.StreamingResultSink`),
        and ``"quarantined"`` for points the resilience layer gave up on
        after exhausting their retry budget (the sweep continues without
        them).
    attempt:
        Which execution attempt produced this event (1 = first try; > 1
        means the resilience layer retried the point after failures).
    """

    index: int
    total: int
    label: str
    elapsed_seconds: float
    source: str = "run"
    attempt: int = 1


#: Signature of a progress consumer.
ProgressCallback = Callable[[PointProgress], None]


def _format(progress: PointProgress) -> str:
    if progress.source == "quarantined":
        return (
            f"point {progress.index + 1}/{progress.total} {progress.label} "
            f"quarantined after {progress.attempt} failed attempt(s)"
        )
    origin = (
        f" ({progress.source})" if progress.source in ("checkpoint", "stream") else ""
    )
    retried = f" (attempt {progress.attempt})" if progress.attempt > 1 else ""
    return (
        f"point {progress.index + 1}/{progress.total} {progress.label} "
        f"done in {progress.elapsed_seconds:.3f}s{origin}{retried}"
    )


def log_point_progress(progress: PointProgress) -> None:
    """Emit one INFO line per completed point on the ``repro.dist`` logger."""
    logger.info("%s", _format(progress))


def print_point_progress(
    progress: PointProgress, stream: Optional[TextIO] = None
) -> None:
    """Print one line per completed point (stderr by default)."""
    print(_format(progress), file=stream if stream is not None else sys.stderr)
