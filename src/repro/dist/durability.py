"""Durable filesystem primitives shared by the checkpoint and sink layers.

POSIX gives three separate durability obligations for "this file now exists
with these bytes, even after a power loss":

1. the file's *data* must be flushed (``os.fsync`` on the file descriptor);
2. an atomic rename makes the content *visible* under the final name
   (``os.replace``);
3. the *directory entry* itself must be flushed (``os.fsync`` on a
   descriptor of the containing directory), or the rename may vanish with
   the directory's dirty metadata.

Skipping (1) can leave a zero-length or torn file under the final name after
a crash; skipping (3) can lose the file entirely.  Both checkpoint files and
the streaming sink's manifest use :func:`atomic_write_text`, which performs
all three; segment appends fsync their own descriptor on the sink's cadence.

Directory fsync is not supported everywhere (notably some network and
Windows filesystems return ``EINVAL``/``EBADF``); :func:`fsync_dir` treats
that as best-effort rather than an error, matching the usual practice of
databases shipping on those platforms.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["fsync_fileobj", "fsync_dir", "atomic_write_text"]

PathLike = Union[str, Path]


def fsync_fileobj(handle) -> None:
    """Flush Python buffers and fsync the OS file descriptor."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(directory: PathLike) -> None:
    """Flush the directory entry table so renames/creates survive a crash.

    Best-effort: filesystems that cannot fsync a directory descriptor
    (``EINVAL``, ``EBADF``, ``EACCES`` on some mounts) are silently
    tolerated — there is nothing more a portable program can do there.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: PathLike, text: str, durable: bool = True) -> Path:
    """Atomically (and, by default, durably) replace ``path`` with ``text``.

    Writes to ``<path>.tmp`` in the same directory, fsyncs the temp file
    (when ``durable``), renames it over ``path``, then fsyncs the directory
    (when ``durable``).  On any failure the temp file is removed so no
    half-written litter survives; the destination is either the old content
    or the complete new content, never a mix.
    """
    destination = Path(path)
    temporary = destination.with_name(destination.name + ".tmp")
    try:
        with temporary.open("w") as handle:
            handle.write(text)
            if durable:
                fsync_fileobj(handle)
        os.replace(temporary, destination)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise
    if durable:
        fsync_dir(destination.parent)
    return destination
