"""Deterministic partitioning of scenario sweep grids.

A :class:`~repro.spec.ScenarioSpec` sweep expands to a row-major grid of
single-point specs.  This module turns that grid into the shared unit of
distributable work: :func:`expand_points` materialises every point with its
index, axis values, and **baked** run label (the label feeds the run-seed
derivation, so baking it here makes every point self-contained and
executable on any worker), and the shard helpers split the index space
deterministically so ``k`` independent processes — or hosts — each run a
disjoint slice and their merged output covers every point exactly once.

Shards are contiguous balanced ranges: shard ``i`` of ``k`` owns indices
``[floor(i*total/k), floor((i+1)*total/k))``.  For any ``k`` the shards
concatenate back to ``range(total)``, which is the partition invariant the
merge layer relies on (asserted in ``tests/test_dist.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import ConfigurationError
from ..spec.scenario import ScenarioSpec

__all__ = [
    "ExpandedPoint",
    "expand_points",
    "parse_shard",
    "shard_indices",
    "select_indices",
]

#: A shard designator: ``(shard_index, shard_count)`` or an ``"i/k"`` string.
ShardLike = Union[str, Tuple[int, int]]


@dataclass(frozen=True)
class ExpandedPoint:
    """One grid point of a scenario, ready to execute anywhere.

    Attributes
    ----------
    index:
        Position in row-major grid order (stable across processes).
    values:
        Axis key -> value for this point (empty for sweep-less scenarios).
    label:
        The formatted run label; identical to ``spec.label`` (baked).
    spec:
        Fully-resolved single-point spec with the baked label — serialising
        it and rebuilding on a worker reproduces this point bit-exactly.
    """

    index: int
    values: Dict[str, object]
    label: str
    spec: ScenarioSpec


def expand_points(spec: ScenarioSpec) -> List[ExpandedPoint]:
    """Expand ``spec``'s grid row-major into self-contained points.

    This is the single expansion path shared by the serial runner
    (:meth:`ExperimentRunner.run_scenario`), the parallel executor, and the
    CLI dry-run — the label baking here is part of the reproducibility
    contract, so it must not be duplicated elsewhere.
    """
    points: List[ExpandedPoint] = []
    for index, (values, resolved) in enumerate(spec.expand()):
        label = resolved.run_label(values)
        # Bake the formatted label into the point spec: the raw template may
        # reference sweep-axis keys (e.g. "{loss}") that no longer exist once
        # the sweep is resolved away, and the label feeds the run-seed
        # derivation, so only the baked form is replayable on its own.
        resolved = replace(resolved, label=label)
        points.append(
            ExpandedPoint(index=index, values=values, label=label, spec=resolved)
        )
    return points


def parse_shard(shard: ShardLike) -> Tuple[int, int]:
    """Normalise a shard designator to ``(shard_index, shard_count)``.

    Accepts an ``"i/k"`` string (the CLI form) or a 2-tuple/list of ints.
    ``shard_index`` is zero-based; ``0 <= shard_index < shard_count``.
    """
    if isinstance(shard, str):
        parts = shard.split("/")
        if len(parts) != 2:
            raise ConfigurationError(
                f"shard must look like 'i/k' (e.g. '0/4'), got {shard!r}"
            )
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ConfigurationError(
                f"shard must hold two integers 'i/k', got {shard!r}"
            ) from None
    else:
        try:
            index, count = shard
            index, count = int(index), int(count)
        except (TypeError, ValueError):
            raise ConfigurationError(
                "shard must be an 'i/k' string or an (index, count) pair, "
                f"got {shard!r}"
            ) from None
    if count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ConfigurationError(
            f"shard index must satisfy 0 <= index < count, got {index}/{count}"
        )
    return index, count


def shard_indices(total: int, shard_index: int, shard_count: int) -> range:
    """The contiguous slice of ``range(total)`` owned by one shard.

    Balanced to within one point; concatenating the ranges for
    ``shard_index = 0 .. shard_count-1`` yields exactly ``range(total)`` for
    any ``shard_count`` (including ``shard_count > total``, where trailing
    shards are empty).
    """
    if total < 0:
        raise ConfigurationError(f"total must be >= 0, got {total}")
    shard_index, shard_count = parse_shard((shard_index, shard_count))
    start = (shard_index * total) // shard_count
    stop = ((shard_index + 1) * total) // shard_count
    return range(start, stop)


def select_indices(
    total: int,
    shard: Optional[ShardLike] = None,
    points: Optional[Union[slice, Iterable[int]]] = None,
) -> List[int]:
    """The ascending grid indices selected by ``points`` and/or ``shard``.

    ``points`` (a slice or explicit index collection) filters the grid
    first; ``shard`` then takes its contiguous slice of the *selected* list,
    so the two compose (shard a hand-picked subset across workers).  Out of
    range or duplicate explicit indices are rejected.
    """
    selected = list(range(total))
    if points is not None:
        if isinstance(points, slice):
            selected = selected[points]
        else:
            explicit = [int(index) for index in points]
            out_of_range = [i for i in explicit if not 0 <= i < total]
            if out_of_range:
                raise ConfigurationError(
                    f"point index(es) {sorted(set(out_of_range))} out of range "
                    f"for a {total}-point grid"
                )
            if len(set(explicit)) != len(explicit):
                raise ConfigurationError(
                    "explicit point indices contain duplicates"
                )
            selected = sorted(explicit)
    if shard is not None:
        shard_index, shard_count = parse_shard(shard)
        window = shard_indices(len(selected), shard_index, shard_count)
        selected = [selected[i] for i in window]
    return selected
