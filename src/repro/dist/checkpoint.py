"""Per-point checkpoint files for interruptible sweeps.

A sweep executed with a checkpoint directory writes one JSON file per
completed grid point (``point-000042.json``).  Each file carries the point's
results (via :meth:`RunResult.to_dict`, which round-trips bit-exactly), its
axis values and baked label, and a **fingerprint** of the full-grid scenario
spec.  Resuming re-runs only the points without a matching file; the
fingerprint guards against accidentally resuming a directory that belongs to
a different scenario, which would otherwise silently merge unrelated
results.

Files are written atomically (temp file + fsync + rename + directory fsync,
:func:`~repro.dist.durability.atomic_write_text`) so a run killed mid-write
— or a power loss right after — never leaves a truncated checkpoint behind:
at worst the interrupted point re-runs on resume.  ``durable=False`` skips
the fsyncs for tests and throwaway runs, keeping only rename atomicity.
A checkpoint that *is* corrupt anyway (torn by the
filesystem, truncated by an external copy) is quarantined on load: the file
is renamed to ``*.corrupt`` and the point simply re-runs and rewrites it
cleanly, instead of the resume failing — or silently skipping the same
broken file — forever.  Stale ``*.json.tmp`` leftovers from a killed writer
are swept on load for the same reason.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Dict, List, Union

from ..core.errors import ConfigurationError
from ..spec.scenario import ScenarioSpec
from .durability import atomic_write_text

__all__ = ["CHECKPOINT_SCHEMA", "spec_fingerprint", "CheckpointStore"]

logger = logging.getLogger("repro.dist")

#: Version written into checkpoint files; bumped on breaking payload changes.
CHECKPOINT_SCHEMA = 1

PathLike = Union[str, Path]


def spec_fingerprint(spec: ScenarioSpec) -> str:
    """A stable content hash of the full-grid scenario spec.

    Key-sorted canonical JSON hashed with SHA-256: two specs fingerprint
    equal iff their serialised forms are identical, so a checkpoint
    directory can only be resumed by the exact scenario that produced it.
    """
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointStore:
    """One checkpoint directory bound to one scenario.

    Parameters
    ----------
    directory:
        Where the per-point files live; created (with parents) on demand.
    spec:
        The full-grid scenario; its fingerprint is stamped into every file
        and verified on load.
    durable:
        When ``True`` (the default) every save fsyncs the temp file before
        the atomic rename and the directory entry after it, so a completed
        point's checkpoint survives a power loss, not just a process kill.
        ``False`` keeps only the rename atomicity (tests, throwaway runs).
    """

    def __init__(
        self, directory: PathLike, spec: ScenarioSpec, durable: bool = True
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = spec_fingerprint(spec)
        self.durable = durable
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, index: int) -> Path:
        """The checkpoint file for one grid point."""
        return self.directory / f"point-{index:06d}.json"

    def save(self, payload: Dict[str, object]) -> Path:
        """Atomically (and, when ``durable``, crash-durably) write one point.

        ``payload`` is the executor's wire format (index, values, label,
        spec, elapsed_seconds, results); the store adds the schema version
        and the scenario fingerprint.  The write is temp file + fsync +
        atomic rename + directory fsync, so the destination only ever holds
        a complete record and the rename itself survives a crash; on any
        failure the temp file is removed and the point simply re-runs.
        """
        index = payload["index"]
        record = {
            "schema_version": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            **payload,
        }
        return atomic_write_text(
            self.path_for(int(index)), json.dumps(record), durable=self.durable
        )

    def discard_stale_temps(self) -> List[Path]:
        """Delete leftover ``*.json.tmp`` files from a killed writer.

        These are writes that never reached their atomic rename; the points
        they belonged to have no checkpoint and re-run on resume, so the
        temps are pure litter (and would otherwise accumulate forever).
        Returns the removed paths.
        """
        removed: List[Path] = []
        for temporary in sorted(self.directory.glob("point-*.json.tmp")):
            try:
                temporary.unlink()
            except OSError:  # pragma: no cover - racing writer keeps its file
                continue
            removed.append(temporary)
        if removed:
            logger.warning(
                "removed %d stale checkpoint temp file(s) from %s",
                len(removed),
                self.directory,
            )
        return removed

    def load(self) -> Dict[int, Dict[str, object]]:
        """All checkpointed point payloads, keyed by grid index.

        Raises :class:`ConfigurationError` when the directory holds
        checkpoints of a *different* scenario (fingerprint mismatch) or of a
        newer checkpoint schema.  A corrupt (e.g. truncated) file is
        **quarantined** instead: renamed to ``<name>.corrupt`` with a
        warning on the ``repro.dist`` logger, so the point re-runs and
        rewrites its checkpoint cleanly — a torn write costs one point, not
        the resume.
        """
        completed: Dict[int, Dict[str, object]] = {}
        self.discard_stale_temps()
        for path in sorted(self.directory.glob("point-*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                quarantine = path.with_name(path.name + ".corrupt")
                # lint: disable=DUR001 -- moving an already-corrupt file
                # aside; losing the rename in a crash just re-quarantines it
                os.replace(path, quarantine)
                logger.warning(
                    "checkpoint file %s is corrupt (%s); quarantined to %s — "
                    "the point will re-run",
                    path,
                    error,
                    quarantine,
                )
                continue
            version = record.get("schema_version", 1)
            if not isinstance(version, int) or version > CHECKPOINT_SCHEMA:
                raise ConfigurationError(
                    f"checkpoint file {path} was written by schema "
                    f"{version!r}; this build reads up to {CHECKPOINT_SCHEMA}"
                )
            if record.get("fingerprint") != self.fingerprint:
                raise ConfigurationError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different scenario (spec fingerprint mismatch); point it "
                    "at a fresh directory or delete the stale checkpoints"
                )
            completed[int(record["index"])] = record
        return completed
