"""Scaling-law fits used to compare measured curves against asymptotics.

The paper's claims are asymptotic (``O(log n)`` rounds, ``O(n·log log n)``
transmissions, ``Ω(n·log n / log d)`` for the one-call model).  At the sizes a
simulation can reach, constants matter, so the experiments do not compare raw
numbers against the bounds; instead they fit each measured curve against the
candidate growth laws and report which law explains the data best.  A curve
whose per-node transmission count fits ``a + b·log log n`` with small residual
while fitting ``a + b·log n`` poorly reproduces the paper's "O(n log log n)"
shape; the reverse identifies ``Θ(n·log n)`` behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["ScalingFit", "fit_scaling_law", "compare_scaling_laws", "GROWTH_LAWS"]


def _log(n: float) -> float:
    return math.log2(max(2.0, n))


def _loglog(n: float) -> float:
    return math.log2(max(2.0, _log(n)))


#: The candidate growth laws, mapping a name to ``g(n)`` such that the model
#: is ``y ≈ a + b·g(n)``.
GROWTH_LAWS: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 0.0,
    "loglog": _loglog,
    "log": _log,
    "sqrt-log": lambda n: math.sqrt(_log(n)),
    "linear": lambda n: float(n),
}


@dataclass(frozen=True)
class ScalingFit:
    """Result of fitting ``y ≈ a + b·g(n)`` for one growth law."""

    law: str
    intercept: float
    slope: float
    residual_rms: float
    r_squared: float

    def predict(self, n: float) -> float:
        """The fitted value at ``n``."""
        return self.intercept + self.slope * GROWTH_LAWS[self.law](n)


def fit_scaling_law(
    sizes: Sequence[float], values: Sequence[float], law: str
) -> ScalingFit:
    """Least-squares fit of ``values ≈ a + b·g(sizes)`` for one growth law."""
    if law not in GROWTH_LAWS:
        raise ConfigurationError(
            f"unknown growth law {law!r}; available: {sorted(GROWTH_LAWS)}"
        )
    if len(sizes) != len(values):
        raise ConfigurationError("sizes and values must have equal length")
    if len(sizes) < 2:
        raise ConfigurationError("need at least two points to fit a scaling law")

    transform = GROWTH_LAWS[law]
    x = np.array([transform(float(n)) for n in sizes], dtype=float)
    y = np.array([float(v) for v in values], dtype=float)

    if np.allclose(x, x[0]):
        # Constant law (or degenerate data): the best fit is the mean.
        intercept = float(np.mean(y))
        slope = 0.0
        predictions = np.full_like(y, intercept)
    else:
        design = np.column_stack([np.ones_like(x), x])
        coefficients, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
        intercept, slope = float(coefficients[0]), float(coefficients[1])
        predictions = design @ coefficients

    residuals = y - predictions
    rms = float(np.sqrt(np.mean(residuals**2)))
    total_variance = float(np.sum((y - np.mean(y)) ** 2))
    if total_variance == 0:
        r_squared = 1.0
    else:
        r_squared = 1.0 - float(np.sum(residuals**2)) / total_variance
    return ScalingFit(
        law=law, intercept=intercept, slope=slope, residual_rms=rms, r_squared=r_squared
    )


def compare_scaling_laws(
    sizes: Sequence[float],
    values: Sequence[float],
    laws: Sequence[str] = ("constant", "loglog", "log"),
) -> List[ScalingFit]:
    """Fit several growth laws and return them sorted by residual (best first)."""
    fits = [fit_scaling_law(sizes, values, law) for law in laws]
    return sorted(fits, key=lambda fit: fit.residual_rms)


def best_scaling_law(
    sizes: Sequence[float],
    values: Sequence[float],
    laws: Sequence[str] = ("constant", "loglog", "log"),
) -> ScalingFit:
    """The growth law with the smallest residual for the given data."""
    return compare_scaling_laws(sizes, values, laws)[0]
