"""Closed-form bounds and constants from the paper and related work.

These functions turn the asymptotic statements of the paper into concrete
numbers for a given ``(n, d)`` so that experiments can plot measured values
against the predicted shapes:

* :func:`lower_bound_transmissions` — Theorem 1's ``Ω(n·log n / log d)``
  lower bound for strictly oblivious one-call algorithms (reported with unit
  constant; the paper's own constant is far smaller, so any measurement that
  scales like the bound dominates it).
* :func:`algorithm1_transmission_bound` — the ``O(n·log log n)`` upper bound
  with the explicit constants of the Algorithm 1 schedule.
* :func:`push_transmission_estimate` — the classical ``Θ(n·log n)`` cost of
  the push protocol.
* :func:`fountoulakis_panagiotou_constant` — the constant ``C_d`` such that
  plain push on a random d-regular graph needs ``(1+o(1))·C_d·ln n`` rounds.
* :func:`karp_phase_estimates` — the push/pull phase behaviour on complete
  graphs described by Karp et al. (used by experiment E5).
"""

from __future__ import annotations

import math

from ..core.errors import ConfigurationError

__all__ = [
    "lower_bound_transmissions",
    "algorithm1_transmission_bound",
    "push_transmission_estimate",
    "push_round_estimate",
    "fountoulakis_panagiotou_constant",
    "pull_endgame_rounds",
    "karp_phase_estimates",
]


def _check_n_d(n: int, d: int) -> None:
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if d < 2:
        raise ConfigurationError(f"d must be >= 2, got {d}")


def lower_bound_transmissions(n: int, d: int, constant: float = 1.0) -> float:
    """Theorem 1 lower bound ``constant · n·log₂ n / log₂ d``.

    Any strictly oblivious, distributed, O(log n)-time Monte Carlo algorithm
    in the standard (one-call) random phone call model needs at least this
    many transmissions (up to the constant) on a random d-regular graph.
    """
    _check_n_d(n, d)
    return constant * n * math.log2(n) / math.log2(d)


def algorithm1_transmission_bound(n: int, alpha: float = 1.0, fanout: int = 4) -> float:
    """Explicit-constant version of the paper's ``O(n·log log n)`` upper bound.

    Phase 1 contributes ``fanout·n`` (each node transmits once over ``fanout``
    channels), Phase 2 contributes ``fanout·n·⌈α·log log n⌉`` (every node
    transmits in every Phase-2 round), Phase 3 contributes ``fanout·n`` (one
    pull round answers all ``fanout·n`` incoming calls), and Phase 4 is
    ``o(n)``.  The result is an upper-envelope estimate of the full-schedule
    transmission count, not a high-probability bound.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    log_n = math.log2(n)
    loglog_n = max(1.0, math.log2(max(2.0, log_n)))
    phase1 = fanout * n
    phase2 = fanout * n * math.ceil(alpha * loglog_n)
    phase3 = fanout * n
    return float(phase1 + phase2 + phase3)


def push_round_estimate(n: int) -> float:
    """Rounds the classical push protocol needs on well-connected graphs.

    Frieze & Grimmett / Pittel: ``log₂ n + ln n + O(1)`` on the complete
    graph; random regular graphs with moderate degree behave within a small
    constant factor of this.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    return math.log2(n) + math.log(n)


def push_transmission_estimate(n: int) -> float:
    """The ``Θ(n·log n)`` transmission cost of push run to completion.

    During the shrinking phase (roughly the final ``ln n`` rounds) essentially
    all ``n`` nodes transmit every round, so ``n·ln n`` dominates.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    return n * math.log(n)


def fountoulakis_panagiotou_constant(d: int) -> float:
    """The constant ``C_d`` of Fountoulakis & Panagiotou (RANDOM 2010).

    Plain push on a random d-regular graph broadcasts within
    ``(1 + o(1))·C_d·ln n`` rounds where

        C_d = 1 / ln(2·(1 − 1/d)) − 1 / (d·ln(1 − 1/d)).
    """
    if d < 2:
        raise ConfigurationError(f"d must be >= 2, got {d}")
    first = 1.0 / math.log(2.0 * (1.0 - 1.0 / d))
    second = 1.0 / (d * math.log(1.0 - 1.0 / d))
    return first - second


def pull_endgame_rounds(n: int, d: int) -> float:
    """Rounds a one-call pull endgame needs to catch the last node, ``≈ log_d n``.

    This is the source of the ``log n / log d`` factor in the lower bound: an
    uninformed node whose neighbours are all informed still needs a geometric
    number of rounds (success probability ``1 − 1/d`` per round is optimistic;
    ``log_d n`` rounds are required before the *last* of ``Θ(n)`` such nodes
    succeeds with high probability).
    """
    _check_n_d(n, d)
    return math.log(n) / math.log(d)


def karp_phase_estimates(n: int) -> dict:
    """Karp et al.'s complete-graph phase picture, used by experiment E5.

    Returns the estimated number of rounds until half the nodes are informed
    (``log₂ n``), the extra rounds pull needs to finish from there
    (``O(log log n)``), and the extra rounds push needs (``ln n``).
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    log_n = math.log2(n)
    return {
        "rounds_to_half": log_n,
        "pull_tail_rounds": max(1.0, math.log2(max(2.0, math.log2(n)))),
        "push_tail_rounds": math.log(n),
    }
