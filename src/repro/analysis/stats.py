"""Small statistics helpers shared by experiments and tests.

Nothing here is clever; the point is to keep confidence-interval and summary
logic in one tested place instead of re-deriving it in every experiment
module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.errors import ConfigurationError

__all__ = ["mean", "std", "median", "percentile", "confidence_interval", "Summary"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Population standard deviation; raises on empty input."""
    if not values:
        raise ConfigurationError("std of empty sequence")
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    """Median (average of middle two for even lengths)."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in ``[0, 100]``."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    weight = position - low
    lo, hi = float(ordered[low]), float(ordered[high])
    value = lo * (1.0 - weight) + hi * weight
    # The products can underflow (denormals) or overflow (huge spreads) past
    # the bracketing order statistics; the true percentile lies between them.
    return min(max(value, lo), hi)


def confidence_interval(values: Sequence[float], z: float = 1.96) -> tuple:
    """Normal-approximation confidence interval for the mean.

    Returns ``(lower, upper)``.  ``z = 1.96`` gives the familiar 95% interval;
    for the small repetition counts used in the experiments this is an
    approximation, which is fine for the qualitative comparisons made here.
    """
    if not values:
        raise ConfigurationError("confidence interval of empty sequence")
    centre = mean(values)
    if len(values) == 1:
        return (centre, centre)
    spread = std(values) / math.sqrt(len(values))
    return (centre - z * spread, centre + z * spread)


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and range of a sample in one compact record."""

    mean: float
    std: float
    median: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ConfigurationError("summary of empty sequence")
        return cls(
            mean=mean(values),
            std=std(values),
            median=median(values),
            minimum=float(min(values)),
            maximum=float(max(values)),
            count=len(values),
        )
