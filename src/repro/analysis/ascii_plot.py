"""Terminal-friendly ASCII plots for simulation curves.

The experiments live in a terminal/pytest world, so instead of depending on a
plotting stack the library renders small ASCII charts: the informed-nodes
trajectory of a broadcast, uninformed-decay curves on a log scale, and simple
multi-series comparisons.  The plots are intentionally coarse — their job is
to make the *shape* (exponential growth, doubly-exponential decay, phase
boundaries) visible in a README, an example script, or a test log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..core.errors import ConfigurationError

__all__ = ["ascii_series", "ascii_informed_curve", "ascii_multi_series"]


def _scale_to_rows(values: Sequence[float], height: int, log_scale: bool) -> List[int]:
    """Map values onto integer rows ``0 .. height-1`` (0 = bottom)."""
    transformed = []
    for value in values:
        if log_scale:
            transformed.append(math.log10(max(value, 1e-12)))
        else:
            transformed.append(float(value))
    low, high = min(transformed), max(transformed)
    if math.isclose(low, high):
        return [0 for _ in transformed]
    return [
        int(round((value - low) / (high - low) * (height - 1))) for value in transformed
    ]


def ascii_series(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: str = "",
    log_scale: bool = False,
    marker: str = "*",
) -> str:
    """Render one series as an ASCII chart.

    Values are resampled to at most ``width`` columns (taking the value at the
    nearest index), then scaled into ``height`` text rows.  The x axis is the
    series index (round number for broadcast curves).
    """
    if not values:
        raise ConfigurationError("cannot plot an empty series")
    if width < 2 or height < 2:
        raise ConfigurationError("plot dimensions must be at least 2x2")

    count = len(values)
    columns = min(width, count)
    sampled = [values[int(i * (count - 1) / max(1, columns - 1))] for i in range(columns)]
    rows = _scale_to_rows(sampled, height, log_scale)

    grid = [[" "] * columns for _ in range(height)]
    for x, row in enumerate(rows):
        grid[height - 1 - row][x] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{max(values):g}"
    bottom_label = f"{min(values):g}"
    for index, row_cells in enumerate(grid):
        prefix = top_label if index == 0 else (bottom_label if index == height - 1 else "")
        lines.append(f"{prefix:>10} |" + "".join(row_cells))
    lines.append(" " * 11 + "+" + "-" * columns)
    lines.append(" " * 12 + f"1 .. {count} (x = series index)")
    return "\n".join(lines)


def ascii_informed_curve(
    informed_counts: Sequence[int],
    n: int,
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Plot an informed-nodes trajectory together with its uninformed decay.

    The top chart shows the informed count per round (linear scale); the
    bottom chart shows the number of *uninformed* nodes on a log scale, which
    is where Phase 2's geometric decay and the pull phase's collapse are
    visible.
    """
    if not informed_counts:
        raise ConfigurationError("cannot plot an empty trajectory")
    if any(count < 0 or count > n for count in informed_counts):
        raise ConfigurationError("informed counts must lie in [0, n]")
    caption = title if title is not None else f"informed nodes per round (n = {n})"
    informed_plot = ascii_series(
        list(informed_counts), width=width, height=height, title=caption
    )
    uninformed = [max(n - count, 0) for count in informed_counts]
    # Clamp zeros for the log plot; the final collapse still reads clearly.
    decay_plot = ascii_series(
        [max(value, 0.5) for value in uninformed],
        width=width,
        height=height,
        title="uninformed nodes per round (log scale)",
        log_scale=True,
        marker="o",
    )
    return informed_plot + "\n\n" + decay_plot


def ascii_multi_series(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
    log_scale: bool = False,
) -> str:
    """Overlay several series in one chart, one marker character per series."""
    if not series:
        raise ConfigurationError("cannot plot an empty set of series")
    markers = "*o+x#@%&"
    if len(series) > len(markers):
        raise ConfigurationError(f"at most {len(markers)} series are supported")

    longest = max(len(values) for values in series.values())
    if longest == 0:
        raise ConfigurationError("all series are empty")
    columns = min(width, longest)

    all_values: List[float] = []
    for values in series.values():
        all_values.extend(float(v) for v in values)
    grid = [[" "] * columns for _ in range(height)]

    for marker, (name, values) in zip(markers, series.items()):
        if not values:
            continue
        count = len(values)
        sampled = [
            values[int(i * (count - 1) / max(1, columns - 1))] for i in range(columns)
        ]
        # Scale against the global range so the series are comparable.
        combined = list(sampled) + [min(all_values), max(all_values)]
        rows = _scale_to_rows(combined, height, log_scale)[: len(sampled)]
        for x, row in enumerate(rows):
            grid[height - 1 - row][x] = marker

    lines = []
    if title:
        lines.append(title)
    for row_cells in grid:
        lines.append("  |" + "".join(row_cells))
    lines.append("  +" + "-" * columns)
    legend = ", ".join(
        f"{marker} = {name}" for marker, name in zip(markers, series.keys())
    )
    lines.append("  " + legend)
    return "\n".join(lines)
