"""Theory-side helpers: closed-form bounds, scaling-law fits, statistics, plots."""

from .ascii_plot import ascii_informed_curve, ascii_multi_series, ascii_series
from .bounds import (
    algorithm1_transmission_bound,
    fountoulakis_panagiotou_constant,
    karp_phase_estimates,
    lower_bound_transmissions,
    pull_endgame_rounds,
    push_round_estimate,
    push_transmission_estimate,
)
from .scaling import (
    GROWTH_LAWS,
    ScalingFit,
    best_scaling_law,
    compare_scaling_laws,
    fit_scaling_law,
)
from .stats import Summary, confidence_interval, mean, median, percentile, std

__all__ = [
    "lower_bound_transmissions",
    "algorithm1_transmission_bound",
    "push_transmission_estimate",
    "push_round_estimate",
    "fountoulakis_panagiotou_constant",
    "pull_endgame_rounds",
    "karp_phase_estimates",
    "ScalingFit",
    "GROWTH_LAWS",
    "fit_scaling_law",
    "compare_scaling_laws",
    "best_scaling_law",
    "Summary",
    "mean",
    "std",
    "median",
    "percentile",
    "confidence_interval",
    "ascii_series",
    "ascii_informed_curve",
    "ascii_multi_series",
]
