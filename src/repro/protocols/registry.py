"""A small factory/registry for protocols, used by the CLI and sweeps.

Experiments and the command line refer to protocols by short names
(``"push"``, ``"algorithm1"``, ...); the registry maps those names to
constructor callables so that sweep definitions remain declarative strings
rather than imports.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.errors import ConfigurationError
from .algorithm1 import Algorithm1
from .algorithm2 import Algorithm2
from .base import BroadcastProtocol
from .median_counter import MedianCounterProtocol
from .pull import PullProtocol
from .push import PushProtocol
from .push_pull import PushPullProtocol
from .quasirandom import QuasirandomPushProtocol
from .sequential import SequentialAlgorithm1

__all__ = ["PROTOCOL_BUILDERS", "build_protocol", "available_protocols"]


ProtocolBuilder = Callable[..., BroadcastProtocol]


PROTOCOL_BUILDERS: Dict[str, ProtocolBuilder] = {
    "push": PushProtocol,
    "pull": PullProtocol,
    "push-pull": PushPullProtocol,
    "push-pull-4": lambda n_estimate, **kw: PushPullProtocol(n_estimate, fanout=4, **kw),
    "algorithm1": Algorithm1,
    "algorithm2": Algorithm2,
    "algorithm1-sequential": SequentialAlgorithm1,
    "quasirandom-push": QuasirandomPushProtocol,
    "median-counter": MedianCounterProtocol,
}


def available_protocols() -> list:
    """The sorted list of registered protocol names."""
    return sorted(PROTOCOL_BUILDERS)


def build_protocol(name: str, n_estimate: int, **kwargs) -> BroadcastProtocol:
    """Instantiate the protocol registered under ``name``.

    Parameters beyond ``n_estimate`` are forwarded to the protocol
    constructor, so e.g. ``build_protocol("algorithm1", 4096, alpha=1.5)``
    works as expected.
    """
    try:
        builder = PROTOCOL_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        ) from None
    return builder(n_estimate, **kwargs)
