"""The protocol registry, used by the CLI, sweeps, and scenario specs.

Experiments and the command line refer to protocols by short names
(``"push"``, ``"algorithm1"``, ...); the registry maps those names to
constructor callables so that sweep definitions remain declarative strings
rather than imports.  It is an instance of the shared
:class:`repro.core.registry.Registry` mechanism, so scenario specs can
validate protocol kwargs up front and the CLI can render per-protocol help.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, Mapping

from ..core.registry import Registry
from .algorithm1 import Algorithm1
from .algorithm2 import Algorithm2
from .base import BroadcastProtocol
from .median_counter import MedianCounterProtocol
from .pull import PullProtocol
from .push import PushProtocol
from .push_pull import PushPullProtocol
from .quasirandom import QuasirandomPushProtocol
from .sequential import SequentialAlgorithm1

__all__ = [
    "PROTOCOLS",
    "PROTOCOL_BUILDERS",
    "build_protocol",
    "available_protocols",
]


ProtocolBuilder = Callable[..., BroadcastProtocol]


def _push_pull_4(
    n_estimate: int,
    extra_loglog_rounds: float = 4.0,
    horizon_override=None,
) -> PushPullProtocol:
    # Explicit signature (no **kwargs) so registry kwarg validation stays
    # eager and 'fanout' — fixed at 4 by this preset — is rejected up front.
    return PushPullProtocol(
        n_estimate,
        fanout=4,
        extra_loglog_rounds=extra_loglog_rounds,
        horizon_override=horizon_override,
    )


#: The shared registry instance for broadcast protocols.
PROTOCOLS = Registry("protocol")

PROTOCOLS.register(
    "push",
    PushProtocol,
    summary="classic push: every informed node calls one random neighbour",
    params={
        "fanout": "channels opened per round (default 1)",
        "horizon_factor": "schedule length as a multiple of log2 n (default 4)",
        "horizon_override": "explicit round horizon (overrides the factor)",
    },
)
PROTOCOLS.register(
    "pull",
    PullProtocol,
    summary="classic pull: every node calls out and asks for the message",
    params={
        "fanout": "channels opened per round (default 1)",
        "horizon_factor": "schedule length as a multiple of log2 n (default 6)",
        "horizon_override": "explicit round horizon (overrides the factor)",
    },
)
PROTOCOLS.register(
    "push-pull",
    PushPullProtocol,
    summary="push and pull on every opened channel (Karp et al. baseline)",
    params={
        "fanout": "channels opened per round (default 1)",
        "extra_loglog_rounds": "tail length as a multiple of log log n (default 4)",
        "horizon_override": "explicit round horizon (overrides the factor)",
    },
)
PROTOCOLS.register(
    "push-pull-4",
    _push_pull_4,
    summary="push&pull preset with fanout 4 (the paper's channel budget)",
    params={
        "extra_loglog_rounds": "tail length as a multiple of log log n (default 4)",
        "horizon_override": "explicit round horizon (overrides the factor)",
    },
)
PROTOCOLS.register(
    "algorithm1",
    Algorithm1,
    summary="the paper's Algorithm 1: 4-phase schedule for d = O(sqrt(log n))",
    params={
        "alpha": "phase-length multiplier (default 1.0)",
        "fanout": "distinct neighbours called per round (default 4)",
        "schedule_override": "explicit PhaseSchedule (library use only)",
    },
)
PROTOCOLS.register(
    "algorithm2",
    Algorithm2,
    summary="the paper's Algorithm 2: phase-masked pushes + answer-all pull tail",
    params={
        "alpha": "phase-length multiplier (default 1.0)",
        "fanout": "distinct neighbours called per round (default 4)",
        "schedule_override": "explicit PhaseSchedule (library use only)",
    },
)
PROTOCOLS.register(
    "algorithm1-sequential",
    SequentialAlgorithm1,
    summary="memory variant: one call per round, avoiding recent contacts",
    params={
        "alpha": "phase-length multiplier (default 1.0)",
        "memory_window": "rounds a contact is remembered (default 3)",
        "stretch": "schedule stretch factor (default: fanout of Algorithm 1)",
    },
)
PROTOCOLS.register(
    "quasirandom-push",
    QuasirandomPushProtocol,
    summary="quasirandom rumor spreading: cyclic neighbour list, random start",
    params={
        "horizon_factor": "schedule length as a multiple of log2 n (default 6)",
        "horizon_override": "explicit round horizon (overrides the factor)",
    },
)
PROTOCOLS.register(
    "median-counter",
    MedianCounterProtocol,
    summary="median-counter rule: phase-state exchange with termination counters",
    params={
        "fanout": "channels opened per round (default 1)",
        "counter_rounds_factor": "counter threshold multiplier (default 2.0)",
        "state_c_factor": "state-C rounds multiplier (default 2.0)",
        "horizon_factor": "schedule length as a multiple of log2 n (default 6)",
        "horizon_override": "explicit round horizon (overrides the factor)",
    },
)


#: Legacy read-only view for callers that index builders directly.  Writes
#: raise (register new protocols via ``PROTOCOLS.register`` instead — a write
#: here would no longer be seen by ``build_protocol``/``available_protocols``).
PROTOCOL_BUILDERS: Mapping[str, ProtocolBuilder] = MappingProxyType(
    {entry.name: entry.builder for entry in PROTOCOLS}
)


def available_protocols() -> list:
    """The sorted list of registered protocol names."""
    return PROTOCOLS.names()


def build_protocol(name: str, n_estimate: int, **kwargs) -> BroadcastProtocol:
    """Instantiate the protocol registered under ``name``.

    Parameters beyond ``n_estimate`` are forwarded to the protocol
    constructor, so e.g. ``build_protocol("algorithm1", 4096, alpha=1.5)``
    works as expected.  Unknown names and unknown kwargs raise
    :class:`ConfigurationError` naming the offending id or key.
    """
    return PROTOCOLS.build(name, n_estimate, **kwargs)
