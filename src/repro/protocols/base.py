"""The protocol interface driven by the round engine.

A :class:`BroadcastProtocol` encapsulates every *decision* a node makes in the
random phone call model — how many distinct neighbours to call, whether to
push or pull the message this round, and when to stop — while the engine owns
the mechanics (channel bookkeeping, delivery, failure injection, metrics).

All protocols in this package are *address-oblivious* in the paper's sense:
their decisions depend only on the current round number and on when the node
itself became informed, never on the identity of the node at the other end of
a channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Set

import numpy as np

from ..core.node import NodeState, StateTable, VectorState
from ..core.rng import RandomSource

__all__ = ["BroadcastProtocol"]


class BroadcastProtocol(ABC):
    """Decision logic of one broadcast protocol for one message.

    A protocol instance is created per run (it may hold per-run state such as
    the quasirandom pointer table) and is parameterised by the network size
    estimate ``n_estimate`` the nodes are assumed to share.  The engine calls
    the hooks in the order documented on each method.
    """

    #: Human-readable protocol name used in results and tables.
    name: str = "abstract"

    #: Number of most recent partners each node remembers and avoids when
    #: choosing its next call target (0 disables the memory mechanism).  Only
    #: the sequentialised variant of the model uses a non-zero window.
    memory_window: int = 0

    #: Set to True by protocols that need the per-channel exchange hook
    #: (:meth:`on_channel_exchange`).  The engine skips the hook entirely for
    #: protocols that leave this False, so the common case pays nothing.
    needs_exchange_hook: bool = False

    #: Opt-in capability flag for the bulk NumPy engine.  A protocol that sets
    #: this True promises that (a) the three ``vector_*`` decision hooks below
    #: are implemented and agree node-for-node with ``fanout`` / ``wants_push``
    #: / ``wants_pull``, (b) its fanout is uniform across nodes within a
    #: round, (c) it does not use the contact-memory mechanism
    #: (``memory_window == 0``), and a custom ``select_call_targets`` has a
    #: ``vector_call_targets`` counterpart (flagged via
    #: ``has_custom_vector_targets``), and
    #: (d) it relies on none of the :class:`StateTable`-based lifecycle hooks
    #: the bulk engine never calls: ``on_round_start`` and ``finished`` must
    #: keep their defaults, and an ``on_round_committed`` override needs a
    #: ``vector_on_round_committed`` counterpart.  The dispatcher
    #: (:func:`repro.core.engine_vectorized.vectorization_unsupported_reason`)
    #: enforces (c) and (d) and falls back to the scalar engine when violated.
    supports_vectorized: bool = False

    # -- scheduling -----------------------------------------------------------

    @abstractmethod
    def horizon(self) -> int:
        """Total number of rounds the protocol runs for (its Monte Carlo budget)."""

    def phase_label(self, round_index: int) -> str:
        """Name of the phase ``round_index`` belongs to (for metrics); may be empty."""
        return ""

    # -- per-round gating -------------------------------------------------------

    @abstractmethod
    def push_round(self, round_index: int) -> bool:
        """True if *any* node may push during ``round_index``.

        Used by the engine as a coarse filter; per-node refinement happens in
        :meth:`wants_push`.
        """

    @abstractmethod
    def pull_round(self, round_index: int) -> bool:
        """True if *any* node may pull during ``round_index``.

        When False the engine skips sampling calls for nodes that will not
        push, because those channels cannot carry information this round.
        """

    # -- per-node decisions -------------------------------------------------------

    @abstractmethod
    def fanout(self, state: NodeState, round_index: int) -> int:
        """Number of distinct neighbours ``state``'s node calls this round."""

    @abstractmethod
    def wants_push(self, state: NodeState, round_index: int) -> bool:
        """True if the node sends the message over its *outgoing* channels."""

    @abstractmethod
    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        """True if the node sends the message over its *incoming* channels."""

    # -- neighbour selection -------------------------------------------------------

    def select_call_targets(
        self,
        state: NodeState,
        neighbours: List[int],
        round_index: int,
        rng: RandomSource,
    ) -> List[int]:
        """Choose which neighbours the node calls this round.

        The default implementation samples ``fanout`` distinct entries of the
        adjacency list uniformly at random (repeated adjacency entries model
        parallel edges of the configuration model, so they legitimately weight
        the draw).  Protocols with a memory window additionally avoid the most
        recently contacted partners, falling back to the full neighbourhood if
        the restriction would leave no candidates.
        """
        k = self.fanout(state, round_index)
        if k <= 0 or not neighbours:
            return []
        candidates = neighbours
        if self.memory_window > 0 and state.memory:
            remembered = set(state.memory[-self.memory_window :])
            filtered = [v for v in neighbours if v not in remembered]
            if filtered:
                candidates = filtered
        targets = rng.sample_distinct(candidates, k)
        if self.memory_window > 0:
            for target in targets:
                state.remember_partner(target, self.memory_window)
        return targets

    # -- bulk (vectorized) hooks ------------------------------------------------

    def vector_caller_mask(self, round_index: int, state: VectorState) -> Optional[np.ndarray]:
        """Mask of nodes that open channels during ``round_index``, or ``None``.

        ``None`` (the default) means every node opens ``min(fanout, degree)``
        channels, which is the full phone-call model and what the engines'
        arithmetic channel accounting assumes.  Protocols whose *uninformed*
        nodes stay silent (scalar ``fanout`` returns 0 for them — e.g. the
        quasirandom protocol) return the mask of calling nodes instead so the
        bulk engines charge channels identically to the scalar engine.
        """
        return None

    def vector_call_targets(
        self,
        round_index: int,
        state: VectorState,
        samplers: np.ndarray,
        generator: np.random.Generator,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        row: Optional[int] = None,
    ) -> np.ndarray:
        """Bulk counterpart of a custom :meth:`select_call_targets` (fanout 1).

        Protocols whose neighbour choice is not a uniform stub draw (e.g. the
        quasirandom cyclic-list pointer) override this to return, for each
        node in ``samplers``, the callee node id.  The engine provides the
        graph's CSR view (``indices[indptr[v]:indptr[v+1]]`` lists ``v``'s
        stubs in :meth:`repro.graphs.base.Graph.neighbors` order) and the
        per-replication ``generator`` for any randomness; ``row`` is the
        replication index when running under the batched engine (``None`` for
        a single run) so per-node protocol state can be kept per replication.
        Only consulted when :attr:`has_custom_vector_targets` is True, and
        only for protocols with uniform fanout 1.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the bulk target hook"
        )

    #: True if the protocol overrides :meth:`vector_call_targets`; cheap class
    #: check so engines skip the hook entirely in the common uniform case.
    has_custom_vector_targets: bool = False

    #: Opt-in for the engines' sorted informed-index tracking
    #: (:meth:`repro.core.node.VectorState.enable_index_tracking`).  Protocols
    #: that set this True may implement :meth:`vector_push_samplers` /
    #: :meth:`vector_caller_pool` in terms of ``state.informed_flat`` /
    #: ``state.newly_flat``, letting push-only rounds sample in O(informed)
    #: instead of scanning every node's flag.
    uses_index_pools: bool = False

    def vector_push_samplers(
        self, round_index: int, state: VectorState
    ) -> Optional[np.ndarray]:
        """Sorted flat indices of this round's pushers, or ``None``.

        Index-vector counterpart of :meth:`vector_wants_push`, consulted only
        in push-only rounds of protocols with :attr:`uses_index_pools`.  The
        returned array must equal
        ``np.flatnonzero(vector_wants_push(...).reshape(-1))`` — same set,
        ascending order — so the draw sequence is unchanged whichever
        representation the engine uses.  Protocols typically return a view of
        an engine-maintained set (``state.informed_flat``,
        ``state.newly_flat``) or of their own sorted index table; ``None``
        falls back to the boolean-mask path.  A subclass that overrides
        :meth:`vector_wants_push` must override this consistently (or return
        ``None``).
        """
        return None

    def vector_caller_pool(
        self, round_index: int, state: VectorState
    ) -> Optional[np.ndarray]:
        """Sorted flat indices of the calling nodes, or ``None``.

        Index-vector counterpart of :meth:`vector_caller_mask` for channel
        accounting: when a protocol's callers are exactly an engine-maintained
        index set (e.g. the quasirandom protocol's informed nodes), returning
        it lets the engines charge channels with an O(callers) segment sum
        instead of an O(R·n) mask reduction.  ``None`` (the default) keeps the
        mask path.  Must describe the same set as :meth:`vector_caller_mask`.
        """
        return None

    def vector_compact_rows(self, keep: np.ndarray, n: int, old_batch: int) -> None:
        """Remap per-replication protocol state onto the kept batch rows.

        Called by the batched engine when it compacts completed replications
        out of its ``(R, n)`` state: ``keep`` holds the surviving row indices
        (ascending) of the previous ``old_batch``-row layout, and row
        ``keep[i]`` becomes row ``i``.  Protocols that hold per-replication
        state outside the engine-owned :class:`VectorState` — pointer tables
        shaped ``(R, n)``, per-row index lists, etc. — must drop the dead
        rows here (2-D tables: ``table[keep]``; sorted flat index vectors:
        :meth:`VectorState.compact_flat_indices`).  Stateless protocols
        inherit the no-op.  The hook is only ever invoked between rounds,
        after the round's deliveries have committed.
        """

    #: Opt-in for the vectorized engine's dynamic-membership (churn) mode.  A
    #: protocol that sets this True promises its decisions remain well-defined
    #: when nodes depart or join mid-broadcast: departed nodes are tombstoned
    #: (their flags cleared, their ids retired) and joiners extend the id
    #: space, so per-node protocol state must be index-positional and survive
    #: :meth:`vector_remove_nodes` / :meth:`vector_compact_nodes`.  Stateless
    #: protocols (push, pull, push-pull) can simply flip the flag; protocols
    #: holding their own index pools (Algorithm 1's active set) must also
    #: implement the two membership hooks.  The dispatcher refuses vectorized
    #: churn for protocols that leave this False.
    supports_dynamic_membership: bool = False

    def vector_remove_nodes(self, ids: np.ndarray, state: VectorState) -> None:
        """Evict departed node ids from protocol-held state (churn mode only).

        Called by the vectorized engine's dynamic-membership mode immediately
        after ``ids`` (sorted, ascending) have been tombstoned in ``state``.
        The engine already clears the engine-owned planes (informed / active /
        pending flags and the sorted index pools); protocols that mirror node
        ids in their *own* structures — Algorithm 1's sorted active set, a
        pointer table — must drop the departed entries here.  Stateless
        protocols inherit the no-op.
        """

    def vector_compact_nodes(self, remap: np.ndarray, state: VectorState) -> None:
        """Renumber protocol-held node ids after node-axis compaction.

        Called when the dynamic-membership engine compacts tombstoned ids out
        of the node axis: ``remap`` maps every old id to its new id (``-1``
        for dropped ids; the map is monotone over surviving ids, so sorted
        index vectors stay sorted under ``remap[vec]``).  ``state`` has
        already been compacted.  Protocols that keep node ids outside the
        engine-owned state must apply the remap here; stateless protocols
        inherit the no-op.
        """

    def vector_fanout(self, round_index: int) -> int:
        """Uniform per-node fanout for ``round_index`` (bulk engine only).

        The vectorized engine samples all nodes' call targets in one batch,
        which requires every node to use the same fanout within a round.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the bulk fanout hook"
        )

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        """Boolean mask over all nodes that push during ``round_index``.

        Must equal ``[wants_push(states[v], round_index) for v in nodes]``
        element-wise; the returned array (or view) is not mutated by the
        engine but must not alias writable protocol state.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the bulk push hook"
        )

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        """Boolean mask over all nodes that answer calls during ``round_index``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the bulk pull hook"
        )

    def vector_on_round_committed(
        self, round_index: int, state: VectorState, newly_informed: np.ndarray
    ) -> None:
        """Bulk counterpart of :meth:`on_round_committed` (ids as an array)."""

    # -- lifecycle hooks -------------------------------------------------------------

    def reset(self) -> None:
        """Drop all per-run state so the instance can drive a fresh run.

        Every engine calls this once before round 1, so a protocol instance
        reused across runs (or across the replications of a batched run)
        starts each broadcast from a clean slate.  Protocols that accumulate
        per-run state outside the engine-owned node state — e.g. the
        quasirandom pointer table — must override this and clear it; stateless
        protocols inherit the no-op.
        """

    def on_round_start(self, round_index: int, states: StateTable) -> None:
        """Called before any channel is opened in ``round_index``."""

    def on_channel_exchange(
        self, caller_state: NodeState, callee_state: NodeState, round_index: int
    ) -> None:
        """Called once per open channel when :attr:`needs_exchange_hook` is True.

        Runs after the round's transmissions but before deliveries commit, so
        protocols that piggyback metadata on the communication (e.g. the
        median-counter rule observing its partners' counters) can record what
        each endpoint learned this round.
        """

    def on_round_committed(
        self, round_index: int, states: StateTable, newly_informed: Set[int]
    ) -> None:
        """Called after deliveries of ``round_index`` have been committed.

        Phase-structured protocols use this to flip per-node flags (e.g.
        Algorithm 1 marks nodes informed during Phases 3–4 as ``active``).
        """

    def finished(self, round_index: int, states: StateTable) -> bool:
        """True if the protocol has nothing further to do after ``round_index``.

        The default is to simply run out the horizon.  The engine also stops
        early when every node is informed if the simulation configuration
        requests it.
        """
        return round_index >= self.horizon()

    # -- misc -------------------------------------------------------------------------

    def describe(self) -> dict:
        """A serialisable description of the protocol's parameters."""
        return {"name": self.name, "horizon": self.horizon()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} horizon={self.horizon()}>"


class OptionalHorizonMixin:
    """Shared handling of an optional user-supplied horizon override."""

    def resolve_horizon(self, default: int, override: Optional[int]) -> int:
        """Return ``override`` if given, else ``default`` (both at least 1)."""
        value = default if override is None else override
        return max(1, int(value))
