"""The classical push protocol in the random phone call model.

Every node calls one random neighbour per round; informed nodes send the
message to the neighbour they called.  On complete graphs and random regular
graphs this finishes in ``Θ(log n)`` rounds but requires ``Θ(n·log n)``
transmissions — the baseline the paper's algorithm beats on message count.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import NodeState, VectorState
from .base import BroadcastProtocol, OptionalHorizonMixin

__all__ = ["PushProtocol"]


class PushProtocol(BroadcastProtocol, OptionalHorizonMixin):
    """Push-only broadcasting with a configurable fanout.

    Parameters
    ----------
    n_estimate:
        The shared estimate of the network size used to set the round budget.
    fanout:
        How many distinct neighbours each node calls per round (1 is the
        standard phone call model, 4 matches the paper's modification).
    horizon_factor:
        The round budget is ``ceil(horizon_factor · log₂ n)``; the classical
        analysis needs ``log₂ n + ln n + O(1)`` rounds so the default of 4
        leaves comfortable slack for regular graphs of moderate degree.
    horizon_override:
        Exact round budget, overriding the factor-based computation.
    """

    name = "push"
    supports_vectorized = True
    supports_dynamic_membership = True

    def __init__(
        self,
        n_estimate: int,
        fanout: int = 1,
        horizon_factor: float = 4.0,
        horizon_override: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        if horizon_factor <= 0:
            raise ConfigurationError(f"horizon_factor must be positive, got {horizon_factor}")
        self.n_estimate = n_estimate
        self._fanout = fanout
        default = math.ceil(horizon_factor * math.log2(n_estimate))
        self._horizon = self.resolve_horizon(default, horizon_override)
        if fanout > 1:
            self.name = f"push-{fanout}"

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return True

    def pull_round(self, round_index: int) -> bool:
        return False

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return False

    # -- bulk hooks -----------------------------------------------------------

    uses_index_pools = True

    def vector_fanout(self, round_index: int) -> int:
        return self._fanout

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        return state.informed

    def vector_push_samplers(self, round_index: int, state: VectorState) -> np.ndarray:
        # Pushers are exactly the informed nodes, which the engine already
        # maintains as a sorted index vector — sampling is O(informed).
        return state.informed_flat

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        return np.zeros(state.shape, dtype=bool)

    def describe(self) -> dict:
        description = super().describe()
        description.update({"fanout": self._fanout, "n_estimate": self.n_estimate})
        return description
