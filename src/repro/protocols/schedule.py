"""Phase schedules for the paper's Algorithms 1 and 2.

Both algorithms are structured into time phases whose lengths are functions of
``α``, ``log n`` and ``log log n`` (Section 3 of the paper):

Algorithm 1 (small degrees, ``δ ≤ d ≤ δ·log log n``):

* Phase 1 — rounds ``1 .. ⌈α·log n⌉``: a node pushes only in the round right
  after it first received (or created) the message.
* Phase 2 — rounds ``⌈α·log n⌉+1 .. ⌈α(log n + log log n)⌉``: every informed
  node pushes.
* Phase 3 — the single round ``⌈α(log n + log log n)⌉ + 1``: every informed
  node pulls (answers all incoming calls).
* Phase 4 — up to round ``2⌈α·log n⌉ + ⌈α·log log n⌉``: nodes informed during
  Phases 3–4 become *active* and push in every remaining round.

Algorithm 2 (large degrees, ``δ·log log n ≤ d ≤ δ·log n``) shares Phases 1–2
and replaces Phases 3–4 with a pull phase of length ``α·log log n``.

The nodes only need an *estimate* of ``n`` to compute these boundaries; the
robustness experiments exercise estimates off by powers of two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigurationError

__all__ = [
    "PhaseSchedule",
    "algorithm1_schedule",
    "algorithm2_schedule",
    "log2_estimate",
    "loglog_estimate",
]


def log2_estimate(n_estimate: float) -> float:
    """``log₂ n`` guarded against degenerate estimates (< 2)."""
    return math.log2(max(2.0, float(n_estimate)))


def loglog_estimate(n_estimate: float) -> float:
    """``log₂ log₂ n`` guarded so that it is always at least 1."""
    return max(1.0, math.log2(max(2.0, log2_estimate(n_estimate))))


@dataclass(frozen=True)
class PhaseSchedule:
    """Round boundaries of a phase-structured protocol.

    Phases are half-open on the left and closed on the right, expressed with
    1-based round indices: phase ``i`` covers rounds
    ``(end of phase i-1, end of phase i]``.  A phase of zero length (equal
    consecutive boundaries) simply never matches.
    """

    phase1_end: int
    phase2_end: int
    phase3_end: int
    phase4_end: int

    def __post_init__(self) -> None:
        boundaries = (self.phase1_end, self.phase2_end, self.phase3_end, self.phase4_end)
        if any(b < 0 for b in boundaries):
            raise ConfigurationError(f"phase boundaries must be non-negative: {boundaries}")
        if list(boundaries) != sorted(boundaries):
            raise ConfigurationError(f"phase boundaries must be non-decreasing: {boundaries}")

    @property
    def horizon(self) -> int:
        """Total number of rounds the schedule spans."""
        return self.phase4_end

    def phase_of(self, round_index: int) -> int:
        """The phase number (1–4) containing ``round_index``.

        Raises :class:`ConfigurationError` for rounds outside the schedule.
        """
        if round_index < 1 or round_index > self.phase4_end:
            raise ConfigurationError(
                f"round {round_index} outside schedule horizon {self.phase4_end}"
            )
        if round_index <= self.phase1_end:
            return 1
        if round_index <= self.phase2_end:
            return 2
        if round_index <= self.phase3_end:
            return 3
        return 4

    def label_of(self, round_index: int) -> str:
        """Human-readable phase label, e.g. ``"phase2"``."""
        return f"phase{self.phase_of(round_index)}"

    def phase_lengths(self) -> dict:
        """Mapping of phase label to its length in rounds."""
        return {
            "phase1": self.phase1_end,
            "phase2": self.phase2_end - self.phase1_end,
            "phase3": self.phase3_end - self.phase2_end,
            "phase4": self.phase4_end - self.phase3_end,
        }


def algorithm1_schedule(n_estimate: float, alpha: float) -> PhaseSchedule:
    """The Algorithm 1 (small-degree) schedule for a given ``α`` and size estimate."""
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    log_n = log2_estimate(n_estimate)
    loglog_n = loglog_estimate(n_estimate)
    phase1_end = math.ceil(alpha * log_n)
    phase2_end = math.ceil(alpha * (log_n + loglog_n))
    phase3_end = phase2_end + 1
    phase4_end = max(phase3_end, 2 * math.ceil(alpha * log_n) + math.ceil(alpha * loglog_n))
    return PhaseSchedule(
        phase1_end=phase1_end,
        phase2_end=phase2_end,
        phase3_end=phase3_end,
        phase4_end=phase4_end,
    )


def algorithm2_schedule(n_estimate: float, alpha: float) -> PhaseSchedule:
    """The Algorithm 2 (large-degree) schedule.

    Phases 1–2 match Algorithm 1; Phase 3 is a pull phase of length
    ``α·log log n`` (the paper's "⌈α log n + 2α log log n⌉" end point) and
    there is no Phase 4 (its boundary coincides with Phase 3's).
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    log_n = log2_estimate(n_estimate)
    loglog_n = loglog_estimate(n_estimate)
    phase1_end = math.ceil(alpha * log_n)
    phase2_end = math.ceil(alpha * (log_n + loglog_n))
    phase3_end = max(phase2_end + 1, math.ceil(alpha * log_n + 2 * alpha * loglog_n))
    return PhaseSchedule(
        phase1_end=phase1_end,
        phase2_end=phase2_end,
        phase3_end=phase3_end,
        phase4_end=phase3_end,
    )
