"""Quasirandom rumour spreading (Doerr, Friedrich, Sauerwald) as a baseline.

Each node holds a cyclic list of its neighbours (here: its adjacency list,
which stands in for the adversarial list of the original paper).  When a node
becomes informed it picks a uniformly random starting position in its list;
from then on it pushes to successive list entries, one per round.  Doerr et
al. show ``O(log n)`` broadcast time on hypercubes and random graphs, making
this a natural deterministic-ish comparison point for the phase-structured
algorithm: it also avoids re-calling recent partners, but via list order
rather than memory or multiple simultaneous choices.

The protocol's only randomness is one starting offset per node, which makes
it a natural bulk-array candidate: the per-node cursor lives in an integer
pointer table shaped like the engine state (``(n,)`` for a single run,
``(R, n)`` for a batch), advanced by a vectorized gather into the CSR
adjacency ``indices``.  The scalar engine keeps the original per-node dict.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import NodeState, VectorState
from ..core.rng import RandomSource
from .base import BroadcastProtocol, OptionalHorizonMixin

__all__ = ["QuasirandomPushProtocol"]


class QuasirandomPushProtocol(BroadcastProtocol, OptionalHorizonMixin):
    """Quasirandom push: random starting point, then deterministic list order."""

    name = "quasirandom-push"
    supports_vectorized = True
    has_custom_vector_targets = True

    def __init__(
        self,
        n_estimate: int,
        horizon_factor: float = 6.0,
        horizon_override: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if horizon_factor <= 0:
            raise ConfigurationError(f"horizon_factor must be positive, got {horizon_factor}")
        self.n_estimate = n_estimate
        default = math.ceil(horizon_factor * math.log2(n_estimate))
        self._horizon = self.resolve_horizon(default, horizon_override)
        # Per-node pointer into the neighbour list; created lazily when the
        # node first selects a target after becoming informed.  The scalar
        # engine uses the dict, the bulk engines the array table (shaped like
        # the engine state, -1 marking "not started yet").  Both are per-run
        # state and are dropped by reset().
        self._pointers: Dict[int, int] = {}
        self._pointer_table: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._pointers = {}
        self._pointer_table = None

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return True

    def pull_round(self, round_index: int) -> bool:
        return False

    def fanout(self, state: NodeState, round_index: int) -> int:
        return 1 if state.informed else 0

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return False

    def select_call_targets(
        self,
        state: NodeState,
        neighbours: List[int],
        round_index: int,
        rng: RandomSource,
    ) -> List[int]:
        """Return the next neighbour in the node's cyclic list order."""
        if not neighbours or not state.informed:
            return []
        node_id = state.node_id
        if node_id not in self._pointers:
            self._pointers[node_id] = rng.randint(0, len(neighbours))
        pointer = self._pointers[node_id]
        target = neighbours[pointer % len(neighbours)]
        self._pointers[node_id] = pointer + 1
        return [target]

    # -- bulk hooks -----------------------------------------------------------

    uses_index_pools = True

    def vector_fanout(self, round_index: int) -> int:
        return 1

    def vector_caller_mask(self, round_index: int, state: VectorState) -> np.ndarray:
        # Uninformed nodes have fanout 0 in the scalar model, so they must
        # not be charged channels by the bulk engines either.
        return state.informed

    def vector_caller_pool(self, round_index: int, state: VectorState) -> np.ndarray:
        # Same set as the caller mask, as the engine-maintained index vector:
        # channel accounting becomes an O(informed) segment sum.
        return state.informed_flat

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        return state.informed

    def vector_push_samplers(self, round_index: int, state: VectorState) -> np.ndarray:
        return state.informed_flat

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        return np.zeros(state.shape, dtype=bool)

    def vector_compact_rows(self, keep: np.ndarray, n: int, old_batch: int) -> None:
        # The cursor table is per replication; drop the completed rows so it
        # keeps the engine state's (R, n) shape.
        if self._pointer_table is not None:
            self._pointer_table = self._pointer_table[keep]

    def vector_call_targets(
        self,
        round_index: int,
        state: VectorState,
        samplers: np.ndarray,
        generator: np.random.Generator,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        row: Optional[int] = None,
    ) -> np.ndarray:
        """Advance each sampler's cursor and gather its CSR list entry.

        Nodes sampling for the first time draw a uniform starting offset in
        one batched ``integers`` call; everyone else follows the cyclic list
        deterministically, so a round costs a couple of gathers regardless of
        how many nodes are pushing.
        """
        table = self._pointer_table
        if table is None or table.shape != state.shape:
            # int32 cursors: values stay below horizon + degree, and the
            # table is the protocol's only (R, n) footprint.
            table = np.full(state.shape, -1, dtype=np.int32)
            self._pointer_table = table
        cursors = table if row is None else table[row]
        sampler_degrees = degrees[samplers]
        pointers = cursors[samplers]
        fresh = pointers < 0
        if fresh.any():
            pointers[fresh] = generator.integers(0, sampler_degrees[fresh])
        cursors[samplers] = pointers + 1
        return indices[indptr[samplers] + pointers % sampler_degrees]

    def describe(self) -> dict:
        description = super().describe()
        description.update({"n_estimate": self.n_estimate})
        return description
