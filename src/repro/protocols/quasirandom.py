"""Quasirandom rumour spreading (Doerr, Friedrich, Sauerwald) as a baseline.

Each node holds a cyclic list of its neighbours (here: its adjacency list,
which stands in for the adversarial list of the original paper).  When a node
becomes informed it picks a uniformly random starting position in its list;
from then on it pushes to successive list entries, one per round.  Doerr et
al. show ``O(log n)`` broadcast time on hypercubes and random graphs, making
this a natural deterministic-ish comparison point for the phase-structured
algorithm: it also avoids re-calling recent partners, but via list order
rather than memory or multiple simultaneous choices.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError
from ..core.node import NodeState
from ..core.rng import RandomSource
from .base import BroadcastProtocol, OptionalHorizonMixin

__all__ = ["QuasirandomPushProtocol"]


class QuasirandomPushProtocol(BroadcastProtocol, OptionalHorizonMixin):
    """Quasirandom push: random starting point, then deterministic list order."""

    name = "quasirandom-push"

    def __init__(
        self,
        n_estimate: int,
        horizon_factor: float = 6.0,
        horizon_override: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if horizon_factor <= 0:
            raise ConfigurationError(f"horizon_factor must be positive, got {horizon_factor}")
        self.n_estimate = n_estimate
        default = math.ceil(horizon_factor * math.log2(n_estimate))
        self._horizon = self.resolve_horizon(default, horizon_override)
        # Per-node pointer into the neighbour list; created lazily when the
        # node first selects a target after becoming informed.
        self._pointers: Dict[int, int] = {}

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return True

    def pull_round(self, round_index: int) -> bool:
        return False

    def fanout(self, state: NodeState, round_index: int) -> int:
        return 1 if state.informed else 0

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return False

    def select_call_targets(
        self,
        state: NodeState,
        neighbours: List[int],
        round_index: int,
        rng: RandomSource,
    ) -> List[int]:
        """Return the next neighbour in the node's cyclic list order."""
        if not neighbours or not state.informed:
            return []
        node_id = state.node_id
        if node_id not in self._pointers:
            self._pointers[node_id] = rng.randint(0, len(neighbours))
        pointer = self._pointers[node_id]
        target = neighbours[pointer % len(neighbours)]
        self._pointers[node_id] = pointer + 1
        return [target]

    def describe(self) -> dict:
        description = super().describe()
        description.update({"n_estimate": self.n_estimate})
        return description
