"""Broadcast protocols for the random phone call model.

* :class:`PushProtocol`, :class:`PullProtocol`, :class:`PushPullProtocol` —
  the classical baselines.
* :class:`Algorithm1`, :class:`Algorithm2` — the paper's four-distinct-choice,
  phase-structured algorithms for small and large degrees.
* :class:`SequentialAlgorithm1` — the sequentialised memory variant
  (footnote 2 of the paper).
* :class:`QuasirandomPushProtocol` — the Doerr et al. quasirandom baseline.
* :class:`MedianCounterProtocol` — push&pull with the Karp et al.
  median-counter termination rule.
"""

from .algorithm1 import Algorithm1
from .algorithm2 import Algorithm2
from .base import BroadcastProtocol
from .median_counter import MedianCounterProtocol
from .pull import PullProtocol
from .push import PushProtocol
from .push_pull import PushPullProtocol
from .quasirandom import QuasirandomPushProtocol
from .registry import (
    PROTOCOL_BUILDERS,
    PROTOCOLS,
    available_protocols,
    build_protocol,
)
from .schedule import (
    PhaseSchedule,
    algorithm1_schedule,
    algorithm2_schedule,
    log2_estimate,
    loglog_estimate,
)
from .sequential import SequentialAlgorithm1

__all__ = [
    "BroadcastProtocol",
    "PushProtocol",
    "PullProtocol",
    "PushPullProtocol",
    "Algorithm1",
    "Algorithm2",
    "SequentialAlgorithm1",
    "QuasirandomPushProtocol",
    "MedianCounterProtocol",
    "PhaseSchedule",
    "algorithm1_schedule",
    "algorithm2_schedule",
    "log2_estimate",
    "loglog_estimate",
    "PROTOCOL_BUILDERS",
    "PROTOCOLS",
    "build_protocol",
    "available_protocols",
]
