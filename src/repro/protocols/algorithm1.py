"""Algorithm 1 of the paper — the small-degree broadcast algorithm.

Intended for degrees ``δ ≤ d ≤ δ·log log n``.  Every node opens channels to
**four distinct neighbours** in every round, and transmits according to a
four-phase schedule (see :mod:`repro.protocols.schedule`):

* **Phase 1** (``α·log n`` rounds): a node pushes exactly once — in the round
  immediately after it first received (or created) the message.  This keeps
  the number of Phase-1 transmissions at ``O(n)`` while already informing a
  constant fraction of the nodes (Lemmas 1–2, Corollary 1).
* **Phase 2** (``α·log log n`` rounds): every informed node pushes in every
  round.  The uninformed count shrinks by a constant factor per round, down
  to ``O(n / log⁵ n)`` (Lemma 3, Corollary 2).
* **Phase 3** (one round): every informed node answers all incoming calls
  (pull).  Afterwards only nodes with at least four uninformed neighbours can
  still be uninformed.
* **Phase 4** (up to round ``2α·log n + α·log log n``): nodes first informed
  during Phases 3–4 become *active* and push in every remaining round, pushing
  the message along the short residual paths inside the uninformed set
  (Theorem 2).

The total transmission count is ``O(n·log log n)`` because Phases 1 and 4
spend ``O(n)`` messages and Phases 2 and 3 each spend ``O(n·log log n)``.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import (
    NodeState,
    StateTable,
    VectorState,
    merge_sorted_disjoint,
    remove_sorted_values,
)
from .base import BroadcastProtocol
from .schedule import PhaseSchedule, algorithm1_schedule

__all__ = ["Algorithm1"]


class Algorithm1(BroadcastProtocol):
    """The paper's Algorithm 1 (four distinct choices, four phases).

    Parameters
    ----------
    n_estimate:
        The nodes' shared estimate of the network size.  The paper only
        requires it to be accurate to within a constant factor; experiment E7
        stresses this.
    alpha:
        The phase-length constant ``α``.  Theory asks for "sufficiently
        large"; empirically ``alpha = 1`` (the default) already completes
        reliably for the sizes simulated here, and the phase-dynamics
        experiment (E4) ablates larger values.
    fanout:
        Number of distinct neighbours called per round.  The paper uses 4 and
        conjectures 3 suffices; exposed for the choices ablation (E9).
    schedule_override:
        A fully custom :class:`PhaseSchedule`, overriding ``alpha``.
    """

    name = "algorithm1"
    supports_vectorized = True
    supports_dynamic_membership = True

    def __init__(
        self,
        n_estimate: int,
        alpha: float = 1.0,
        fanout: int = 4,
        schedule_override: Optional[PhaseSchedule] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self.n_estimate = n_estimate
        self.alpha = alpha
        self._fanout = fanout
        self.schedule = (
            schedule_override
            if schedule_override is not None
            else algorithm1_schedule(n_estimate, alpha)
        )
        if fanout != 4:
            self.name = f"algorithm1-f{fanout}"
        # Sorted flat indices of Phase-3/4 "active" nodes, maintained by the
        # bulk commit hook (the index-pool counterpart of the boolean
        # ``state.active`` plane).  Per-run state, dropped by reset().
        self._active_flat: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._active_flat = None

    # -- scheduling -----------------------------------------------------------

    def horizon(self) -> int:
        return self.schedule.horizon

    def phase_label(self, round_index: int) -> str:
        return self.schedule.label_of(round_index)

    def push_round(self, round_index: int) -> bool:
        return self.schedule.phase_of(round_index) in (1, 2, 4)

    def pull_round(self, round_index: int) -> bool:
        return self.schedule.phase_of(round_index) == 3

    # -- per-node decisions ------------------------------------------------------

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        if not state.informed:
            return False
        phase = self.schedule.phase_of(round_index)
        if phase == 1:
            # Only nodes that created or first received the message in the
            # previous step transmit (the source has informed_round == 0 and
            # therefore pushes in round 1).
            return state.newly_informed_in(round_index - 1)
        if phase == 2:
            return True
        if phase == 4:
            return state.active or state.newly_informed_in(round_index - 1)
        return False

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return state.informed and self.schedule.phase_of(round_index) == 3

    # -- bulk hooks -----------------------------------------------------------------

    uses_index_pools = True

    def vector_fanout(self, round_index: int) -> int:
        return self._fanout

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        phase = self.schedule.phase_of(round_index)
        if phase == 1:
            return state.informed & (state.informed_round == round_index - 1)
        if phase == 2:
            return state.informed
        if phase == 4:
            return state.informed & (
                state.active | (state.informed_round == round_index - 1)
            )
        return np.zeros(state.shape, dtype=bool)

    def vector_push_samplers(
        self, round_index: int, state: VectorState
    ) -> Optional[np.ndarray]:
        phase = self.schedule.phase_of(round_index)
        if phase == 1:
            # Exactly the nodes first informed in the previous round — the
            # engine hands them to us as last round's commit set.
            return state.newly_flat
        if phase == 2:
            return state.informed_flat
        if phase == 4:
            # active ∪ newly(r-1): every Phase-4 round is preceded by a
            # Phase-3/4 round, whose commit already merged its newly informed
            # nodes into the active list, so the list alone is the push set.
            if self._active_flat is None:
                return state.newly_flat[:0]
            return self._active_flat
        return state.newly_flat[:0]

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        if self.schedule.phase_of(round_index) == 3:
            return state.informed
        return np.zeros(state.shape, dtype=bool)

    def vector_on_round_committed(
        self, round_index: int, state: VectorState, newly_informed: np.ndarray
    ) -> None:
        if self.schedule.phase_of(round_index) >= 3 and newly_informed.size:
            # newly_informed holds flat indices (row-major for a batch), so
            # flip the flag through the flattened view.
            state.active.reshape(-1)[newly_informed] = True
            if self._active_flat is None:
                self._active_flat = newly_informed.copy()
            else:
                self._active_flat = merge_sorted_disjoint(
                    self._active_flat, newly_informed
                )

    def vector_compact_rows(self, keep: np.ndarray, n: int, old_batch: int) -> None:
        if self._active_flat is not None:
            self._active_flat = VectorState.compact_flat_indices(
                self._active_flat, keep, n, old_batch
            )

    def vector_remove_nodes(self, ids: np.ndarray, state: VectorState) -> None:
        if self._active_flat is not None and self._active_flat.size:
            self._active_flat = remove_sorted_values(self._active_flat, ids)

    def vector_compact_nodes(self, remap: np.ndarray, state: VectorState) -> None:
        # Active nodes are alive by construction (departures evict them via
        # vector_remove_nodes), so the remap has no -1 hits here; it is
        # monotone over survivors, so the sorted order is preserved.
        if self._active_flat is not None and self._active_flat.size:
            self._active_flat = remap[self._active_flat].astype(
                self._active_flat.dtype, copy=False
            )

    # -- lifecycle -----------------------------------------------------------------

    def on_round_committed(
        self, round_index: int, states: StateTable, newly_informed: Set[int]
    ) -> None:
        # Nodes informed during Phase 3 or Phase 4 switch to the active state
        # and keep pushing for the remainder of the schedule.
        if self.schedule.phase_of(round_index) >= 3:
            for node_id in newly_informed:
                states[node_id].active = True

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {
                "alpha": self.alpha,
                "fanout": self._fanout,
                "n_estimate": self.n_estimate,
                "phase_lengths": self.schedule.phase_lengths(),
            }
        )
        return description
