"""Algorithm 2 of the paper — the large-degree broadcast algorithm.

Intended for degrees ``δ·log log n ≤ d ≤ δ·log n``.  Phases 1 and 2 are the
same as in Algorithm 1; the tail of the protocol is a single pull phase of
length ``α·log log n`` (rounds ``⌈α(log n + log log n)⌉ + 1`` through
``⌈α·log n + 2α·log log n⌉``) during which every informed node answers all
incoming calls.  Because the degree is large, each pull round multiplies the
uninformed count down super-geometrically (Section 4.3.3, Theorem 3), so
``O(log log n)`` pull rounds finish the broadcast with ``O(n·log log n)``
total transmissions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import NodeState, VectorState
from .base import BroadcastProtocol
from .schedule import PhaseSchedule, algorithm2_schedule

__all__ = ["Algorithm2"]


class Algorithm2(BroadcastProtocol):
    """The paper's Algorithm 2 (four distinct choices, push phases + pull tail).

    Parameters mirror :class:`repro.protocols.algorithm1.Algorithm1`.
    """

    name = "algorithm2"
    supports_vectorized = True
    supports_dynamic_membership = True

    def __init__(
        self,
        n_estimate: int,
        alpha: float = 1.0,
        fanout: int = 4,
        schedule_override: Optional[PhaseSchedule] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self.n_estimate = n_estimate
        self.alpha = alpha
        self._fanout = fanout
        self.schedule = (
            schedule_override
            if schedule_override is not None
            else algorithm2_schedule(n_estimate, alpha)
        )
        if fanout != 4:
            self.name = f"algorithm2-f{fanout}"

    # -- scheduling -----------------------------------------------------------

    def horizon(self) -> int:
        return self.schedule.horizon

    def phase_label(self, round_index: int) -> str:
        return self.schedule.label_of(round_index)

    def push_round(self, round_index: int) -> bool:
        return self.schedule.phase_of(round_index) in (1, 2)

    def pull_round(self, round_index: int) -> bool:
        return self.schedule.phase_of(round_index) == 3

    # -- per-node decisions ------------------------------------------------------

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        if not state.informed:
            return False
        phase = self.schedule.phase_of(round_index)
        if phase == 1:
            return state.newly_informed_in(round_index - 1)
        return phase == 2

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return state.informed and self.schedule.phase_of(round_index) == 3

    # -- bulk hooks -----------------------------------------------------------------

    uses_index_pools = True

    def vector_fanout(self, round_index: int) -> int:
        return self._fanout

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        phase = self.schedule.phase_of(round_index)
        if phase == 1:
            return state.informed & (state.informed_round == round_index - 1)
        if phase == 2:
            return state.informed
        return np.zeros(state.shape, dtype=bool)

    def vector_push_samplers(
        self, round_index: int, state: VectorState
    ) -> Optional[np.ndarray]:
        phase = self.schedule.phase_of(round_index)
        if phase == 1:
            return state.newly_flat
        if phase == 2:
            return state.informed_flat
        return state.newly_flat[:0]

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        # The pull tail: every informed node answers all incoming calls, so
        # the mask covers the informed set and the engine's many-to-one pull
        # accounting (one transmission per caller whose callee answers) does
        # the rest in bulk.
        if self.schedule.phase_of(round_index) == 3:
            return state.informed
        return np.zeros(state.shape, dtype=bool)

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {
                "alpha": self.alpha,
                "fanout": self._fanout,
                "n_estimate": self.n_estimate,
                "phase_lengths": self.schedule.phase_lengths(),
            }
        )
        return description
