"""The classical pull protocol in the random phone call model.

Every node calls one random neighbour per round; informed nodes answer every
incoming call with the message.  Pull is slow while few nodes are informed
(the source has to wait to be called) but extremely fast in the endgame: once
half the nodes are informed the uninformed count drops doubly exponentially,
which is the effect the paper's Phase 3/4 exploits.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import NodeState, VectorState
from .base import BroadcastProtocol, OptionalHorizonMixin

__all__ = ["PullProtocol"]


class PullProtocol(BroadcastProtocol, OptionalHorizonMixin):
    """Pull-only broadcasting with a configurable fanout."""

    name = "pull"
    supports_vectorized = True
    supports_dynamic_membership = True

    def __init__(
        self,
        n_estimate: int,
        fanout: int = 1,
        horizon_factor: float = 6.0,
        horizon_override: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        if horizon_factor <= 0:
            raise ConfigurationError(f"horizon_factor must be positive, got {horizon_factor}")
        self.n_estimate = n_estimate
        self._fanout = fanout
        default = math.ceil(horizon_factor * math.log2(n_estimate))
        self._horizon = self.resolve_horizon(default, horizon_override)
        if fanout > 1:
            self.name = f"pull-{fanout}"

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return False

    def pull_round(self, round_index: int) -> bool:
        return True

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        return False

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    # -- bulk hooks -----------------------------------------------------------

    # No index pools: pull rounds sample every node with a neighbour (any
    # caller may receive), so there is no push-only sampling to shrink; the
    # engines' delivery path still commits only the uninformed hits sparsely.

    def vector_fanout(self, round_index: int) -> int:
        return self._fanout

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        return np.zeros(state.shape, dtype=bool)

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        return state.informed

    def describe(self) -> dict:
        description = super().describe()
        description.update({"fanout": self._fanout, "n_estimate": self.n_estimate})
        return description
