"""The median-counter algorithm of Karp, Schindelhauer, Shenker and Vöcking.

Karp et al. [FOCS 2000] showed that push&pull with a *distributed* termination
mechanism broadcasts on complete graphs in ``O(log n)`` rounds with only
``O(n·log log n)`` transmissions, and that this is optimal for their model.
The termination rule is the part our age-based :class:`PushPullProtocol`
simplifies away, so this module implements the real thing as a baseline:

* Every copy of the rumour carries a **counter** (the paper's "age"-refined
  state machine).  A node is in state B (actively spreading) with a counter
  value, or in state C (still transmitting for a bounded number of rounds but
  no longer updating counters), or in state D (inactive).
* In every round each node contacts a random neighbour; push and pull both
  happen.  A node in state B with counter ``ctr`` increments its counter when
  it observes that the **median** of the counters it encountered this round
  (from the nodes it communicated with that already know the rumour) is at
  least its own counter — the original rule; encountering mostly
  higher-counter copies is evidence the rumour is already widespread.
* When the counter reaches ``ctr_max = O(log log n)`` the node switches to
  state C and keeps transmitting for ``O(log log n)`` further rounds, then
  stops (state D).

This gives a fully address-oblivious, distributed stopping rule whose cost we
can compare against Algorithm 1 (experiment E2 ablations) — and on *sparse*
random regular graphs it illustrates the paper's Theorem 1: no one-call rule,
however clever its termination, escapes the ``Ω(n·log n / log d)`` bound.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from ..core.errors import ConfigurationError
from ..core.node import NodeState, StateTable
from .base import BroadcastProtocol, OptionalHorizonMixin

__all__ = ["MedianCounterProtocol"]

#: Node phases of the median-counter state machine.
_STATE_B = "B"
_STATE_C = "C"
_STATE_D = "D"


class MedianCounterProtocol(BroadcastProtocol, OptionalHorizonMixin):
    """Push&pull with the Karp et al. median-counter termination rule.

    Parameters
    ----------
    n_estimate:
        Shared estimate of the network size (sets ``ctr_max`` and the state-C
        duration to ``O(log log n)`` and the hard horizon to ``O(log n)``).
    fanout:
        Distinct neighbours contacted per round (1 = the model Karp et al.
        analyse; 4 = the paper's modification, for ablations).
    counter_rounds_factor:
        ``ctr_max = ceil(counter_rounds_factor · log₂ log₂ n)``.
    state_c_factor:
        Rounds spent in state C before going quiet, as a multiple of
        ``log₂ log₂ n``.
    horizon_factor:
        Hard stop after ``ceil(horizon_factor · log₂ n)`` rounds (the Monte
        Carlo guarantee — state D is normally reached much earlier).
    """

    name = "median-counter"
    needs_exchange_hook = True

    def __init__(
        self,
        n_estimate: int,
        fanout: int = 1,
        counter_rounds_factor: float = 2.0,
        state_c_factor: float = 2.0,
        horizon_factor: float = 6.0,
        horizon_override: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        for label, value in (
            ("counter_rounds_factor", counter_rounds_factor),
            ("state_c_factor", state_c_factor),
            ("horizon_factor", horizon_factor),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive, got {value}")
        self.n_estimate = n_estimate
        self._fanout = fanout
        log_n = math.log2(n_estimate)
        loglog_n = max(1.0, math.log2(max(2.0, log_n)))
        self.ctr_max = max(1, math.ceil(counter_rounds_factor * loglog_n))
        self.state_c_rounds = max(1, math.ceil(state_c_factor * loglog_n))
        self._horizon = self.resolve_horizon(
            math.ceil(horizon_factor * log_n), horizon_override
        )
        if fanout > 1:
            self.name = f"median-counter-{fanout}"

        # Per-node protocol state (the engine only tracks informedness).
        self._state: Dict[int, str] = {}
        self._counter: Dict[int, int] = {}
        self._c_rounds_left: Dict[int, int] = {}
        # Counters observed from communication partners in the current round,
        # recorded as the round unfolds and folded in at commit time.
        self._observed: Dict[int, List[int]] = {}

    # -- bookkeeping helpers --------------------------------------------------------

    def _ensure_tracked(self, node_id: int) -> None:
        if node_id not in self._state:
            self._state[node_id] = _STATE_B
            self._counter[node_id] = 1
            self._c_rounds_left[node_id] = self.state_c_rounds

    def counter_of(self, node_id: int) -> int:
        """Current counter of an informed node (1 if it was never updated)."""
        return self._counter.get(node_id, 1)

    def state_of(self, node_id: int) -> str:
        """Median-counter state ("B", "C", or "D") of an informed node."""
        return self._state.get(node_id, _STATE_B)

    def observe(self, node_id: int, partner_counter: int) -> None:
        """Record the counter carried by a copy received from a partner."""
        self._observed.setdefault(node_id, []).append(partner_counter)

    def transmitting(self, node_id: int) -> bool:
        """True while the node's state machine still allows transmissions."""
        return self.state_of(node_id) in (_STATE_B, _STATE_C)

    # -- BroadcastProtocol interface ---------------------------------------------------

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return True

    def pull_round(self, round_index: int) -> bool:
        return True

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        if not state.informed:
            return False
        self._ensure_tracked(state.node_id)
        return self.transmitting(state.node_id)

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return self.wants_push(state, round_index)

    def on_channel_exchange(
        self, caller_state: NodeState, callee_state: NodeState, round_index: int
    ) -> None:
        # Each endpoint that already knows the rumour observes the counter of
        # the other endpoint, provided that other endpoint also knows it (the
        # rule only reasons about copies of the rumour that were exchanged).
        if caller_state.informed and callee_state.informed:
            self._ensure_tracked(caller_state.node_id)
            self._ensure_tracked(callee_state.node_id)
            self.observe(caller_state.node_id, self._counter[callee_state.node_id])
            self.observe(callee_state.node_id, self._counter[caller_state.node_id])

    def on_round_committed(
        self, round_index: int, states: StateTable, newly_informed: Set[int]
    ) -> None:
        # Newly informed nodes enter state B with counter 1.
        for node_id in newly_informed:
            self._ensure_tracked(node_id)

        # Fold in this round's observations for every informed node.
        for node_id, observed in self._observed.items():
            if not states.contains(node_id) or not states[node_id].informed:
                continue
            self._ensure_tracked(node_id)
            if self._state[node_id] == _STATE_B and observed:
                observed.sort()
                median = observed[len(observed) // 2]
                if median >= self._counter[node_id]:
                    self._counter[node_id] += 1
                if self._counter[node_id] >= self.ctr_max:
                    self._state[node_id] = _STATE_C
        self._observed.clear()

        # Age out state C.
        for node_id, state_label in list(self._state.items()):
            if state_label == _STATE_C:
                self._c_rounds_left[node_id] -= 1
                if self._c_rounds_left[node_id] <= 0:
                    self._state[node_id] = _STATE_D

    def finished(self, round_index: int, states: StateTable) -> bool:
        if round_index >= self._horizon:
            return True
        # Once every informed node has gone quiet nothing further can happen.
        informed = [s.node_id for s in states if s.informed]
        if informed and all(self.state_of(node_id) == _STATE_D for node_id in informed):
            return True
        return False

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {
                "fanout": self._fanout,
                "n_estimate": self.n_estimate,
                "ctr_max": self.ctr_max,
                "state_c_rounds": self.state_c_rounds,
            }
        )
        return description
