"""The sequentialised (memory) variant of the four-choice model.

Footnote 2 of the paper: instead of calling four distinct neighbours
simultaneously, each node calls *one* neighbour per round chosen uniformly
from the neighbours **not contacted during the last three rounds**.  Four
consecutive rounds of this sequential model correspond to one round of the
simultaneous model, so all the paper's results carry over (the idea goes back
to Elsässer & Sauerwald, SODA'08 — "the power of memory in randomized
broadcasting").

:class:`SequentialAlgorithm1` runs the Algorithm 1 phase structure on a
schedule stretched by the sequentialisation factor, with every node calling a
single remembered-avoiding neighbour per round.  Experiment E10 compares it
against the simultaneous :class:`repro.protocols.algorithm1.Algorithm1`.
"""

from __future__ import annotations

from typing import Optional, Set

from ..core.errors import ConfigurationError
from ..core.node import NodeState, StateTable
from .base import BroadcastProtocol
from .schedule import PhaseSchedule, algorithm1_schedule

__all__ = ["SequentialAlgorithm1"]


class SequentialAlgorithm1(BroadcastProtocol):
    """Algorithm 1 re-expressed in the sequential one-call-with-memory model.

    Parameters
    ----------
    n_estimate:
        Shared network-size estimate.
    alpha:
        Phase-length constant of the underlying Algorithm 1 schedule.
    memory_window:
        How many recent partners each node avoids (the paper uses 3, which
        makes four consecutive calls pairwise distinct).
    stretch:
        How many sequential rounds emulate one simultaneous round; defaults to
        ``memory_window + 1`` (i.e. 4), matching the paper's equivalence.
    """

    name = "algorithm1-sequential"

    def __init__(
        self,
        n_estimate: int,
        alpha: float = 1.0,
        memory_window: int = 3,
        stretch: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if memory_window < 0:
            raise ConfigurationError(f"memory_window must be >= 0, got {memory_window}")
        self.n_estimate = n_estimate
        self.alpha = alpha
        self.memory_window = memory_window
        self.stretch = stretch if stretch is not None else memory_window + 1
        if self.stretch < 1:
            raise ConfigurationError(f"stretch must be >= 1, got {self.stretch}")
        self._base_schedule: PhaseSchedule = algorithm1_schedule(n_estimate, alpha)

    # -- schedule mapping ---------------------------------------------------------

    def _base_round(self, round_index: int) -> int:
        """Map a sequential round onto the simultaneous-model round it emulates."""
        return (round_index - 1) // self.stretch + 1

    def horizon(self) -> int:
        return self._base_schedule.horizon * self.stretch

    def phase_label(self, round_index: int) -> str:
        return self._base_schedule.label_of(self._base_round(round_index))

    def push_round(self, round_index: int) -> bool:
        return self._base_schedule.phase_of(self._base_round(round_index)) in (1, 2, 4)

    def pull_round(self, round_index: int) -> bool:
        return self._base_schedule.phase_of(self._base_round(round_index)) == 3

    # -- per-node decisions ----------------------------------------------------------

    def fanout(self, state: NodeState, round_index: int) -> int:
        return 1

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        if not state.informed:
            return False
        phase = self._base_schedule.phase_of(self._base_round(round_index))
        if phase == 1:
            # "Newly informed" is interpreted at the granularity of emulated
            # rounds: a node pushes during the whole block of sequential
            # rounds that follows the block in which it became informed.
            if state.informed_round is None:
                return False
            informed_block = (
                0
                if state.informed_round == 0
                else self._base_round(state.informed_round)
            )
            return self._base_round(round_index) == informed_block + 1
        if phase == 2:
            return True
        if phase == 4:
            return state.active
        return False

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return (
            state.informed
            and self._base_schedule.phase_of(self._base_round(round_index)) == 3
        )

    # -- lifecycle ----------------------------------------------------------------------

    def on_round_committed(
        self, round_index: int, states: StateTable, newly_informed: Set[int]
    ) -> None:
        if self._base_schedule.phase_of(self._base_round(round_index)) >= 3:
            for node_id in newly_informed:
                states[node_id].active = True

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {
                "alpha": self.alpha,
                "memory_window": self.memory_window,
                "stretch": self.stretch,
                "n_estimate": self.n_estimate,
            }
        )
        return description
