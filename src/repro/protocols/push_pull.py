"""The combined push & pull protocol of Karp, Schindelhauer, Shenker, Vöcking.

In every round each node calls one random neighbour; informed nodes both push
(to the neighbour they called) and pull (answer every caller).  With the
age-based termination rule — stop transmitting a message once its age exceeds
``log₃ n + O(log log n)`` rounds — Karp et al. show that on complete graphs
this broadcasts with high probability using only ``O(n·log log n)``
transmissions.  On sparse random regular graphs with one call per round the
paper's lower bound (Theorem 1) shows this economy is unattainable, which is
exactly the contrast the experiments highlight.

The optional fanout parameter turns this into the "four distinct choices"
variant, i.e. the model of the paper without the phase structure of
Algorithm 1 — a useful ablation of how much the phases themselves matter.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.node import NodeState, VectorState
from .base import BroadcastProtocol, OptionalHorizonMixin

__all__ = ["PushPullProtocol"]


class PushPullProtocol(BroadcastProtocol, OptionalHorizonMixin):
    """Push & pull with age-based termination.

    Parameters
    ----------
    n_estimate:
        Shared network-size estimate used for the termination age.
    fanout:
        Distinct neighbours called per round (1 = standard model).
    extra_loglog_rounds:
        The termination age is ``ceil(log₃ n) + ceil(extra_loglog_rounds ·
        log₂ log₂ n)``; Karp et al. use a constant multiple of ``log log n``
        beyond the exponential-growth phase.
    horizon_override:
        Exact round budget, overriding the age-based computation.
    """

    name = "push-pull"
    supports_vectorized = True
    # Per-node decisions read only the engine-owned informed plane, which the
    # dynamic-membership engine keeps consistent across departures and joins.
    supports_dynamic_membership = True

    def __init__(
        self,
        n_estimate: int,
        fanout: int = 1,
        extra_loglog_rounds: float = 4.0,
        horizon_override: Optional[int] = None,
    ) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        if extra_loglog_rounds < 0:
            raise ConfigurationError(
                f"extra_loglog_rounds must be non-negative, got {extra_loglog_rounds}"
            )
        self.n_estimate = n_estimate
        self._fanout = fanout
        log_n = math.log2(n_estimate)
        loglog_n = max(1.0, math.log2(max(2.0, log_n)))
        default = math.ceil(math.log(n_estimate, 3)) + math.ceil(
            extra_loglog_rounds * loglog_n
        ) + math.ceil(log_n)
        self._horizon = self.resolve_horizon(default, horizon_override)
        if fanout > 1:
            self.name = f"push-pull-{fanout}"

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return True

    def pull_round(self, round_index: int) -> bool:
        return True

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    # -- bulk hooks -----------------------------------------------------------

    # No index pools: every round is also a pull round, so the engines sample
    # every node with a neighbour regardless of the push set; the push subset
    # is selected by one mask gather over the sampled channels instead.

    def vector_fanout(self, round_index: int) -> int:
        return self._fanout

    def vector_wants_push(self, round_index: int, state: VectorState) -> np.ndarray:
        return state.informed

    def vector_wants_pull(self, round_index: int, state: VectorState) -> np.ndarray:
        return state.informed

    def describe(self) -> dict:
        description = super().describe()
        description.update({"fanout": self._fanout, "n_estimate": self.n_estimate})
        return description
