"""E6/E7 — Robustness to message loss and to wrong size estimates.

Paper claim (abstract and Section 1): the algorithm "efficiently handles
limited communication failures" and "only requires rough estimates of the
number of nodes".

* **E6** sweeps an independent per-transmission loss probability and reports
  success rate, completion rounds, and transmissions for Algorithm 1 and for
  the push baseline.  Expected shape: moderate loss (say up to 20–30%) slows
  the broadcast by a modest factor but does not break it, because every
  informed node keeps participating in later phases.  The loss × protocol
  grid is declared as a :class:`ScenarioSpec` (axes over
  ``failure.params.transmission_loss_probability`` and ``protocol.name``)
  and executed through the spec-driven runner entry point — bit-identical to
  the hand-wired loops this module used to contain.
* **E7** feeds Algorithm 1 a size estimate that is off by powers of two and
  reports the same metrics.  Expected shape: the phase boundaries move by a
  constant number of rounds, so completion and cost change only mildly.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.metrics import aggregate_runs
from ..failures.estimates import EstimateError
from ..protocols.algorithm1 import Algorithm1
from ..spec.scenario import (
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
)
from .runner import ExperimentRunner
from .tables import Table

__all__ = ["run_experiment", "scenario"]

EXPERIMENT_ID = "E6/E7"
TITLE = "E6/E7 — robustness to message loss and size-estimate error"


def scenario(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    loss_probabilities: Optional[List[float]] = None,
) -> ScenarioSpec:
    """The E6 message-loss sweep as a declarative scenario record."""
    size = n if n is not None else (1024 if quick else 8192)
    losses = (
        tuple(loss_probabilities)
        if loss_probabilities is not None
        else (0.0, 0.05, 0.1, 0.2, 0.3)
    )
    return ScenarioSpec(
        name="e6-message-loss",
        graph=GraphSpec(
            family="connected-random-regular", params={"n": size, "d": degree}
        ),
        protocol=ProtocolSpec(name="algorithm1"),
        failure=FailureSpec(
            model="independent-loss",
            params={"transmission_loss_probability": losses[0]},
        ),
        sweep=SweepSpec(
            axes=(
                SweepAxis(
                    path="failure.params.transmission_loss_probability",
                    values=losses,
                    key="loss",
                ),
                SweepAxis(
                    path="protocol.name", values=("algorithm1", "push"), key="protocol"
                ),
            )
        ),
        repetitions=3 if quick else 5,
        master_seed=master_seed,
        label="e6-{protocol}-{loss}",
    )


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    loss_probabilities: Optional[List[float]] = None,
    estimate_factors: Optional[List[float]] = None,
) -> Table:
    """Run the loss sweep (E6) and the estimate sweep (E7)."""
    size = n if n is not None else (1024 if quick else 8192)
    factors = estimate_factors if estimate_factors is not None else [0.25, 0.5, 1.0, 2.0, 4.0]
    spec = scenario(
        quick=quick,
        master_seed=master_seed,
        n=n,
        degree=degree,
        loss_probabilities=loss_probabilities,
    )
    runner = ExperimentRunner(
        master_seed=master_seed,
        repetitions=spec.repetitions,
        engine=spec.engine,
        batch=spec.batch,
    )

    table = Table(
        title=f"{TITLE} (n = {size}, d = {degree})",
        columns=[
            "block",
            "protocol",
            "loss_probability",
            "estimate_factor",
            "success_rate",
            "rounds_mean",
            "tx_per_node",
        ],
    )

    # E6: message-loss sweep, spec-driven (same runner, shared graph cache).
    for point in runner.run_scenario(spec).points:
        aggregate = point.aggregate
        table.add_row(
            block="message-loss",
            protocol=point.values["protocol"],
            loss_probability=point.values["loss"],
            estimate_factor=1.0,
            success_rate=aggregate.success_rate,
            rounds_mean=aggregate.rounds.mean,
            tx_per_node=aggregate.transmissions_per_node.mean,
        )

    # E7: size-estimate sweep (Algorithm 1 only; push has no size parameter
    # beyond its horizon, which we leave at the true n).
    for factor in factors:
        estimate = EstimateError(factor).apply(size)
        aggregate = aggregate_runs(
            runner.broadcast(
                size,
                degree,
                lambda n_est, est=estimate: Algorithm1(n_estimate=est),
                label=f"e7-{factor}",
                n_estimate=size,
            )
        )
        table.add_row(
            block="size-estimate",
            protocol="algorithm1",
            loss_probability=0.0,
            estimate_factor=factor,
            success_rate=aggregate.success_rate,
            rounds_mean=aggregate.rounds.mean,
            tx_per_node=aggregate.transmissions_per_node.mean,
        )

    table.add_note(
        "Paper claim: limited communication failures and constant-factor errors "
        "in the size estimate neither break completion nor blow up the cost."
    )
    table.metadata["spec"] = spec.to_dict()
    return table
