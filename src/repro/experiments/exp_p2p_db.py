"""E11 — Replicated-database maintenance over a P2P overlay.

The motivating application of the paper (following Demers et al.): replicas of
a database spread over a peer-to-peer overlay must receive every update.  The
experiment drives the :class:`~repro.p2p.replicated_db.ReplicatedDatabase`
simulation with a stream of concurrent updates and compares gossip rules —
push-only rumour mongering, push&pull, and the paper's Algorithm 1 rule —
on convergence rounds, per-update per-peer transmission cost, and replication
rate, both on a static overlay and under churn.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.rng import RandomSource, derive_seed
from ..p2p.gossip_rules import Algorithm1Rule, PushPullRule, PushRule
from ..p2p.overlay import Overlay
from ..p2p.replicated_db import ReplicatedDatabase, UpdateWorkload
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E11"
TITLE = "E11 — replicated database convergence over a gossiping overlay"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    peers: Optional[int] = None,
    degree: int = 8,
    churn_settings: Optional[List[Tuple[float, float]]] = None,
) -> Table:
    """Run the replicated-database comparison."""
    size = peers if peers is not None else (256 if quick else 1024)
    churn_list = churn_settings if churn_settings is not None else [(0.0, 0.0), (0.01, 0.01)]
    workload = UpdateWorkload(
        updates_per_round=2 if quick else 4,
        injection_rounds=5 if quick else 10,
        keys=8,
    )
    repetitions = 2 if quick else 4

    rules = {
        "push": lambda n: PushRule(n_estimate=n),
        "push-pull": lambda n: PushPullRule(n_estimate=n),
        "algorithm1": lambda n: Algorithm1Rule(n_estimate=n),
    }

    table = Table(
        title=f"{TITLE} (peers = {size}, d = {degree})",
        columns=[
            "rule",
            "leave_rate",
            "join_rate",
            "replication_rate",
            "convergence_rounds",
            "tx_per_update_per_peer",
            "payload_kib",
            "replicas_agree",
        ],
    )

    for leave_rate, join_rate in churn_list:
        for name, rule_factory in rules.items():
            replication_rates = []
            convergence = []
            tx_costs = []
            payload = []
            agreement = []
            for repetition in range(repetitions):
                seed = derive_seed(master_seed, "e11", name, leave_rate, repetition)
                rng = RandomSource(seed=seed, name=f"e11-{name}-{repetition}")
                overlay = Overlay(n=size, degree=degree, rng=rng.spawn("overlay"))
                database = ReplicatedDatabase(
                    overlay=overlay,
                    rule=rule_factory(size),
                    rng=rng.spawn("db"),
                    join_rate=join_rate,
                    leave_rate=leave_rate,
                )
                report = database.run(workload)
                replication_rates.append(report.replication_rate)
                convergence.append(report.mean_convergence_rounds)
                tx_costs.append(report.transmissions_per_update_per_peer)
                payload.append(report.total_payload_bytes / 1024.0)
                agreement.append(database.replicas_agree())
            table.add_row(
                rule=name,
                leave_rate=leave_rate,
                join_rate=join_rate,
                replication_rate=sum(replication_rates) / len(replication_rates),
                convergence_rounds=sum(convergence) / len(convergence),
                tx_per_update_per_peer=sum(tx_costs) / len(tx_costs),
                payload_kib=sum(payload) / len(payload),
                replicas_agree=all(agreement),
            )

    table.add_note(
        "The algorithm1 rule converges in fewer rounds than push-only rumour "
        "mongering; under churn the replicas that were present for an update's "
        "lifetime still converge (late joiners need anti-entropy, out of scope)."
    )
    return table
