"""Persistence for experiment tables.

Experiment tables are plain data (title, columns, rows, notes, metadata), so
they serialise naturally to JSON for archival / re-plotting and to CSV for
spreadsheets.  `EXPERIMENTS.md` numbers are regenerated from saved JSON files
rather than by copying terminal output around, and the CLI's ``--save`` flag
uses the same functions.

Saved JSON carries a ``schema_version`` field; loading is tolerant of the
format drift older records exhibit (missing ``schema_version``/``notes``/
``metadata``, rows whose keys drifted from the column list) and only rejects
files from a *newer* schema than this build understands, so archives keep
loading as the format evolves instead of dying on ``KeyError``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..core.errors import ExperimentError
from .tables import Table

__all__ = [
    "SCHEMA_VERSION",
    "ResultsIOError",
    "save_table_json",
    "load_table_json",
    "save_table_csv",
    "save_table",
]

PathLike = Union[str, Path]


class ResultsIOError(ExperimentError):
    """A saved results file cannot be read (truncated, invalid, or newer).

    Carries the offending ``path`` so callers batch-loading archives can
    report *which* file is damaged instead of re-parsing the message.
    Subclasses :class:`ExperimentError`, so existing ``except`` clauses
    keep working.
    """

    def __init__(self, path: PathLike, reason: str) -> None:
        self.path = str(path)
        super().__init__(f"cannot load table from {self.path}: {reason}")

#: Version written into saved tables.  History:
#: 1 — title/columns/rows/notes (implicit; files carry no version field);
#: 2 — adds ``schema_version`` and the ``metadata`` block (e.g. the scenario
#:     spec that produced the table).
SCHEMA_VERSION = 2


def save_table_json(table: Table, path: PathLike) -> Path:
    """Write ``table`` to ``path`` as JSON; returns the resolved path."""
    destination = Path(path)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "title": table.title,
        "columns": table.columns,
        "rows": table.to_records(),
        "notes": list(table.notes),
        "metadata": dict(table.metadata),
    }
    destination.write_text(json.dumps(payload, indent=2, sort_keys=False))
    return destination


def load_table_json(path: PathLike) -> Table:
    """Read a table previously written by :func:`save_table_json`.

    Tolerates older records: a missing ``schema_version`` is treated as
    version 1, missing ``notes``/``metadata`` default to empty, a missing
    ``columns`` list is inferred from the rows, and row keys that drifted
    from the column list extend it instead of raising.  Files written by a
    *newer* schema are rejected with a clear message.

    Every failure — unreadable file, truncated/invalid JSON, wrong shape,
    newer schema — raises :class:`ResultsIOError` naming the path.
    """
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ResultsIOError(source, str(error)) from error
    if not isinstance(payload, dict):
        raise ResultsIOError(source, "file does not hold a JSON object")
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise ResultsIOError(source, f"invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ResultsIOError(
            source,
            f"written by schema version {version}, but this build reads up "
            f"to version {SCHEMA_VERSION}; upgrade repro to load it",
        )
    if "rows" not in payload and "columns" not in payload:
        raise ResultsIOError(
            source, "file has neither 'rows' nor 'columns'; not a saved table"
        )
    rows = payload.get("rows", [])
    if not isinstance(rows, list):
        raise ResultsIOError(source, "non-list 'rows' field")
    columns = list(payload.get("columns", []))
    # Format drift: rows may carry keys the column list predates (or the
    # column list may be absent entirely).  Extend instead of KeyError-ing.
    seen = set(columns)
    for row in rows:
        if not isinstance(row, dict):
            raise ResultsIOError(source, f"non-mapping row: {row!r}")
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    table = Table(
        title=payload.get("title", ""),
        columns=columns,
        metadata=dict(payload.get("metadata", {})),
    )
    for row in rows:
        table.add_row(**row)
    for note in payload.get("notes", []):
        table.add_note(note)
    return table


def save_table_csv(table: Table, path: PathLike) -> Path:
    """Write the rows of ``table`` to ``path`` as CSV (title/notes omitted)."""
    destination = Path(path)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=table.columns)
        writer.writeheader()
        for row in table.to_records():
            writer.writerow({column: row.get(column, "") for column in table.columns})
    return destination


def save_table(table: Table, path: PathLike) -> Path:
    """Save ``table`` choosing the format from the file extension (.json/.csv)."""
    destination = Path(path)
    suffix = destination.suffix.lower()
    if suffix == ".json":
        return save_table_json(table, destination)
    if suffix == ".csv":
        return save_table_csv(table, destination)
    raise ExperimentError(
        f"unsupported table format {suffix!r} for {destination}; use .json or .csv"
    )
