"""Persistence for experiment tables.

Experiment tables are plain data (title, columns, rows, notes), so they
serialise naturally to JSON for archival / re-plotting and to CSV for
spreadsheets.  `EXPERIMENTS.md` numbers are regenerated from saved JSON files
rather than by copying terminal output around, and the CLI's ``--save`` flag
uses the same functions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..core.errors import ExperimentError
from .tables import Table

__all__ = ["save_table_json", "load_table_json", "save_table_csv", "save_table"]

PathLike = Union[str, Path]


def save_table_json(table: Table, path: PathLike) -> Path:
    """Write ``table`` to ``path`` as JSON; returns the resolved path."""
    destination = Path(path)
    payload = {
        "title": table.title,
        "columns": table.columns,
        "rows": table.to_records(),
        "notes": list(table.notes),
    }
    destination.write_text(json.dumps(payload, indent=2, sort_keys=False))
    return destination


def load_table_json(path: PathLike) -> Table:
    """Read a table previously written by :func:`save_table_json`."""
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load table from {source}: {error}") from error
    for key in ("title", "columns", "rows"):
        if key not in payload:
            raise ExperimentError(f"table file {source} is missing the {key!r} field")
    table = Table(title=payload["title"], columns=list(payload["columns"]))
    for row in payload["rows"]:
        table.add_row(**row)
    for note in payload.get("notes", []):
        table.add_note(note)
    return table


def save_table_csv(table: Table, path: PathLike) -> Path:
    """Write the rows of ``table`` to ``path`` as CSV (title/notes omitted)."""
    destination = Path(path)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=table.columns)
        writer.writeheader()
        for row in table.to_records():
            writer.writerow({column: row.get(column, "") for column in table.columns})
    return destination


def save_table(table: Table, path: PathLike) -> Path:
    """Save ``table`` choosing the format from the file extension (.json/.csv)."""
    destination = Path(path)
    suffix = destination.suffix.lower()
    if suffix == ".json":
        return save_table_json(table, destination)
    if suffix == ".csv":
        return save_table_csv(table, destination)
    raise ExperimentError(
        f"unsupported table format {suffix!r} for {destination}; use .json or .csv"
    )
