"""E2 — Message complexity: O(n·log log n) vs Θ(n·log n).

Paper claim (Theorems 2 and 3 vs the classical analysis of push): with four
distinct choices per round, the whole broadcast needs only ``O(n·log log n)``
transmissions, whereas the classical push protocol needs ``Θ(n·log n)``.

At simulatable sizes the two growth laws differ by small absolute amounts, so
the experiment reports, for every protocol, the per-node transmission count
across a size sweep together with least-squares fits against
``a + b·log log n`` and ``a + b·log n``: the protocol reproduces the paper's
claim if the ``loglog`` law explains its curve at least as well as the ``log``
law, and vice versa for push.

Two accountings are reported for Algorithm 1:

* ``algorithm1`` — transmissions until the last node is informed (what an
  oracle-terminated run would pay);
* ``algorithm1-full`` — transmissions of the complete schedule, which is what
  the distributed algorithm actually sends since no node knows when everyone
  is informed.  This is the quantity the O(n·log log n) bound is about.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.scaling import fit_scaling_law
from ..core.config import SimulationConfig
from ..core.metrics import aggregate_runs
from ..protocols.algorithm1 import Algorithm1
from ..protocols.push import PushProtocol
from ..protocols.push_pull import PushPullProtocol
from .runner import ExperimentRunner
from .tables import Table
from .workloads import DEFAULT_DEGREE, SweepSizes, full_sizes, quick_sizes

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E2"
TITLE = "E2 — transmissions per node vs network size"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    degree: int = DEFAULT_DEGREE,
    sizes: Optional[SweepSizes] = None,
) -> Table:
    """Run the E2 sweep and return its table."""
    sweep = sizes if sizes is not None else (quick_sizes() if quick else full_sizes())
    runner = ExperimentRunner(master_seed=master_seed, repetitions=sweep.repetitions)

    full_schedule = SimulationConfig(stop_when_informed=False)
    configurations = {
        "push": (lambda n: PushProtocol(n_estimate=n), None),
        "push-pull": (lambda n: PushPullProtocol(n_estimate=n), None),
        "algorithm1": (lambda n: Algorithm1(n_estimate=n), None),
        "algorithm1-full": (lambda n: Algorithm1(n_estimate=n), full_schedule),
    }

    table = Table(
        title=f"{TITLE} (d = {degree})",
        columns=[
            "protocol",
            "n",
            "tx_per_node",
            "rounds_mean",
            "success_rate",
        ],
    )

    series: dict = {name: ([], []) for name in configurations}
    for name, (factory, config) in configurations.items():
        for n in sweep.sizes:
            results = runner.broadcast(
                n, degree, factory, label=f"e2-{name}", config=config
            )
            aggregate = aggregate_runs(results)
            table.add_row(
                protocol=name,
                n=n,
                tx_per_node=aggregate.transmissions_per_node.mean,
                rounds_mean=aggregate.rounds.mean,
                success_rate=aggregate.success_rate,
            )
            series[name][0].append(n)
            series[name][1].append(aggregate.transmissions_per_node.mean)

    for name, (ns, values) in series.items():
        if len(ns) < 2:
            continue
        loglog_fit = fit_scaling_law(ns, values, "loglog")
        log_fit = fit_scaling_law(ns, values, "log")
        better = "loglog" if loglog_fit.residual_rms <= log_fit.residual_rms else "log"
        table.add_note(
            f"{name}: slope {log_fit.slope:+.2f} per log2(n) unit; best-fitting "
            f"growth law = {better} "
            f"(rms loglog {loglog_fit.residual_rms:.3f} vs log {log_fit.residual_rms:.3f})"
        )
    table.add_note(
        "Paper claim: algorithm1 transmissions grow like n·log log n while push "
        "grows like n·log n; at finite n the distinguishing signal is the growth "
        "law, not the absolute values."
    )
    return table
