"""E13 — The K5-product counterexample from the paper's conclusions.

The paper closes by noting that the multiple-choice modification does **not**
help on every well-connected graph: the Cartesian product of a random
d-regular graph with the complete graph ``K5`` has similar expansion and
connectivity, yet the four-choice model "may not lead to any notable
improvement" there, because a node's four calls keep landing inside its local
clique instead of crossing to other cliques.

The experiment runs Algorithm 1 and the classical push&pull baseline on both
topologies at (approximately) matched size and degree, and reports how much
the four choices improve the round count on each.  Expected shape: a clear
improvement on the plain random regular graph, and a much smaller (or no)
improvement on the product graph.
"""

from __future__ import annotations

from typing import Optional

from ..core.metrics import aggregate_runs
from ..core.rng import RandomSource, derive_seed
from ..graphs.configuration_model import random_regular_graph
from ..graphs.families import regular_product_with_clique
from ..protocols.algorithm1 import Algorithm1
from ..protocols.push_pull import PushPullProtocol
from .runner import repeat_broadcast
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E13"
TITLE = "E13 — counterexample: random regular graph vs product with K5"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    base_nodes: Optional[int] = None,
    degree: int = 8,
    clique_size: int = 5,
) -> Table:
    """Compare the benefit of four choices on the two topologies."""
    base_n = base_nodes if base_nodes is not None else (256 if quick else 1024)
    repetitions = 3 if quick else 5
    rng = RandomSource(seed=derive_seed(master_seed, "e13-graphs"))

    # The product graph has base_n * clique_size nodes of degree
    # degree + clique_size - 1; generate a plain random regular graph with the
    # same node count and (approximately) the same degree for a fair baseline.
    product_graph = regular_product_with_clique(
        base_n, degree, rng.spawn("product"), clique_size=clique_size
    )
    matched_n = product_graph.node_count
    matched_d = degree + clique_size - 1
    plain_graph = random_regular_graph(matched_n, matched_d, rng.spawn("plain"))

    table = Table(
        title=f"{TITLE} (n = {matched_n}, d = {matched_d})",
        columns=[
            "topology",
            "protocol",
            "rounds_mean",
            "tx_per_node",
            "success_rate",
            "speedup_vs_one_call",
        ],
    )

    protocols = {
        "push-pull-1": lambda n_est: PushPullProtocol(n_estimate=n_est),
        "algorithm1": lambda n_est: Algorithm1(n_estimate=n_est),
    }

    for topology, graph in (("random-regular", plain_graph), ("product-K5", product_graph)):
        rounds_by_protocol = {}
        rows = []
        for name, factory in protocols.items():
            seeds = [
                derive_seed(master_seed, "e13-run", topology, name, i)
                for i in range(repetitions)
            ]
            aggregate = aggregate_runs(
                repeat_broadcast(
                    graph=graph,
                    protocol_factory=factory,
                    n_estimate=matched_n,
                    seeds=seeds,
                )
            )
            rounds_by_protocol[name] = aggregate.rounds.mean
            rows.append((name, aggregate))
        for name, aggregate in rows:
            table.add_row(
                topology=topology,
                protocol=name,
                rounds_mean=aggregate.rounds.mean,
                tx_per_node=aggregate.transmissions_per_node.mean,
                success_rate=aggregate.success_rate,
                speedup_vs_one_call=(
                    rounds_by_protocol["push-pull-1"] / aggregate.rounds.mean
                ),
            )

    table.add_note(
        "Paper (Conclusions): on the Cartesian product with K5 the "
        "multiple-choice model asymptotically gives no notable improvement; "
        "compare the speedup_vs_one_call column across the two topologies."
    )
    table.add_note(
        "At simulatable sizes both topologies finish within a round of each "
        "other for either protocol — the remark is asymptotic, so this "
        "experiment documents the matched-size behaviour rather than a "
        "visible separation (see EXPERIMENTS.md)."
    )
    return table
