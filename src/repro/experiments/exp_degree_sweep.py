"""E12 — Small-degree vs large-degree regimes (Algorithm 1 vs Algorithm 2).

The paper gives two algorithms: Algorithm 1 for ``δ ≤ d ≤ δ·log log n`` and
Algorithm 2 for ``δ·log log n ≤ d ≤ δ·log n``.  The experiment sweeps the
degree at a fixed network size and runs both algorithms, reporting rounds,
transmissions and success rate, so the hand-over between the regimes (and the
fact that both behave well near the boundary) is visible in one table.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.metrics import aggregate_runs
from ..protocols.algorithm1 import Algorithm1
from ..protocols.algorithm2 import Algorithm2
from .runner import ExperimentRunner
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E12"
TITLE = "E12 — degree sweep: Algorithm 1 vs Algorithm 2"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degrees: Optional[List[int]] = None,
) -> Table:
    """Run the degree sweep with both algorithms."""
    size = n if n is not None else (1024 if quick else 4096)
    log_n = math.log2(size)
    degree_list = degrees if degrees is not None else [4, 6, 8, int(log_n), int(2 * log_n)]
    runner = ExperimentRunner(master_seed=master_seed, repetitions=3 if quick else 5)

    table = Table(
        title=f"{TITLE} (n = {size}, log2 n = {log_n:.1f})",
        columns=[
            "protocol",
            "d",
            "regime",
            "rounds_mean",
            "tx_per_node",
            "success_rate",
        ],
    )

    loglog_n = math.log2(max(2.0, log_n))
    for d in degree_list:
        if d <= 2 * loglog_n:
            regime = "small (Alg.1)"
        elif d >= log_n:
            regime = "large (Alg.2)"
        else:
            regime = "intermediate"
        for name, factory in (
            ("algorithm1", lambda n_est: Algorithm1(n_estimate=n_est)),
            ("algorithm2", lambda n_est: Algorithm2(n_estimate=n_est)),
        ):
            aggregate = aggregate_runs(
                runner.broadcast(size, d, factory, label=f"e12-{name}-{d}")
            )
            table.add_row(
                protocol=name,
                d=d,
                regime=regime,
                rounds_mean=aggregate.rounds.mean,
                tx_per_node=aggregate.transmissions_per_node.mean,
                success_rate=aggregate.success_rate,
            )

    table.add_note(
        "Algorithm 1 targets d up to ~log log n (times a constant), Algorithm 2 "
        "targets d up to ~log n; both should succeed across the sweep, with "
        "Algorithm 2's pull tail paying off as d grows."
    )
    return table
