"""E1 — Round complexity of the paper's algorithms vs the classical baselines.

Paper claim (Theorems 2 and 3): Algorithms 1 and 2 inform every node of a
random d-regular graph within ``O(log n)`` rounds.  The experiment sweeps the
network size, measures the number of rounds until the last node is informed,
and reports the ratio ``rounds / log₂ n``, which should stay roughly constant
across the sweep for every protocol that is genuinely ``O(log n)``.

The sweep itself is declared as a :class:`ScenarioSpec` (see
:func:`scenario`), so the full grid — protocols × sizes × seeds — is one
serialisable record; running it through :func:`repro.spec.run_spec` is
bit-identical to the hand-wired :class:`ExperimentRunner` loops this module
used to contain.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..spec.run import run_spec
from ..spec.scenario import GraphSpec, ProtocolSpec, ScenarioSpec, SweepAxis, SweepSpec
from .tables import Table
from .workloads import DEFAULT_DEGREE, SweepSizes, full_sizes, quick_sizes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dist.progress import ProgressCallback

__all__ = ["run_experiment", "scenario"]

EXPERIMENT_ID = "E1"
TITLE = "E1 — round complexity on random d-regular graphs"

PROTOCOL_NAMES = ("push", "push-pull", "algorithm1")


def scenario(
    quick: bool = True,
    master_seed: int = 2008,
    degree: int = DEFAULT_DEGREE,
    sizes: Optional[SweepSizes] = None,
) -> ScenarioSpec:
    """The E1 sweep as a declarative scenario record."""
    sweep = sizes if sizes is not None else (quick_sizes() if quick else full_sizes())
    return ScenarioSpec(
        name="e1-round-complexity",
        graph=GraphSpec(
            family="connected-random-regular",
            params={"n": sweep.sizes[0], "d": degree},
        ),
        protocol=ProtocolSpec(name=PROTOCOL_NAMES[0]),
        sweep=SweepSpec(
            axes=(
                SweepAxis(path="protocol.name", values=PROTOCOL_NAMES, key="protocol"),
                SweepAxis(path="graph.params.n", values=tuple(sweep.sizes)),
            )
        ),
        repetitions=sweep.repetitions,
        master_seed=master_seed,
        label="e1-{protocol}",
    )


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    degree: int = DEFAULT_DEGREE,
    sizes: Optional[SweepSizes] = None,
    workers: Optional[int] = None,
    progress: Optional["ProgressCallback"] = None,
) -> Table:
    """Run the E1 sweep and return its table.

    ``workers`` fans the grid points out over that many processes through
    :mod:`repro.dist`; the table is built from results bit-identical to the
    serial run (only ``metadata["distributed"]`` records the difference).
    """
    spec = scenario(quick=quick, master_seed=master_seed, degree=degree, sizes=sizes)
    run = run_spec(spec, workers=workers, progress=progress)

    table = Table(
        title=f"{TITLE} (d = {degree})",
        columns=[
            "protocol",
            "n",
            "rounds_mean",
            "rounds_max",
            "rounds_over_log2n",
            "success_rate",
        ],
    )
    for point in run.points:
        aggregate = point.aggregate
        n = point.values["n"]
        table.add_row(
            protocol=point.values["protocol"],
            n=n,
            rounds_mean=aggregate.rounds.mean,
            rounds_max=aggregate.rounds.maximum,
            rounds_over_log2n=aggregate.rounds.mean / math.log2(n),
            success_rate=aggregate.success_rate,
        )

    table.add_note(
        "Paper claim: Algorithm 1 finishes in O(log n) rounds — the "
        "rounds/log2(n) column should stay roughly flat as n grows."
    )
    table.metadata["spec"] = spec.to_dict()
    if run.provenance:
        table.metadata["distributed"] = dict(run.provenance)
    return table
