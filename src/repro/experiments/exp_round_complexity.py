"""E1 — Round complexity of the paper's algorithms vs the classical baselines.

Paper claim (Theorems 2 and 3): Algorithms 1 and 2 inform every node of a
random d-regular graph within ``O(log n)`` rounds.  The experiment sweeps the
network size, measures the number of rounds until the last node is informed,
and reports the ratio ``rounds / log₂ n``, which should stay roughly constant
across the sweep for every protocol that is genuinely ``O(log n)``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.metrics import aggregate_runs
from ..protocols.algorithm1 import Algorithm1
from ..protocols.push import PushProtocol
from ..protocols.push_pull import PushPullProtocol
from .runner import ExperimentRunner
from .tables import Table
from .workloads import DEFAULT_DEGREE, SweepSizes, full_sizes, quick_sizes

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E1"
TITLE = "E1 — round complexity on random d-regular graphs"


def _protocols():
    return {
        "push": lambda n: PushProtocol(n_estimate=n),
        "push-pull": lambda n: PushPullProtocol(n_estimate=n),
        "algorithm1": lambda n: Algorithm1(n_estimate=n),
    }


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    degree: int = DEFAULT_DEGREE,
    sizes: Optional[SweepSizes] = None,
) -> Table:
    """Run the E1 sweep and return its table."""
    sweep = sizes if sizes is not None else (quick_sizes() if quick else full_sizes())
    runner = ExperimentRunner(master_seed=master_seed, repetitions=sweep.repetitions)

    table = Table(
        title=f"{TITLE} (d = {degree})",
        columns=[
            "protocol",
            "n",
            "rounds_mean",
            "rounds_max",
            "rounds_over_log2n",
            "success_rate",
        ],
    )

    for name, factory in _protocols().items():
        for n in sweep.sizes:
            results = runner.broadcast(n, degree, factory, label=f"e1-{name}")
            aggregate = aggregate_runs(results)
            table.add_row(
                protocol=name,
                n=n,
                rounds_mean=aggregate.rounds.mean,
                rounds_max=aggregate.rounds.maximum,
                rounds_over_log2n=aggregate.rounds.mean / math.log2(n),
                success_rate=aggregate.success_rate,
            )

    table.add_note(
        "Paper claim: Algorithm 1 finishes in O(log n) rounds — the "
        "rounds/log2(n) column should stay roughly flat as n grows."
    )
    return table
