"""E3 — The Ω(n·log n / log d) lower bound for the one-call model.

Paper claim (Theorem 1): every strictly address-oblivious distributed
algorithm in the *standard* random phone call model (one call per round) that
broadcasts on a random d-regular graph in ``O(log n)`` rounds needs
``Ω(n·log n / log d)`` transmissions.

The experiment measures the best one-call protocol we have (push&pull, which
the lower bound applies to and which matches its shape: the pull endgame needs
``log_d n`` rounds at ``≈ n`` transmissions each) and checks two shape
predictions of the bound:

* at fixed ``n`` the per-node cost *decreases* roughly like ``1 / log d`` as
  the degree grows;
* at fixed ``d`` it *increases* roughly like ``log n``.

It also reports the four-choice Algorithm 1 alongside, whose cost is bounded
by ``O(log log n)`` per node independently of ``d`` — the "exponential
decrease in the number of transmissions" headline of the paper refers to this
``log n / log d → log log n`` drop.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..analysis.bounds import lower_bound_transmissions
from ..core.metrics import aggregate_runs
from ..protocols.algorithm1 import Algorithm1
from ..protocols.push_pull import PushPullProtocol
from .runner import ExperimentRunner
from .tables import Table
from .workloads import SweepSizes, full_sizes, quick_sizes

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E3"
TITLE = "E3 — one-call lower bound Ω(n·log n / log d) vs four choices"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    degrees: Optional[List[int]] = None,
    sizes: Optional[SweepSizes] = None,
) -> Table:
    """Run the E3 sweeps (degree sweep at fixed n, size sweep at fixed d)."""
    sweep = sizes if sizes is not None else (quick_sizes() if quick else full_sizes())
    degree_list = degrees if degrees is not None else ([4, 8, 16] if quick else [4, 8, 16, 32])
    runner = ExperimentRunner(master_seed=master_seed, repetitions=sweep.repetitions)

    table = Table(
        title=TITLE,
        columns=[
            "sweep",
            "protocol",
            "n",
            "d",
            "tx_per_node",
            "bound_per_node",
            "ratio_to_bound",
        ],
    )

    fixed_n = sweep.sizes[-1]
    def one_call(n):
        return PushPullProtocol(n_estimate=n)

    def four_choice(n):
        return Algorithm1(n_estimate=n)

    # Degree sweep at fixed n: the one-call cost should fall like 1/log d.
    for d in degree_list:
        bound = lower_bound_transmissions(fixed_n, d) / fixed_n
        for name, factory in (("push-pull-1", one_call), ("algorithm1", four_choice)):
            aggregate = aggregate_runs(
                runner.broadcast(fixed_n, d, factory, label=f"e3-deg-{name}")
            )
            measured = aggregate.transmissions_per_node.mean
            table.add_row(
                sweep="degree",
                protocol=name,
                n=fixed_n,
                d=d,
                tx_per_node=measured,
                bound_per_node=bound,
                ratio_to_bound=measured / bound if bound else float("nan"),
            )

    # Size sweep at fixed d: the one-call cost should grow like log n.
    fixed_d = 8
    for n in sweep.sizes:
        bound = lower_bound_transmissions(n, fixed_d) / n
        for name, factory in (("push-pull-1", one_call), ("algorithm1", four_choice)):
            aggregate = aggregate_runs(
                runner.broadcast(n, fixed_d, factory, label=f"e3-size-{name}")
            )
            measured = aggregate.transmissions_per_node.mean
            table.add_row(
                sweep="size",
                protocol=name,
                n=n,
                d=fixed_d,
                tx_per_node=measured,
                bound_per_node=bound,
                ratio_to_bound=measured / bound if bound else float("nan"),
            )

    table.add_note(
        "bound_per_node = log2(n)/log2(d) (Theorem 1 with unit constant); every "
        "one-call measurement must lie above a constant multiple of it, and its "
        "trend across d and n should follow the bound's shape."
    )
    table.add_note(
        f"log2(n)/log2(d) at n={fixed_n}: "
        + ", ".join(
            f"d={d}: {math.log2(fixed_n) / math.log2(d):.2f}" for d in degree_list
        )
    )
    return table
