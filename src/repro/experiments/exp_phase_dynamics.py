"""E4 — Per-phase dynamics of Algorithm 1 and the α ablation.

The paper's analysis (Section 4) predicts a specific profile for Algorithm 1:

* **Phase 1** — the set of informed nodes grows by a constant factor per
  round (Lemmas 1–2) and reaches at least a constant fraction of the network
  by the end of the phase (Corollary 1), at ``O(n)`` transmissions.
* **Phase 2** — the *uninformed* set shrinks by a constant factor per round
  (Lemma 3), leaving at most ``n/log⁵ n`` uninformed nodes (Corollary 2).
* **Phase 3** — one pull round informs everybody except nodes with at least
  four uninformed neighbours.
* **Phase 4** — the few remaining nodes are reached over short paths.

The experiment runs Algorithm 1 with full round history and reports, per
phase: rounds spent, transmissions, informed count at the end, and the
geometric growth/decay factors the lemmas predict.  A second block ablates the
phase-length constant ``α``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import SimulationConfig
from ..core.metrics import RunResult
from ..protocols.algorithm1 import Algorithm1
from .runner import ExperimentRunner
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E4"
TITLE = "E4 — Algorithm 1 phase dynamics"


def _phase_summary(result: RunResult, schedule) -> List[dict]:
    """Aggregate the run history into one record per phase."""
    records = []
    for phase_number in range(1, 5):
        label = f"phase{phase_number}"
        rounds = [r for r in result.history if r.phase == label]
        if not rounds:
            continue
        informed_start = rounds[0].informed_before
        informed_end = rounds[-1].informed_after
        growth_factors = [
            r.informed_after / r.informed_before
            for r in rounds
            if r.informed_before > 0 and r.newly_informed > 0
        ]
        shrink_factors = [
            (result.n - r.informed_before) / (result.n - r.informed_after)
            for r in rounds
            if r.informed_after < result.n and r.newly_informed > 0
        ]
        records.append(
            {
                "phase": label,
                "rounds": len(rounds),
                "transmissions": sum(r.transmissions for r in rounds),
                "informed_start": informed_start,
                "informed_end": informed_end,
                "mean_growth_factor": (
                    sum(growth_factors) / len(growth_factors) if growth_factors else 1.0
                ),
                "mean_shrink_factor": (
                    sum(shrink_factors) / len(shrink_factors) if shrink_factors else 1.0
                ),
            }
        )
    return records


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    alphas: Optional[List[float]] = None,
) -> Table:
    """Run the E4 phase profile plus the α ablation."""
    size = n if n is not None else (1024 if quick else 8192)
    alpha_values = alphas if alphas is not None else [0.5, 1.0, 2.0]
    runner = ExperimentRunner(master_seed=master_seed, repetitions=3 if quick else 5)
    full_schedule = SimulationConfig(stop_when_informed=False)

    table = Table(
        title=f"{TITLE} (n = {size}, d = {degree})",
        columns=[
            "block",
            "alpha",
            "phase",
            "rounds",
            "transmissions",
            "informed_start",
            "informed_end",
            "growth_factor",
            "shrink_factor",
            "success_rate",
        ],
    )

    # Block 1: per-phase profile at the default alpha, full schedule so every
    # phase actually executes.
    protocol_alpha = 1.0
    results = runner.broadcast(
        size,
        degree,
        lambda n_est: Algorithm1(n_estimate=n_est, alpha=protocol_alpha),
        label="e4-profile",
        config=full_schedule,
    )
    reference = results[0]
    for record in _phase_summary(reference, None):
        table.add_row(
            block="profile",
            alpha=protocol_alpha,
            phase=record["phase"],
            rounds=record["rounds"],
            transmissions=record["transmissions"],
            informed_start=record["informed_start"],
            informed_end=record["informed_end"],
            growth_factor=record["mean_growth_factor"],
            shrink_factor=record["mean_shrink_factor"],
            success_rate=1.0 if reference.success else 0.0,
        )

    # Block 2: alpha ablation — success rate and rounds with early stopping.
    for alpha in alpha_values:
        ablation_results = runner.broadcast(
            size,
            degree,
            lambda n_est, a=alpha: Algorithm1(n_estimate=n_est, alpha=a),
            label=f"e4-alpha-{alpha}",
        )
        successes = sum(1 for r in ablation_results if r.success)
        mean_rounds = sum(
            r.rounds_to_completion if r.rounds_to_completion is not None else r.rounds_executed
            for r in ablation_results
        ) / len(ablation_results)
        mean_tx = sum(r.transmissions_per_node for r in ablation_results) / len(
            ablation_results
        )
        table.add_row(
            block="alpha-ablation",
            alpha=alpha,
            phase="all",
            rounds=mean_rounds,
            transmissions=mean_tx,
            informed_start=1,
            informed_end=int(
                sum(r.final_informed for r in ablation_results) / len(ablation_results)
            ),
            growth_factor=None,
            shrink_factor=None,
            success_rate=successes / len(ablation_results),
        )

    table.add_note(
        "Lemmas 1-2: phase-1 growth_factor should exceed 1 by a constant; "
        "Lemma 3: phase-2 shrink_factor (uninformed_before/uninformed_after) "
        "should exceed 1 by a constant; phase 3 is a single pull round."
    )
    return table
