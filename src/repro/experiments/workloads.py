"""Workload definitions shared by the experiments.

A *workload* here is the combination of graph parameters and protocol set an
experiment sweeps over.  Defaults come in two sizes:

* ``quick`` — small enough for the benchmark suite and CI (a few seconds per
  experiment);
* ``full`` — the sizes used for the numbers recorded in ``EXPERIMENTS.md``
  (minutes per experiment).

Keeping these in one module means every benchmark and every EXPERIMENTS.md
entry refers to the same, named parameter sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["SweepSizes", "quick_sizes", "full_sizes", "DEFAULT_DEGREE", "LARGE_DEGREE"]


#: Degree used by the "small degree" experiments (Algorithm 1 regime).
DEFAULT_DEGREE = 8

#: Degree used by the "large degree" experiments (Algorithm 2 regime,
#: ``d ≈ log₂ n`` for the default sweep sizes).
LARGE_DEGREE = 12


@dataclass(frozen=True)
class SweepSizes:
    """The ``n`` values and repetition count of one sweep tier."""

    sizes: List[int] = field(default_factory=list)
    repetitions: int = 3

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("a sweep needs at least one size")
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")


def quick_sizes() -> SweepSizes:
    """The small sweep used by benchmarks and tests."""
    return SweepSizes(sizes=[256, 512, 1024, 2048], repetitions=3)


def full_sizes() -> SweepSizes:
    """The larger sweep behind the EXPERIMENTS.md numbers."""
    return SweepSizes(sizes=[1024, 2048, 4096, 8192, 16384], repetitions=5)
