"""E5 — Push vs pull vs push&pull on the complete graph (Karp et al. picture).

The paper's introduction recounts the behaviour Karp et al. established for
complete graphs: push and pull both take ``Θ(log n)`` rounds to reach half the
nodes, but from there pull finishes in ``O(log log n)`` additional rounds
while push needs ``Θ(log n)`` more — so push&pull with the right termination
broadcasts with only ``O(n·log log n)`` transmissions, while push alone needs
``Θ(n·log n)``.

The experiment runs the three classical protocols on complete graphs and
reports rounds to completion, rounds until half the nodes are informed, the
length of the "tail" (completion minus half), and transmissions per node.
The expected shape: the tail of pull and push&pull is much shorter than the
tail of push and grows far more slowly with ``n``.

The size × protocol grid is declared as a :class:`ScenarioSpec` over the
``"complete"`` graph family.  Migration note: the previous hand-wired loop
derived run seeds from Python's builtin ``hash`` of the protocol name, which
is salted per process (``PYTHONHASHSEED``) — its numbers were never
reproducible across runs.  The spec path uses the stable
:func:`derive_seed` discipline, so E5 now reproduces bit-for-bit from its
``master_seed`` like every other experiment.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.metrics import RunResult
from ..spec.run import run_spec
from ..spec.scenario import GraphSpec, ProtocolSpec, ScenarioSpec, SweepAxis, SweepSpec
from .tables import Table

__all__ = ["run_experiment", "scenario"]

EXPERIMENT_ID = "E5"
TITLE = "E5 — push vs pull vs push&pull on complete graphs"

PROTOCOL_NAMES = ("push", "pull", "push-pull")


def _rounds_to_half(result: RunResult) -> Optional[int]:
    """First round after which at least half the nodes are informed."""
    for record in result.history:
        if record.informed_after >= result.n / 2:
            return record.round_index
    return None


def scenario(
    quick: bool = True,
    master_seed: int = 2008,
    sizes: Optional[List[int]] = None,
) -> ScenarioSpec:
    """The E5 complete-graph comparison as a declarative scenario record."""
    size_list = (
        tuple(sizes)
        if sizes is not None
        else ((128, 256, 512) if quick else (256, 512, 1024, 2048))
    )
    return ScenarioSpec(
        name="e5-push-vs-pull",
        graph=GraphSpec(family="complete", params={"n": size_list[0]}),
        protocol=ProtocolSpec(name=PROTOCOL_NAMES[0]),
        sweep=SweepSpec(
            axes=(
                SweepAxis(path="graph.params.n", values=size_list),
                SweepAxis(path="protocol.name", values=PROTOCOL_NAMES, key="protocol"),
            )
        ),
        repetitions=3 if quick else 5,
        master_seed=master_seed,
        label="e5-{protocol}",
    )


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    sizes: Optional[List[int]] = None,
) -> Table:
    """Run the complete-graph comparison."""
    spec = scenario(quick=quick, master_seed=master_seed, sizes=sizes)
    run = run_spec(spec)

    table = Table(
        title=TITLE,
        columns=[
            "protocol",
            "n",
            "rounds_mean",
            "rounds_to_half",
            "tail_rounds",
            "tx_per_node",
            "success_rate",
        ],
    )

    for point in run.points:
        aggregate = point.aggregate
        halves = [
            h for h in (_rounds_to_half(r) for r in point.results) if h is not None
        ]
        mean_half = sum(halves) / len(halves) if halves else float("nan")
        table.add_row(
            protocol=point.values["protocol"],
            n=point.values["n"],
            rounds_mean=aggregate.rounds.mean,
            rounds_to_half=mean_half,
            tail_rounds=aggregate.rounds.mean - mean_half,
            tx_per_node=aggregate.transmissions_per_node.mean,
            success_rate=aggregate.success_rate,
        )

    table.add_note(
        "Karp et al.: the pull/push&pull tail (rounds after half the nodes are "
        "informed) is O(log log n), while the push tail is Θ(log n); the "
        "transmissions-per-node gap follows the same pattern."
    )
    table.metadata["spec"] = spec.to_dict()
    return table
