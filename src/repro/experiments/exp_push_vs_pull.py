"""E5 — Push vs pull vs push&pull on the complete graph (Karp et al. picture).

The paper's introduction recounts the behaviour Karp et al. established for
complete graphs: push and pull both take ``Θ(log n)`` rounds to reach half the
nodes, but from there pull finishes in ``O(log log n)`` additional rounds
while push needs ``Θ(log n)`` more — so push&pull with the right termination
broadcasts with only ``O(n·log log n)`` transmissions, while push alone needs
``Θ(n·log n)``.

The experiment runs the three classical protocols on complete graphs and
reports rounds to completion, rounds until half the nodes are informed, the
length of the "tail" (completion minus half), and transmissions per node.
The expected shape: the tail of pull and push&pull is much shorter than the
tail of push and grows far more slowly with ``n``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.metrics import RunResult, aggregate_runs
from ..graphs.families import complete_graph
from ..protocols.pull import PullProtocol
from ..protocols.push import PushProtocol
from ..protocols.push_pull import PushPullProtocol
from .runner import repeat_broadcast
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E5"
TITLE = "E5 — push vs pull vs push&pull on complete graphs"


def _rounds_to_half(result: RunResult) -> Optional[int]:
    """First round after which at least half the nodes are informed."""
    for record in result.history:
        if record.informed_after >= result.n / 2:
            return record.round_index
    return None


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    sizes: Optional[List[int]] = None,
) -> Table:
    """Run the complete-graph comparison."""
    size_list = sizes if sizes is not None else ([128, 256, 512] if quick else [256, 512, 1024, 2048])
    repetitions = 3 if quick else 5

    table = Table(
        title=TITLE,
        columns=[
            "protocol",
            "n",
            "rounds_mean",
            "rounds_to_half",
            "tail_rounds",
            "tx_per_node",
            "success_rate",
        ],
    )

    protocols = {
        "push": lambda n: PushProtocol(n_estimate=n),
        "pull": lambda n: PullProtocol(n_estimate=n),
        "push-pull": lambda n: PushPullProtocol(n_estimate=n),
    }

    for n in size_list:
        graph = complete_graph(n)
        for name, factory in protocols.items():
            seeds = [master_seed + 100 * i + hash(name) % 97 for i in range(repetitions)]
            results = repeat_broadcast(
                graph=graph,
                protocol_factory=factory,
                n_estimate=n,
                seeds=seeds,
            )
            aggregate = aggregate_runs(results)
            halves = [h for h in (_rounds_to_half(r) for r in results) if h is not None]
            mean_half = sum(halves) / len(halves) if halves else float("nan")
            table.add_row(
                protocol=name,
                n=n,
                rounds_mean=aggregate.rounds.mean,
                rounds_to_half=mean_half,
                tail_rounds=aggregate.rounds.mean - mean_half,
                tx_per_node=aggregate.transmissions_per_node.mean,
                success_rate=aggregate.success_rate,
            )

    table.add_note(
        "Karp et al.: the pull/push&pull tail (rounds after half the nodes are "
        "informed) is O(log log n), while the push tail is Θ(log n); the "
        "transmissions-per-node gap follows the same pattern."
    )
    return table
