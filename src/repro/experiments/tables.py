"""Plain-text tables for experiment output.

Every experiment returns a :class:`Table`; benchmarks and the CLI print it.
The format is deliberately simple (fixed-width columns, no external
dependencies) so the output reads well inside pytest-benchmark logs and can be
diffed across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.errors import ExperimentError

__all__ = ["Table"]


@dataclass
class Table:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Table caption, e.g. ``"E1 — round complexity (d = 8)"``.
    columns:
        Ordered column names.
    rows:
        One dict per row; missing keys render as empty cells.
    notes:
        Free-text lines printed below the table (e.g. which scaling law fits
        best, or a pointer to the paper claim the table reproduces).
    metadata:
        Machine-readable provenance that travels with the saved table but is
        not rendered — most importantly ``metadata["spec"]``, the serialized
        :class:`repro.spec.ScenarioSpec` that reproduces the table.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append a row given as keyword arguments."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ExperimentError(
                f"row contains columns {sorted(unknown)} not in table {self.columns}"
            )
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-text note shown under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    # -- rendering -----------------------------------------------------------------

    @staticmethod
    def _format_cell(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Render the table (title, header, rows, notes) as a string."""
        formatted_rows = [
            [self._format_cell(row.get(column)) for column in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(column), *(len(r[i]) for r in formatted_rows))
            if formatted_rows
            else len(column)
            for i, column in enumerate(self.columns)
        ]
        header = " | ".join(
            column.ljust(widths[i]) for i, column in enumerate(self.columns)
        )
        separator = "-+-".join("-" * width for width in widths)
        lines = [self.title, "=" * len(self.title), header, separator]
        for row in formatted_rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """The rows as plain dictionaries (for programmatic consumption)."""
        return [dict(row) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
