"""Shared plumbing for running protocols over generated graphs.

The experiments all follow the same pattern: generate a few random regular
graphs, run one or more protocols with several seeds over each, and aggregate
the results.  :class:`ExperimentRunner` centralises graph caching (generating
a 16k-node regular graph is more expensive than broadcasting over it), seeding
discipline, and repetition so the individual experiment modules stay short and
declarative.

Multi-seed sweeps dispatch to the batched vectorized engine
(:func:`repro.core.engine.run_broadcast_batch`) whenever the single-run
vectorized-eligibility rules hold, which collapses the per-seed Python loop
into one ``(R, n)`` NumPy program without changing any result bit (each batch
row is bit-identical to the corresponding per-seed run).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..core.config import SimulationConfig
from ..core.engine import run_broadcast, run_broadcast_batch
from ..core.engine_vectorized import vectorization_unsupported_reason
from ..core.errors import ConfigurationError
from ..core.metrics import RunAggregate, RunResult, aggregate_runs
from ..core.rng import RandomSource, derive_seed
from ..failures.churn import ChurnModel
from ..failures.message_loss import FailureModel
from ..graphs.base import Graph
from ..graphs.configuration_model import connected_random_regular_graph
from ..graphs.registry import build_graph, graph_needs_rng
from ..protocols.base import BroadcastProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports tables)
    from ..dist.partition import ExpandedPoint
    from ..dist.progress import ProgressCallback
    from ..spec.run import PointRun, ScenarioRun
    from ..spec.scenario import GraphSpec, ScenarioSpec

__all__ = ["ProtocolFactory", "ExperimentRunner", "repeat_broadcast"]


#: A callable building a fresh protocol instance for a given size estimate.
ProtocolFactory = Callable[[int], BroadcastProtocol]


def repeat_broadcast(
    graph: Graph,
    protocol_factory: ProtocolFactory,
    n_estimate: int,
    seeds: List[int],
    config: Optional[SimulationConfig] = None,
    failure_model: Optional[FailureModel] = None,
    churn_factory: Optional[Callable[[], ChurnModel]] = None,
    source: int = 0,
    batch: bool = True,
) -> List[RunResult]:
    """Run the same protocol over the same graph once per seed.

    Multi-seed sweeps route through :func:`run_broadcast_batch` whenever the
    vectorized-eligibility rules hold (``batch=False`` disables this), which
    runs all repetitions as one ``(R, n)`` NumPy program; each returned
    result is bit-identical to the corresponding per-seed run.  Otherwise a
    fresh protocol instance is built per run (protocols may hold per-run
    state) and engine selection goes through :func:`run_broadcast`, so sweeps
    still pick up the vectorized fast path whenever the protocol and
    configuration allow it.  Churn sweeps never batch (membership diverges
    per replication) but do run per-seed on the single-run vectorized engine
    when the model and protocol opt in; the graph is copied per run only when
    a churn run lands on the scalar engine, which mutates it (the vectorized
    engine works on a private CSR copy).
    """
    cfg = config if config is not None else SimulationConfig()
    if batch and len(seeds) > 1 and churn_factory is None and cfg.engine != "scalar":
        protocol = protocol_factory(n_estimate)
        if (
            vectorization_unsupported_reason(graph, protocol, cfg, failure_model)
            is None
        ):
            return run_broadcast_batch(
                graph=graph,
                protocol=protocol,
                seeds=seeds,
                source=source,
                config=cfg,
                failure_model=failure_model,
            )
    results: List[RunResult] = []
    needs_graph_copy: Optional[bool] = None
    for seed in seeds:
        protocol = protocol_factory(n_estimate)
        churn_model = churn_factory() if churn_factory is not None else None
        if needs_graph_copy is None:
            needs_graph_copy = churn_model is not None and (
                cfg.engine == "scalar"
                or vectorization_unsupported_reason(
                    graph, protocol, cfg, failure_model, churn_model
                )
                is not None
            )
        results.append(
            run_broadcast(
                graph=graph.copy() if needs_graph_copy else graph,
                protocol=protocol,
                source=source,
                seed=seed,
                config=config,
                failure_model=failure_model,
                churn_model=churn_model,
            )
        )
    return results


@dataclass
class ExperimentRunner:
    """Graph-caching experiment driver.

    Parameters
    ----------
    master_seed:
        Root of all randomness; graphs and run seeds derive from it so an
        experiment is reproducible from this single number.
    repetitions:
        Number of independent broadcast runs per configuration.
    engine:
        Engine selection forwarded into every broadcast's
        :class:`SimulationConfig` (``"auto"`` | ``"scalar"`` |
        ``"vectorized"``).  ``"auto"`` leaves any caller-supplied config
        untouched.
    batch:
        Whether multi-seed sweeps may run on the batched vectorized engine
        (bit-identical to the per-seed loop; disable to force one run per
        engine invocation, e.g. when profiling single runs).
    """

    master_seed: int = 2008
    repetitions: int = 5
    engine: str = "auto"
    batch: bool = True

    def __post_init__(self) -> None:
        self._graph_cache: Dict[tuple, Graph] = {}
        #: Graphs actually constructed by this runner (cache misses).  The
        #: distributed executor reads it to report, per sweep, how many graph
        #: builds the worker pool performed in total.
        self.graph_builds: int = 0
        # Hoisted out of broadcast(): the engine-override config is identical
        # for every call without a caller config, so build it once instead of
        # running SimulationConfig.with_overrides per sweep point.
        self._engine_config = (
            SimulationConfig(engine=self.engine) if self.engine != "auto" else None
        )

    @classmethod
    def from_spec(cls, spec: "ScenarioSpec") -> "ExperimentRunner":
        """A runner configured exactly as ``spec``'s seed/engine knobs demand.

        The single construction path shared by ``run_spec``'s serial fast
        path, the distributed executor's workers, and the CLI — so the four
        call sites cannot drift apart in which knobs they forward.
        """
        return cls(
            master_seed=spec.master_seed,
            repetitions=spec.repetitions,
            engine=spec.engine,
            batch=spec.batch,
        )

    # -- graphs ---------------------------------------------------------------------

    def regular_graph(self, n: int, d: int, instance: int = 0) -> Graph:
        """A cached connected random d-regular graph on ``n`` nodes."""
        key = (n, d, instance)
        if key not in self._graph_cache:
            seed = derive_seed(self.master_seed, "graph", n, d, instance)
            rng = RandomSource(seed=seed, name=f"graph-{n}-{d}-{instance}")
            graph = connected_random_regular_graph(n, d, rng)
            # Pre-warm the CSR view while the graph is being cached, so
            # repeated (batched) runs never pay the adjacency export again.
            graph.csr()
            self.graph_builds += 1
            self._graph_cache[key] = graph
        return self._graph_cache[key]

    @staticmethod
    def graph_cache_key(graph_spec: "GraphSpec") -> tuple:
        """The cache identity of a spec's graph (family, params, instance).

        Two grid points with equal keys materialise the *same* graph, so the
        distributed executor groups them onto one worker (graph-first
        expansion): each (family, n, d, seed) graph is then built at most
        once across the whole pool instead of once per worker that happens
        to receive one of its points.
        """
        params = graph_spec.params
        if graph_spec.family == "connected-random-regular" and set(params) == {"n", "d"}:
            return (params["n"], params["d"], graph_spec.instance)
        return (
            graph_spec.family,
            tuple(sorted(params.items())),
            graph_spec.instance,
        )

    def run_seeds(self, label: str, count: Optional[int] = None) -> List[int]:
        """Deterministic per-configuration run seeds."""
        total = self.repetitions if count is None else count
        return [derive_seed(self.master_seed, "run", label, i) for i in range(total)]

    def _resolved_config(
        self, config: Optional[SimulationConfig]
    ) -> Optional[SimulationConfig]:
        """Apply the runner's engine override to a caller config.

        Shared by :meth:`broadcast` and :meth:`run_scenario` — the spec
        path's bit-parity guarantee depends on both resolving configs
        identically.
        """
        if self.engine == "auto":
            return config
        if config is None:
            return self._engine_config
        return config.with_overrides(engine=self.engine)

    # -- running ---------------------------------------------------------------------

    def broadcast(
        self,
        n: int,
        d: int,
        protocol_factory: ProtocolFactory,
        label: str,
        n_estimate: Optional[int] = None,
        config: Optional[SimulationConfig] = None,
        failure_model: Optional[FailureModel] = None,
        churn_factory: Optional[Callable[[], ChurnModel]] = None,
        repetitions: Optional[int] = None,
        source: int = 0,
    ) -> List[RunResult]:
        """Run ``protocol_factory`` over the cached ``(n, d)`` graph."""
        graph = self.regular_graph(n, d)
        seeds = self.run_seeds(f"{label}-{n}-{d}", repetitions)
        config = self._resolved_config(config)
        return repeat_broadcast(
            graph=graph,
            protocol_factory=protocol_factory,
            n_estimate=n_estimate if n_estimate is not None else n,
            seeds=seeds,
            config=config,
            failure_model=failure_model,
            churn_factory=churn_factory,
            source=source,
            batch=self.batch,
        )

    def broadcast_aggregate(
        self,
        n: int,
        d: int,
        protocol_factory: ProtocolFactory,
        label: str,
        **kwargs,
    ) -> RunAggregate:
        """Like :meth:`broadcast` but summarised across the repetitions."""
        return aggregate_runs(
            self.broadcast(n, d, protocol_factory, label, **kwargs)
        )

    # -- scenario specs ---------------------------------------------------------

    def spec_graph(self, graph_spec: "GraphSpec") -> Graph:
        """A cached graph materialised from a :class:`GraphSpec`.

        ``connected-random-regular`` specs with plain ``{n, d}`` parameters
        share the :meth:`regular_graph` cache *and* its seed derivation
        (``derive_seed(master, "graph", n, d, instance)``), so a spec-driven
        run builds the bit-identical graph a hand-wired experiment would.
        Every other family derives its seed from the family id, the instance,
        and the sorted parameter items.
        """
        params = graph_spec.params
        if graph_spec.family == "connected-random-regular" and set(params) == {"n", "d"}:
            return self.regular_graph(params["n"], params["d"], graph_spec.instance)
        key = self.graph_cache_key(graph_spec)
        if key not in self._graph_cache:
            rng = None
            if graph_needs_rng(graph_spec.family):
                seed = derive_seed(
                    self.master_seed,
                    "graph",
                    graph_spec.family,
                    graph_spec.instance,
                    *(f"{name}={value}" for name, value in sorted(params.items())),
                )
                rng = RandomSource(seed=seed, name=f"graph-{graph_spec.family}")
            graph = build_graph(graph_spec.family, rng=rng, **params)
            if graph.has_contiguous_ids():
                # Pre-warm the CSR view, mirroring regular_graph().
                graph.csr()
            self.graph_builds += 1
            self._graph_cache[key] = graph
        return self._graph_cache[key]

    def check_spec_knobs(self, spec: "ScenarioSpec") -> None:
        """Reject a spec whose seed/engine knobs differ from this runner's.

        Both feed the same derivations, so a mismatch would silently produce
        results belonging to a different scenario.
        """
        for attribute in ("master_seed", "engine", "batch"):
            if getattr(spec, attribute) != getattr(self, attribute):
                raise ConfigurationError(
                    f"scenario {attribute} ({getattr(spec, attribute)!r}) does not "
                    f"match this runner's ({getattr(self, attribute)!r}); build the "
                    "runner from the spec or use repro.spec.run_spec"
                )

    @staticmethod
    def seed_label_for(
        point_spec: "ScenarioSpec", label: str, node_count: Optional[int] = None
    ) -> Optional[str]:
        """The run-seed label of one resolved grid point.

        ``connected-random-regular`` points with plain ``{n, d}`` parameters
        use the hand-wired discipline of :meth:`broadcast`
        (``"{label}-{n}-{d}"``) and need no graph; every other family keys
        off the materialised node count — pass ``node_count`` for those, or
        receive ``None`` (the CLI dry-run uses that to show which points
        need a graph build before their seeds are known).
        """
        params = point_spec.graph.params
        if point_spec.graph.family == "connected-random-regular" and set(params) == {
            "n",
            "d",
        }:
            return f"{label}-{params['n']}-{params['d']}"
        if node_count is None:
            return None
        return f"{label}-{node_count}"

    def run_point(self, point: "ExpandedPoint") -> "PointRun":
        """Execute one expanded grid point (the distributable unit of work).

        Shared by the serial :meth:`run_scenario` loop and the worker side
        of :class:`repro.dist.ParallelScenarioExecutor` — the point's label
        keys all run seeds, so the results are bit-identical no matter which
        process (or host) executes it.  The point's fully-resolved spec is
        recorded in every ``RunResult.metadata["spec"]``.
        """
        from ..spec.run import PointRun

        spec = point.spec
        self.check_spec_knobs(spec)
        graph = self.spec_graph(spec.graph)
        seed_label = self.seed_label_for(spec, point.label, graph.node_count)
        seeds = self.run_seeds(seed_label, spec.repetitions)
        config = self._resolved_config(spec.simulation_config())
        results = repeat_broadcast(
            graph=graph,
            protocol_factory=spec.protocol.factory(),
            n_estimate=(
                spec.protocol.n_estimate
                if spec.protocol.n_estimate is not None
                else graph.node_count
            ),
            seeds=seeds,
            config=config,
            failure_model=spec.failure.build(),
            churn_factory=spec.churn.factory(),
            source=spec.source,
            batch=self.batch,
        )
        point_dict = spec.to_dict()
        for result in results:
            result.metadata["spec"] = copy.deepcopy(point_dict)
        return PointRun(
            index=point.index,
            values=dict(point.values),
            label=point.label,
            spec=spec,
            results=results,
        )

    def run_scenario(
        self,
        spec: "ScenarioSpec",
        progress: Optional["ProgressCallback"] = None,
    ) -> "ScenarioRun":
        """Spec-driven entry point: execute every grid point of ``spec``.

        The runner's own seed/engine knobs must match the spec's (they feed
        the same derivations); :func:`repro.spec.run_spec` constructs a
        matching runner automatically.  Grid expansion and per-point
        execution are shared with the parallel executor
        (:mod:`repro.dist`), which is what keeps the two paths
        bit-identical.  ``progress`` receives one
        :class:`~repro.dist.progress.PointProgress` per completed point.
        """
        from ..dist.partition import expand_points
        from ..dist.progress import PointProgress
        from ..spec.run import ScenarioRun

        self.check_spec_knobs(spec)
        run = ScenarioRun(spec=spec)
        points = expand_points(spec)
        for point in points:
            started = time.perf_counter()
            run.points.append(self.run_point(point))
            if progress is not None:
                progress(
                    PointProgress(
                        index=point.index,
                        total=len(points),
                        label=point.label,
                        elapsed_seconds=time.perf_counter() - started,
                    )
                )
        return run
