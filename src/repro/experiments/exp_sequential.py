"""E10 — The sequentialised memory variant vs the simultaneous model.

Footnote 2 of the paper: choosing four distinct neighbours at once is
equivalent (up to a factor-of-four stretch in time) to the sequential model in
which a node calls one neighbour per round, avoiding the partners contacted in
the previous three rounds.  The experiment runs both variants and reports
rounds, transmissions per node, and success rate.  Expected shape: the
sequential variant takes roughly four times as many rounds but a comparable
number of transmissions, and both complete reliably.
"""

from __future__ import annotations

from typing import Optional

from ..core.metrics import aggregate_runs
from ..protocols.algorithm1 import Algorithm1
from ..protocols.sequential import SequentialAlgorithm1
from .runner import ExperimentRunner
from .tables import Table
from .workloads import SweepSizes, full_sizes, quick_sizes

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E10"
TITLE = "E10 — simultaneous (4 distinct calls) vs sequential (memory 3) variant"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    degree: int = 8,
    sizes: Optional[SweepSizes] = None,
) -> Table:
    """Run the sequential-vs-simultaneous comparison."""
    sweep = sizes if sizes is not None else (quick_sizes() if quick else full_sizes())
    runner = ExperimentRunner(master_seed=master_seed, repetitions=sweep.repetitions)

    table = Table(
        title=f"{TITLE} (d = {degree})",
        columns=[
            "protocol",
            "n",
            "rounds_mean",
            "tx_per_node",
            "channels_per_node",
            "success_rate",
        ],
    )

    protocols = {
        "algorithm1": lambda n_est: Algorithm1(n_estimate=n_est),
        "algorithm1-sequential": lambda n_est: SequentialAlgorithm1(n_estimate=n_est),
    }

    for n in sweep.sizes:
        for name, factory in protocols.items():
            aggregate = aggregate_runs(
                runner.broadcast(n, degree, factory, label=f"e10-{name}")
            )
            table.add_row(
                protocol=name,
                n=n,
                rounds_mean=aggregate.rounds.mean,
                tx_per_node=aggregate.transmissions_per_node.mean,
                channels_per_node=aggregate.channels_per_node.mean,
                success_rate=aggregate.success_rate,
            )

    table.add_note(
        "Footnote 2 of the paper: four sequential memory-avoiding calls emulate "
        "one simultaneous four-distinct-call round, so rounds scale by ~4x while "
        "transmissions stay comparable."
    )
    return table
