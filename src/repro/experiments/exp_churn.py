"""E8 — Broadcasting while the network churns.

Paper claim (abstract): the algorithm "is robust against limited changes in
the size of the network".  The experiment runs Algorithm 1 while a
:class:`~repro.failures.churn.UniformChurn` model removes and adds peers every
round, and reports the fraction of the *surviving* peers that end up informed
(peers that joined mid-broadcast can only be reached while the message is
still being transmitted, so perfect coverage of late joiners is not expected —
in the replicated-database application they catch up from the next update or
an anti-entropy pass).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..failures.churn import UniformChurn
from ..protocols.algorithm1 import Algorithm1
from ..protocols.push_pull import PushPullProtocol
from .runner import ExperimentRunner
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E8"
TITLE = "E8 — broadcast under membership churn"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    churn_rates: Optional[List[Tuple[float, float]]] = None,
) -> Table:
    """Run the churn sweep; each entry is ``(leave_rate, join_rate)`` per round."""
    size = n if n is not None else (1024 if quick else 4096)
    rates = churn_rates if churn_rates is not None else [
        (0.0, 0.0),
        (0.005, 0.005),
        (0.01, 0.01),
        (0.02, 0.02),
    ]
    runner = ExperimentRunner(master_seed=master_seed, repetitions=3 if quick else 5)

    table = Table(
        title=f"{TITLE} (n = {size}, d = {degree})",
        columns=[
            "protocol",
            "leave_rate",
            "join_rate",
            "informed_fraction",
            "rounds_mean",
            "tx_per_node",
            "final_size_mean",
        ],
    )

    protocols = {
        "algorithm1": lambda n_est: Algorithm1(n_estimate=n_est),
        "push-pull": lambda n_est: PushPullProtocol(n_estimate=n_est),
    }

    for leave_rate, join_rate in rates:
        for name, factory in protocols.items():
            churn_factory = None
            if leave_rate > 0 or join_rate > 0:

                def churn_factory(lr=leave_rate, jr=join_rate):
                    return UniformChurn(leave_rate=lr, join_rate=jr, target_degree=degree)

            results = runner.broadcast(
                size,
                degree,
                factory,
                label=f"e8-{name}-{leave_rate}-{join_rate}",
                churn_factory=churn_factory,
            )
            # Extreme regimes can depopulate the network entirely; a run with
            # no survivors contributes 0.0 (nobody left to be informed)
            # instead of dividing by zero.
            informed_fraction = sum(
                (
                    r.final_informed / survivors
                    if (survivors := r.metadata.get("final_node_count", r.n)) > 0
                    else 0.0
                )
                for r in results
            ) / len(results)
            mean_rounds = sum(
                r.rounds_to_completion
                if r.rounds_to_completion is not None
                else r.rounds_executed
                for r in results
            ) / len(results)
            mean_tx = sum(r.transmissions_per_node for r in results) / len(results)
            mean_final_size = sum(
                r.metadata.get("final_node_count", r.n) for r in results
            ) / len(results)
            table.add_row(
                protocol=name,
                leave_rate=leave_rate,
                join_rate=join_rate,
                informed_fraction=informed_fraction,
                rounds_mean=mean_rounds,
                tx_per_node=mean_tx,
                final_size_mean=mean_final_size,
            )

    table.add_note(
        "informed_fraction counts informed peers among peers alive at the end; "
        "limited churn should leave it near 1.0 for algorithm1.  A run whose "
        "churn removes every peer reports informed_fraction = 0.0."
    )
    return table
