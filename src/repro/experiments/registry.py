"""Registry mapping experiment ids to their runner functions.

Benchmarks, the CLI, and EXPERIMENTS.md all refer to experiments by the same
short ids (``"E1"`` .. ``"E12"``); this module is the single source of truth
for that mapping.
"""

from __future__ import annotations

import inspect
from typing import Dict

from ..core.errors import ExperimentError
from . import (
    exp_choices_ablation,
    exp_churn,
    exp_counterexample,
    exp_degree_sweep,
    exp_lower_bound,
    exp_message_complexity,
    exp_p2p_db,
    exp_phase_dynamics,
    exp_push_vs_pull,
    exp_robustness,
    exp_round_complexity,
    exp_sequential,
)
from .tables import Table

__all__ = ["EXPERIMENTS", "run_experiment_by_id", "available_experiments"]


#: Experiment id -> (description, runner callable).
EXPERIMENTS: Dict[str, tuple] = {
    "E1": ("round complexity (O(log n) rounds)", exp_round_complexity.run_experiment),
    "E2": (
        "message complexity (O(n log log n) vs Θ(n log n))",
        exp_message_complexity.run_experiment,
    ),
    "E3": ("one-call lower bound Ω(n log n / log d)", exp_lower_bound.run_experiment),
    "E4": ("Algorithm 1 phase dynamics and α ablation", exp_phase_dynamics.run_experiment),
    "E5": ("push vs pull vs push&pull on complete graphs", exp_push_vs_pull.run_experiment),
    "E6": ("robustness to message loss", exp_robustness.run_experiment),
    "E7": ("robustness to size-estimate error", exp_robustness.run_experiment),
    "E8": ("broadcast under membership churn", exp_churn.run_experiment),
    "E9": ("fanout (number of choices) ablation", exp_choices_ablation.run_experiment),
    "E10": ("sequentialised memory variant", exp_sequential.run_experiment),
    "E11": ("replicated database over a P2P overlay", exp_p2p_db.run_experiment),
    "E12": ("degree sweep: Algorithm 1 vs Algorithm 2", exp_degree_sweep.run_experiment),
    "E13": ("counterexample: product with K5", exp_counterexample.run_experiment),
}


def available_experiments() -> Dict[str, str]:
    """Mapping of experiment id to its one-line description."""
    return {key: description for key, (description, _) in EXPERIMENTS.items()}


def run_experiment_by_id(experiment_id: str, quick: bool = True, **kwargs) -> Table:
    """Run one experiment by id and return its table.

    Keyword arguments are validated against the experiment's signature so
    an option only some experiments support (e.g. ``workers`` for the
    spec-driven parallel sweeps) fails with a clear message instead of a
    raw ``TypeError``.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    _, runner = EXPERIMENTS[key]
    accepted = inspect.signature(runner).parameters
    unsupported = sorted(set(kwargs) - set(accepted))
    if unsupported:
        raise ExperimentError(
            f"experiment {key} does not support option(s) "
            f"{', '.join(map(repr, unsupported))}; accepted: "
            f"{', '.join(accepted)}"
        )
    return runner(quick=quick, **kwargs)
