"""Experiment harness: runners, sweeps, tables, and the E1–E12 registry."""

from .registry import EXPERIMENTS, available_experiments, run_experiment_by_id
from .results_io import (
    ResultsIOError,
    load_table_json,
    save_table,
    save_table_csv,
    save_table_json,
)
from .runner import ExperimentRunner, repeat_broadcast
from .tables import Table
from .workloads import DEFAULT_DEGREE, LARGE_DEGREE, SweepSizes, full_sizes, quick_sizes

__all__ = [
    "Table",
    "ExperimentRunner",
    "repeat_broadcast",
    "SweepSizes",
    "quick_sizes",
    "full_sizes",
    "DEFAULT_DEGREE",
    "LARGE_DEGREE",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment_by_id",
    "save_table",
    "save_table_json",
    "save_table_csv",
    "load_table_json",
    "ResultsIOError",
]
