"""E9 — How many distinct choices per round are needed?

The paper proves that **four** distinct neighbours per round suffice for the
``O(n·log log n)`` transmission bound, conjectures that three are enough, and
leaves two as an open question (Section 1.2 and Conclusions); one choice is
provably insufficient (Theorem 1).  The experiment runs the Algorithm 1 phase
structure with fanout ``k ∈ {1, 2, 3, 4, 5}`` and reports success rate, rounds
and transmissions.  The mechanism the fanout feeds is visible in Phase 1: a
newly informed node pushes to ``k`` random neighbours, so the "epidemic
branching factor" is about ``k·(1 − informed fraction)`` — with ``k = 1`` the
process is subcritical and Phase 1 stalls, which the phase-1 informed count
column shows directly.

The fanout grid is declared as a :class:`ScenarioSpec` (one sweep axis over
``protocol.params.fanout``); execution through :func:`repro.spec.run_spec`
is bit-identical to the hand-wired loop this module used to contain.
"""

from __future__ import annotations

from typing import List, Optional

from ..spec.run import run_spec
from ..spec.scenario import GraphSpec, ProtocolSpec, ScenarioSpec, SweepAxis, SweepSpec
from .tables import Table

__all__ = ["run_experiment", "scenario"]

EXPERIMENT_ID = "E9"
TITLE = "E9 — fanout (number of distinct choices) ablation"


def scenario(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    fanouts: Optional[List[int]] = None,
) -> ScenarioSpec:
    """The E9 fanout ablation as a declarative scenario record."""
    size = n if n is not None else (1024 if quick else 8192)
    fanout_values = tuple(fanouts) if fanouts is not None else (1, 2, 3, 4, 5)
    return ScenarioSpec(
        name="e9-choices-ablation",
        graph=GraphSpec(
            family="connected-random-regular", params={"n": size, "d": degree}
        ),
        protocol=ProtocolSpec(name="algorithm1", params={"fanout": fanout_values[0]}),
        sweep=SweepSpec(
            axes=(SweepAxis(path="protocol.params.fanout", values=fanout_values),)
        ),
        repetitions=3 if quick else 5,
        master_seed=master_seed,
        label="e9-f{fanout}",
        config={"stop_when_informed": False},
    )


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    fanouts: Optional[List[int]] = None,
) -> Table:
    """Run the fanout ablation on the Algorithm 1 phase structure."""
    spec = scenario(
        quick=quick, master_seed=master_seed, n=n, degree=degree, fanouts=fanouts
    )
    run = run_spec(spec)
    size = spec.graph.params["n"]

    table = Table(
        title=f"{TITLE} (n = {size}, d = {degree})",
        columns=[
            "fanout",
            "success_rate",
            "rounds_mean",
            "tx_per_node",
            "informed_after_phase1",
        ],
    )

    for point in run.points:
        results = point.results
        aggregate = point.aggregate
        phase1_informed = []
        for result in results:
            phase1_rounds = [r for r in result.history if r.phase == "phase1"]
            if phase1_rounds:
                phase1_informed.append(phase1_rounds[-1].informed_after)
        completion_rounds = [
            float(r.rounds_to_completion)
            for r in results
            if r.rounds_to_completion is not None
        ]
        table.add_row(
            fanout=point.values["fanout"],
            success_rate=aggregate.success_rate,
            rounds_mean=(
                sum(completion_rounds) / len(completion_rounds)
                if completion_rounds
                else aggregate.rounds.mean
            ),
            tx_per_node=aggregate.transmissions_per_node.mean,
            informed_after_phase1=(
                sum(phase1_informed) / len(phase1_informed) if phase1_informed else 0
            ),
        )

    table.add_note(
        "Paper: 4 choices proven sufficient, 3 conjectured, 2 open, 1 provably "
        "expensive.  With fanout 1 the phase-1 epidemic is subcritical, visible "
        "in the informed_after_phase1 column."
    )
    table.metadata["spec"] = spec.to_dict()
    return table
