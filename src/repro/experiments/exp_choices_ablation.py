"""E9 — How many distinct choices per round are needed?

The paper proves that **four** distinct neighbours per round suffice for the
``O(n·log log n)`` transmission bound, conjectures that three are enough, and
leaves two as an open question (Section 1.2 and Conclusions); one choice is
provably insufficient (Theorem 1).  The experiment runs the Algorithm 1 phase
structure with fanout ``k ∈ {1, 2, 3, 4, 5}`` and reports success rate, rounds
and transmissions.  The mechanism the fanout feeds is visible in Phase 1: a
newly informed node pushes to ``k`` random neighbours, so the "epidemic
branching factor" is about ``k·(1 − informed fraction)`` — with ``k = 1`` the
process is subcritical and Phase 1 stalls, which the phase-1 informed count
column shows directly.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import SimulationConfig
from ..core.metrics import aggregate_runs
from ..protocols.algorithm1 import Algorithm1
from .runner import ExperimentRunner
from .tables import Table

__all__ = ["run_experiment"]

EXPERIMENT_ID = "E9"
TITLE = "E9 — fanout (number of distinct choices) ablation"


def run_experiment(
    quick: bool = True,
    master_seed: int = 2008,
    n: Optional[int] = None,
    degree: int = 8,
    fanouts: Optional[List[int]] = None,
) -> Table:
    """Run the fanout ablation on the Algorithm 1 phase structure."""
    size = n if n is not None else (1024 if quick else 8192)
    fanout_values = fanouts if fanouts is not None else [1, 2, 3, 4, 5]
    runner = ExperimentRunner(master_seed=master_seed, repetitions=3 if quick else 5)
    full_schedule = SimulationConfig(stop_when_informed=False)

    table = Table(
        title=f"{TITLE} (n = {size}, d = {degree})",
        columns=[
            "fanout",
            "success_rate",
            "rounds_mean",
            "tx_per_node",
            "informed_after_phase1",
        ],
    )

    for fanout in fanout_values:
        results = runner.broadcast(
            size,
            degree,
            lambda n_est, k=fanout: Algorithm1(n_estimate=n_est, fanout=k),
            label=f"e9-f{fanout}",
            config=full_schedule,
        )
        aggregate = aggregate_runs(results)
        phase1_informed = []
        for result in results:
            phase1_rounds = [r for r in result.history if r.phase == "phase1"]
            if phase1_rounds:
                phase1_informed.append(phase1_rounds[-1].informed_after)
        completion_rounds = [
            float(r.rounds_to_completion)
            for r in results
            if r.rounds_to_completion is not None
        ]
        table.add_row(
            fanout=fanout,
            success_rate=aggregate.success_rate,
            rounds_mean=(
                sum(completion_rounds) / len(completion_rounds)
                if completion_rounds
                else aggregate.rounds.mean
            ),
            tx_per_node=aggregate.transmissions_per_node.mean,
            informed_after_phase1=(
                sum(phase1_informed) / len(phase1_informed) if phase1_informed else 0
            ),
        )

    table.add_note(
        "Paper: 4 choices proven sufficient, 3 conjectured, 2 open, 1 provably "
        "expensive.  With fanout 1 the phase-1 epidemic is subcritical, visible "
        "in the informed_after_phase1 column."
    )
    return table
