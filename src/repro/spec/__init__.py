"""Declarative, serializable scenario specifications and their execution.

``repro.spec`` turns a whole run or sweep — graph family, protocol, failure
regime, sweep axes, seeds, engine knobs — into one JSON-serialisable record
(:class:`ScenarioSpec`) that users can write, diff, store, and sweep at
scale.  :func:`run_spec` executes a spec with the exact seeding discipline of
the hand-written experiments, so a scenario file reproduces an experiment
bit-for-bit.
"""

from .run import PointRun, ScenarioRun, run_spec
from .scenario import (
    SCENARIO_SCHEMA,
    ChurnSpec,
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    load_spec,
    save_spec,
)

__all__ = [
    "SCENARIO_SCHEMA",
    "GraphSpec",
    "ProtocolSpec",
    "FailureSpec",
    "ChurnSpec",
    "SweepAxis",
    "SweepSpec",
    "ScenarioSpec",
    "load_spec",
    "save_spec",
    "PointRun",
    "ScenarioRun",
    "run_spec",
]
