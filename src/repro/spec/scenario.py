"""Declarative scenario specifications.

One :class:`ScenarioSpec` is a complete, serialisable description of a
broadcast run or sweep: which graph family, which protocol, which failure
regime, which sweep axes, how many repetitions, and which seeds/engine knobs.
Scenarios are plain data — they round-trip through ``to_dict``/``from_dict``
and JSON, can be diffed and stored next to their results, and are validated
eagerly against the component registries
(:data:`repro.protocols.registry.PROTOCOLS`,
:data:`repro.graphs.registry.GRAPH_FAMILIES`,
:data:`repro.failures.registry.FAILURE_MODELS`) so a typo fails with a
:class:`ConfigurationError` naming the offending key before any compute is
spent.

Execution lives in :mod:`repro.spec.run` (:func:`run_spec`) and in
:meth:`repro.experiments.runner.ExperimentRunner.run_scenario`; the seeding
discipline there is bit-compatible with hand-wired
:class:`ExperimentRunner` calls, so a scenario file reproduces a hand-written
experiment exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

from ..core.config import SimulationConfig
from ..core.errors import ConfigurationError
from ..core.rng import RandomSource
from ..failures.churn import ChurnModel
from ..failures.churn_registry import CHURN_MODELS, build_churn_model
from ..failures.message_loss import FailureModel
from ..failures.registry import FAILURE_MODELS, build_failure_model
from ..graphs.base import Graph
from ..graphs.registry import GRAPH_FAMILIES, build_graph
from ..protocols.base import BroadcastProtocol
from ..protocols.registry import PROTOCOLS, build_protocol

__all__ = [
    "SCENARIO_SCHEMA",
    "GraphSpec",
    "ProtocolSpec",
    "FailureSpec",
    "ChurnSpec",
    "SweepAxis",
    "SweepSpec",
    "ScenarioSpec",
    "load_spec",
    "save_spec",
]

#: Format tag written into serialized scenarios; bumped on breaking changes.
SCENARIO_SCHEMA = "repro.scenario/1"

#: SimulationConfig fields a spec's ``config`` block may override.  ``engine``
#: is deliberately excluded — it is a first-class spec field.
_CONFIG_FIELDS = tuple(
    name for name in SimulationConfig.__dataclass_fields__ if name != "engine"
)


def _require_mapping(value: object, what: str) -> Dict[str, object]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ConfigurationError(f"{what} must be a mapping, got {type(value).__name__}")
    return dict(value)


def _reject_unknown_keys(data: Mapping, allowed: Tuple[str, ...], what: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"{what} has unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}"
        )


@dataclass(frozen=True)
class GraphSpec:
    """Which topology to build, by registry id.

    Attributes
    ----------
    family:
        A :data:`GRAPH_FAMILIES` id, e.g. ``"connected-random-regular"``.
    params:
        Keyword arguments for the family's builder (``n``, ``d``, ``p``, ...).
        Validated against the builder's signature at construction time.
    instance:
        Index of the graph instance; distinct instances of the same family
        and parameters receive independent generation seeds.
    """

    family: str
    params: Dict[str, object] = field(default_factory=dict)
    instance: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        GRAPH_FAMILIES.validate_kwargs(self.family, self.params, reserved=("rng",))
        missing = GRAPH_FAMILIES.missing_required(
            self.family, self.params, reserved=("rng",)
        )
        if missing:
            raise ConfigurationError(
                f"graph family {self.family!r} is missing required parameter(s) "
                f"{', '.join(map(repr, missing))}"
            )
        if not isinstance(self.instance, int) or self.instance < 0:
            raise ConfigurationError(
                f"graph instance must be a non-negative int, got {self.instance!r}"
            )

    def build(self, rng: Optional[RandomSource] = None) -> Graph:
        """Materialise the graph through the graph-family registry."""
        return build_graph(self.family, rng=rng, **self.params)

    def to_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "params": dict(self.params),
            "instance": self.instance,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "GraphSpec":
        data = _require_mapping(data, "graph spec")
        _reject_unknown_keys(data, ("family", "params", "instance"), "graph spec")
        if "family" not in data:
            raise ConfigurationError("graph spec is missing the 'family' field")
        return cls(
            family=data["family"],
            params=_require_mapping(data.get("params"), "graph params"),
            instance=data.get("instance", 0),
        )


@dataclass(frozen=True)
class ProtocolSpec:
    """Which protocol to run, by registry id.

    Attributes
    ----------
    name:
        A :data:`PROTOCOLS` id, e.g. ``"algorithm1"``.
    params:
        Constructor kwargs beyond ``n_estimate`` (``alpha``, ``fanout``, ...).
    n_estimate:
        Explicit network-size estimate handed to the protocol.  ``None``
        (default) uses the true node count of the materialised graph — set it
        to model the paper's inaccurate-estimate regime (experiment E7).
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    n_estimate: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        PROTOCOLS.validate_kwargs(self.name, self.params, reserved=("n_estimate",))
        if self.n_estimate is not None and (
            not isinstance(self.n_estimate, int) or self.n_estimate < 2
        ):
            raise ConfigurationError(
                f"protocol n_estimate must be an int >= 2 or null, got {self.n_estimate!r}"
            )

    def build(self, default_estimate: int) -> BroadcastProtocol:
        """Instantiate the protocol (``n_estimate`` falls back to the graph size)."""
        estimate = self.n_estimate if self.n_estimate is not None else default_estimate
        return build_protocol(self.name, estimate, **self.params)

    def factory(self):
        """A ``ProtocolFactory`` closure as used by :func:`repeat_broadcast`."""
        return lambda n_est: self.build(n_est)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "n_estimate": self.n_estimate,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProtocolSpec":
        data = _require_mapping(data, "protocol spec")
        _reject_unknown_keys(data, ("name", "params", "n_estimate"), "protocol spec")
        if "name" not in data:
            raise ConfigurationError("protocol spec is missing the 'name' field")
        return cls(
            name=data["name"],
            params=_require_mapping(data.get("params"), "protocol params"),
            n_estimate=data.get("n_estimate"),
        )


@dataclass(frozen=True)
class FailureSpec:
    """Which failure regime applies, by registry id.

    ``"reliable"`` (the default) materialises to *no* failure model, which is
    bit-identical to the hand-wired ``failure_model=None`` convention of the
    experiment modules.
    """

    model: str = "reliable"
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        FAILURE_MODELS.validate_kwargs(self.model, self.params)

    def build(self) -> Optional[FailureModel]:
        """The failure model instance, or ``None`` for plain ``"reliable"``."""
        if self.model == "reliable" and not self.params:
            return None
        return build_failure_model(self.model, **self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"model": self.model, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FailureSpec":
        data = _require_mapping(data, "failure spec")
        _reject_unknown_keys(data, ("model", "params"), "failure spec")
        return cls(
            model=data.get("model", "reliable"),
            params=_require_mapping(data.get("params"), "failure params"),
        )


@dataclass(frozen=True)
class ChurnSpec:
    """Which membership regime applies, by churn-registry id.

    ``"none"`` (the default) materialises to *no* churn model, which is
    bit-identical to the hand-wired ``churn_model=None`` convention — static
    scenarios stay on the static fast paths (including the batched engine).
    Any other id names a :data:`CHURN_MODELS` entry; its params are validated
    against the model's constructor at spec-construction time.
    """

    model: str = "none"
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        CHURN_MODELS.validate_kwargs(self.model, self.params)
        missing = CHURN_MODELS.missing_required(self.model, self.params)
        if missing:
            raise ConfigurationError(
                f"churn model {self.model!r} is missing required parameter(s) "
                f"{', '.join(map(repr, missing))}"
            )

    def build(self) -> Optional[ChurnModel]:
        """The churn model instance, or ``None`` for plain ``"none"``."""
        if self.model == "none" and not self.params:
            return None
        return build_churn_model(self.model, **self.params)

    def factory(self):
        """A zero-arg churn-model factory, or ``None`` for plain ``"none"``.

        The experiment runner builds one model per run on the scalar path
        (churn mutates the graph there), so specs hand it a factory rather
        than an instance.
        """
        if self.model == "none" and not self.params:
            return None
        return lambda: build_churn_model(self.model, **self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"model": self.model, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChurnSpec":
        data = _require_mapping(data, "churn spec")
        _reject_unknown_keys(data, ("model", "params"), "churn spec")
        return cls(
            model=data.get("model", "none"),
            params=_require_mapping(data.get("params"), "churn params"),
        )


def _validate_axis_path(path: str) -> Tuple[str, ...]:
    """Check a sweep-axis path and return its segments."""
    parts = tuple(path.split("."))
    exact_paths = (
        ("graph", "instance"),
        ("protocol", "name"),
        ("protocol", "n_estimate"),
        ("failure", "model"),
        ("churn", "model"),
    )
    ok = (
        len(parts) == 3
        and parts[0] in ("graph", "protocol", "failure", "churn")
        and parts[1] == "params"
    ) or parts in exact_paths
    if not ok:
        raise ConfigurationError(
            f"invalid sweep-axis path {path!r}; expected one of "
            "'graph.params.<key>', 'graph.instance', 'protocol.name', "
            "'protocol.params.<key>', 'protocol.n_estimate', 'failure.model', "
            "'failure.params.<key>', 'churn.model', or 'churn.params.<key>'"
        )
    return parts


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a dotted spec path and the values it takes.

    Attributes
    ----------
    path:
        Where the axis writes into the scenario, e.g. ``"graph.params.n"``,
        ``"protocol.name"``, ``"failure.params.transmission_loss_probability"``.
    values:
        The values the axis iterates over (at least one).
    key:
        Short name used in label templates and result tables; defaults to the
        last path segment (``"n"``, ``"name"``, ...).
    """

    path: str
    values: Tuple[object, ...]
    key: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_axis_path(self.path)
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError(f"sweep axis {self.path!r} has no values")

    @property
    def label_key(self) -> str:
        return self.key if self.key is not None else self.path.rsplit(".", 1)[-1]

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "values": list(self.values), "key": self.key}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepAxis":
        data = _require_mapping(data, "sweep axis")
        _reject_unknown_keys(data, ("path", "values", "key"), "sweep axis")
        for required in ("path", "values"):
            if required not in data:
                raise ConfigurationError(f"sweep axis is missing the {required!r} field")
        return cls(path=data["path"], values=tuple(data["values"]), key=data.get("key"))


@dataclass(frozen=True)
class SweepSpec:
    """A full factorial grid over one or more :class:`SweepAxis` dimensions.

    The grid is expanded row-major: the first axis is the outermost loop,
    matching the nesting order of the hand-written experiment sweeps.
    """

    axes: Tuple[SweepAxis, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "axes",
            tuple(
                axis if isinstance(axis, SweepAxis) else SweepAxis.from_dict(axis)
                for axis in self.axes
            ),
        )
        if not self.axes:
            raise ConfigurationError("a sweep needs at least one axis")
        keys = [axis.label_key for axis in self.axes]
        duplicates = sorted({key for key in keys if keys.count(key) > 1})
        if duplicates:
            raise ConfigurationError(
                f"sweep axes have duplicate label key(s) {', '.join(map(repr, duplicates))}; "
                "set distinct 'key' values"
            )

    @property
    def size(self) -> int:
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def points(self) -> Iterator[Dict[str, object]]:
        """Yield one ``{path: value}`` mapping per grid point, row-major."""

        def expand(index: int, current: Dict[str, object]) -> Iterator[Dict[str, object]]:
            if index == len(self.axes):
                yield dict(current)
                return
            axis = self.axes[index]
            for value in axis.values:
                current[axis.path] = value
                yield from expand(index + 1, current)
            current.pop(axis.path, None)

        yield from expand(0, {})

    def to_dict(self) -> Dict[str, object]:
        return {"axes": [axis.to_dict() for axis in self.axes]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        data = _require_mapping(data, "sweep spec")
        _reject_unknown_keys(data, ("axes",), "sweep spec")
        axes = data.get("axes")
        if not isinstance(axes, (list, tuple)):
            raise ConfigurationError("sweep spec 'axes' must be a list")
        return cls(axes=tuple(SweepAxis.from_dict(axis) for axis in axes))


@dataclass(frozen=True)
class ScenarioSpec:
    """One serializable record describing a broadcast run or sweep.

    Attributes
    ----------
    name:
        Scenario id; used as the default table title and label template.
    graph / protocol / failure / churn:
        The component specs (see :class:`GraphSpec`, :class:`ProtocolSpec`,
        :class:`FailureSpec`, :class:`ChurnSpec`).
    sweep:
        Optional grid of :class:`SweepAxis` dimensions; ``None`` runs the
        single configured point.
    repetitions:
        Independent runs (seeds) per grid point.
    master_seed:
        Root of all randomness — graph seeds and run seeds derive from it
        with the same discipline as :class:`ExperimentRunner`, so a scenario
        is reproducible from this one number.
    label:
        Per-point run-label template, formatted with the axis keys plus
        ``{scenario}``, ``{protocol}``, ``{family}`` and every graph /
        protocol / failure parameter (e.g. ``"e1-{protocol}"``).  The label
        feeds the run-seed derivation, so it is part of the reproducibility
        contract.  ``None`` uses the scenario name.
    engine / batch:
        Execution knobs, forwarded to :class:`ExperimentRunner`.
    config:
        :class:`SimulationConfig` overrides (``stop_when_informed``,
        ``max_rounds``, ``message_loss_probability``, ...).  ``engine`` is not
        allowed here — it is a first-class field.
    source:
        Broadcast source node id.
    """

    name: str
    graph: GraphSpec
    protocol: ProtocolSpec
    failure: FailureSpec = field(default_factory=FailureSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    sweep: Optional[SweepSpec] = None
    repetitions: int = 3
    master_seed: int = 2008
    label: Optional[str] = None
    engine: str = "auto"
    batch: bool = True
    config: Dict[str, object] = field(default_factory=dict)
    source: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("scenario name must be a non-empty string")
        if not isinstance(self.repetitions, int) or self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be a positive int, got {self.repetitions!r}"
            )
        if self.engine not in ("auto", "scalar", "vectorized"):
            raise ConfigurationError(
                f"engine must be 'auto', 'scalar', or 'vectorized', got {self.engine!r}"
            )
        object.__setattr__(self, "config", dict(self.config))
        if "engine" in self.config:
            raise ConfigurationError(
                "config override 'engine' is not allowed; set the spec's "
                "top-level 'engine' field instead"
            )
        unknown = sorted(set(self.config) - set(_CONFIG_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown config override(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(_CONFIG_FIELDS)}"
            )

    # -- sweep expansion --------------------------------------------------------

    def resolve_point(self, values: Mapping[str, object]) -> "ScenarioSpec":
        """The single-point spec obtained by writing ``{path: value}`` entries.

        The returned spec has no sweep; constructing it re-validates the
        substituted ids and kwargs, so an invalid grid point fails with a
        precise :class:`ConfigurationError`.
        """
        data = self.to_dict()
        data["sweep"] = None
        for path, value in values.items():
            parts = _validate_axis_path(path)
            target = data
            for part in parts[:-1]:
                target = target[part]
            target[parts[-1]] = value
        return ScenarioSpec.from_dict(data)

    def expand(self) -> Iterator[Tuple[Dict[str, object], "ScenarioSpec"]]:
        """Yield ``(axis key -> value, resolved single-point spec)`` per point."""
        if self.sweep is None:
            yield {}, self
            return
        key_by_path = {axis.path: axis.label_key for axis in self.sweep.axes}
        for point in self.sweep.points():
            values = {key_by_path[path]: value for path, value in point.items()}
            yield values, self.resolve_point(point)

    # -- labels -----------------------------------------------------------------

    def label_context(self, extra: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """The mapping available to the label template for this (point) spec."""
        context: Dict[str, object] = {}
        context.update(self.graph.params)
        context.update(self.failure.params)
        context.update(self.protocol.params)
        context.update(self.churn.params)
        context.update(
            scenario=self.name,
            family=self.graph.family,
            protocol=self.protocol.name,
            model=self.failure.model,
            churn=self.churn.model,
        )
        if self.protocol.n_estimate is not None:
            context["n_estimate"] = self.protocol.n_estimate
        if extra:
            context.update(extra)
        return context

    def run_label(self, extra: Optional[Mapping[str, object]] = None) -> str:
        """Format the label template for this (point) spec."""
        template = self.label if self.label is not None else self.name
        context = self.label_context(extra)
        try:
            return template.format_map(context)
        except KeyError as error:
            raise ConfigurationError(
                f"label template {template!r} references unknown key {error.args[0]!r}; "
                f"available: {', '.join(sorted(map(str, context)))}"
            ) from None

    # -- config -----------------------------------------------------------------

    def simulation_config(self) -> Optional[SimulationConfig]:
        """The override config, or ``None`` when the defaults apply.

        Returning ``None`` for an empty override block keeps the execution
        path literally identical to hand-wired calls that pass no config.
        """
        if not self.config:
            return None
        return SimulationConfig(**self.config)

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "graph": self.graph.to_dict(),
            "protocol": self.protocol.to_dict(),
            "failure": self.failure.to_dict(),
            "churn": self.churn.to_dict(),
            "sweep": self.sweep.to_dict() if self.sweep is not None else None,
            "repetitions": self.repetitions,
            "master_seed": self.master_seed,
            "label": self.label,
            "engine": self.engine,
            "batch": self.batch,
            "config": dict(self.config),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        data = _require_mapping(data, "scenario spec")
        _reject_unknown_keys(
            data,
            (
                "schema",
                "name",
                "graph",
                "protocol",
                "failure",
                "churn",
                "sweep",
                "repetitions",
                "master_seed",
                "label",
                "engine",
                "batch",
                "config",
                "source",
            ),
            "scenario spec",
        )
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ConfigurationError(
                f"unsupported scenario schema {schema!r}; this build reads "
                f"{SCENARIO_SCHEMA!r}"
            )
        for required in ("name", "graph", "protocol"):
            if required not in data:
                raise ConfigurationError(
                    f"scenario spec is missing the {required!r} field"
                )
        sweep_data = data.get("sweep")
        return cls(
            name=data["name"],
            graph=GraphSpec.from_dict(data["graph"]),
            protocol=ProtocolSpec.from_dict(data["protocol"]),
            failure=FailureSpec.from_dict(data.get("failure", {})),
            churn=ChurnSpec.from_dict(data.get("churn", {})),
            sweep=SweepSpec.from_dict(sweep_data) if sweep_data is not None else None,
            repetitions=data.get("repetitions", 3),
            master_seed=data.get("master_seed", 2008),
            label=data.get("label"),
            engine=data.get("engine", "auto"),
            batch=data.get("batch", True),
            config=_require_mapping(data.get("config"), "config overrides"),
            source=data.get("source", 0),
        )

    def to_json(self, indent: int = 2) -> str:
        """The spec as pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"scenario JSON is malformed: {error}") from error
        return cls.from_dict(data)


PathLike = Union[str, Path]


def load_spec(path: PathLike) -> ScenarioSpec:
    """Read a :class:`ScenarioSpec` from a JSON file."""
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read scenario file {source}: {error}") from error
    return ScenarioSpec.from_json(text)


def save_spec(spec: ScenarioSpec, path: PathLike) -> Path:
    """Write ``spec`` to ``path`` as JSON; returns the resolved path."""
    destination = Path(path)
    destination.write_text(spec.to_json() + "\n")
    return destination
