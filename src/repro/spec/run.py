"""Executing scenario specs.

:func:`run_spec` is the one-call entry point: it builds an
:class:`ExperimentRunner` from the spec's seed/engine knobs and dispatches
every grid point through the runner's spec-driven entry point
(:meth:`ExperimentRunner.run_scenario`), which routes into
``repeat_broadcast`` / ``run_broadcast_batch`` with the exact seeding
discipline the hand-written experiments use — a spec-driven run is
bit-identical to the equivalent hand-wired call.

The result is a :class:`ScenarioRun`: one :class:`PointRun` per grid point
with the fully-resolved single-point spec (also recorded in every
``RunResult.metadata["spec"]``), the per-seed results, and helpers to
summarise everything as a :class:`Table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Union

from ..core.metrics import RunAggregate, RunResult, aggregate_runs
from .scenario import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments use specs)
    from ..dist.checkpoint import PathLike
    from ..dist.partition import ShardLike
    from ..dist.progress import ProgressCallback
    from ..dist.resilience import RetryPolicy
    from ..experiments.tables import Table
    from ..faultinject.plan import FaultPlan

__all__ = ["PointRun", "ScenarioRun", "build_scenario_table", "run_spec"]


@dataclass
class PointRun:
    """Results of one grid point of a scenario.

    Attributes
    ----------
    index:
        Position of the point in row-major grid order.
    values:
        Axis key -> value for this point (empty for sweep-less scenarios).
    label:
        The formatted run label (feeds the run-seed derivation).
    spec:
        The fully-resolved single-point :class:`ScenarioSpec` that reproduces
        exactly this point's results.
    results:
        One :class:`RunResult` per repetition.
    """

    index: int
    values: Dict[str, object]
    label: str
    spec: ScenarioSpec
    results: List[RunResult] = field(default_factory=list)

    @property
    def aggregate(self) -> RunAggregate:
        """Summary statistics across the point's repetitions."""
        return aggregate_runs(self.results)


@dataclass
class ScenarioRun:
    """All grid points of one executed scenario.

    ``provenance`` is populated by the distributed executor (worker count,
    shard layout, resume statistics, wall-clock); it stays empty for plain
    serial runs, and :meth:`to_table` copies it into
    ``Table.metadata["distributed"]`` so saved tables record how they were
    produced.  Provenance never feeds any computation — the point results
    of a distributed run are bit-identical to the serial ones.
    """

    spec: ScenarioSpec
    points: List[PointRun] = field(default_factory=list)
    provenance: Dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def results(self) -> List[RunResult]:
        """Every run result across all points, in grid order."""
        return [result for point in self.points for result in point.results]

    def to_table(self) -> "Table":
        """A generic summary table: one row per grid point."""
        return build_scenario_table(self.spec, self.points, self.provenance)


def build_scenario_table(
    spec: ScenarioSpec,
    points: Iterable[PointRun],
    provenance: Optional[Dict[str, object]] = None,
) -> "Table":
    """One summary row per grid point, consuming ``points`` as a stream.

    This is the single table-construction path shared by
    :meth:`ScenarioRun.to_table` and the streaming sink's
    :func:`repro.dist.sink.streamed_table`: it touches each
    :class:`PointRun` exactly once and keeps none of them, so a table over
    a million-point stream costs one point's results at a time.  Identical
    inputs produce identical tables regardless of which path built them.
    """
    from ..experiments.tables import Table

    axis_keys = (
        [axis.label_key for axis in spec.sweep.axes]
        if spec.sweep is not None
        else []
    )
    table = Table(
        title=f"scenario: {spec.name}",
        columns=axis_keys
        + ["runs", "success_rate", "rounds_mean", "rounds_max", "tx_per_node"],
    )
    engines = set()
    for point in points:
        aggregate = point.aggregate
        table.add_row(
            **point.values,
            runs=aggregate.runs,
            success_rate=aggregate.success_rate,
            rounds_mean=aggregate.rounds.mean,
            rounds_max=aggregate.rounds.maximum,
            tx_per_node=aggregate.transmissions_per_node.mean,
        )
        engines.update(
            str(result.metadata.get("engine", "scalar"))
            for result in point.results
        )
    table.add_note(
        f"master seed {spec.master_seed}, "
        f"{spec.repetitions} repetition(s) per point, "
        f"engine: {', '.join(sorted(engines))}"
    )
    provenance = provenance or {}
    failures = provenance.get("failures") or []
    if failures:
        labels = ", ".join(str(f.get("label", f.get("index"))) for f in failures)
        table.add_note(
            f"{len(failures)} point(s) quarantined after repeated "
            f"failures and excluded from this table: {labels}"
        )
    table.metadata["spec"] = spec.to_dict()
    if provenance:
        table.metadata["distributed"] = dict(provenance)
    return table


def run_spec(
    spec: ScenarioSpec,
    *,
    workers: Optional[int] = None,
    shard: Optional["ShardLike"] = None,
    points: Optional[Union[slice, Iterable[int]]] = None,
    checkpoint_dir: Optional["PathLike"] = None,
    stream_dir: Optional["PathLike"] = None,
    fsync_every: int = 1,
    stream_durable: bool = True,
    resume: bool = False,
    progress: Optional["ProgressCallback"] = None,
    retry: Optional["RetryPolicy"] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> ScenarioRun:
    """Execute ``spec`` and return one :class:`PointRun` per grid point.

    Expands the sweep grid row-major (first axis outermost), materialises
    graphs/protocols/failure models through the registries, and runs every
    point's repetitions through the batched multi-seed engine whenever the
    vectorized-eligibility rules hold.  Seeds derive from
    ``spec.master_seed`` with the :class:`ExperimentRunner` discipline, so
    results are bit-identical to the equivalent hand-wired runner calls.

    Distributed knobs (all optional; see :mod:`repro.dist`):

    * ``workers`` — fan the grid points out over that many worker processes;
      the merged result is bit-identical to the serial run.
    * ``shard`` — ``"i/k"`` (or ``(i, k)``): run only shard ``i`` of ``k``
      of the grid; merge shard runs with :func:`repro.dist.merge_runs`.
    * ``points`` — a :class:`slice` or collection of grid indices to run.
    * ``checkpoint_dir`` / ``resume`` — write one checkpoint file per
      completed point / skip points already checkpointed there.
    * ``stream_dir`` / ``fsync_every`` / ``stream_durable`` — append every
      completed point to a crash-safe streaming sink
      (:class:`repro.dist.StreamingResultSink`) instead of holding results
      in memory: records are checksummed and fsync'd every ``fsync_every``
      appends, a ``kill -9`` resumes (``resume=True``) from exactly what
      reached the disk, and ``ENOSPC`` raises a resumable
      :class:`repro.dist.SinkFullError`.  ``stream_durable=False`` skips
      fsyncs (tests, tmpfs).
    * ``progress`` — per-point completion callback
      (:class:`repro.dist.PointProgress`), honoured by both paths.
    * ``retry`` — recovery semantics (:class:`repro.dist.RetryPolicy`):
      per-point retry budget/backoff/timeout, quarantine, pool-restart
      budget, serial fallback.  Passing one routes the run through the
      resilient executor even without ``workers``.
    * ``fault_plan`` — deterministic fault injection
      (:class:`repro.faultinject.FaultPlan`); test machinery.
    """
    from ..experiments.runner import ExperimentRunner

    if (
        workers is None
        and shard is None
        and points is None
        and checkpoint_dir is None
        and stream_dir is None
        and not resume
        and retry is None
        and fault_plan is None
    ):
        return ExperimentRunner.from_spec(spec).run_scenario(spec, progress=progress)

    from ..dist.executor import ParallelScenarioExecutor
    from ..dist.resilience import RetryPolicy

    executor = ParallelScenarioExecutor(
        workers=workers if workers is not None else 1,
        checkpoint_dir=checkpoint_dir,
        stream_dir=stream_dir,
        fsync_every=fsync_every,
        stream_durable=stream_durable,
        resume=resume,
        progress=progress,
        retry=retry if retry is not None else RetryPolicy(),
        fault_plan=fault_plan,
    )
    return executor.run(spec, shard=shard, points=points)
