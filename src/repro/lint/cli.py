"""The ``repro lint`` sub-command.

Exit codes follow the convention CI gates expect:

* ``0`` — no (non-suppressed, non-baselined) findings;
* ``1`` — findings were reported;
* ``2`` — the invocation itself was invalid (unknown rule id, missing
  baseline file, bad path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from ..core.errors import ConfigurationError
from .baseline import apply_baseline, load_baseline, write_baseline
from .diagnostics import render_json, render_text
from .engine import DEFAULT_TARGETS, Linter
from .rule import LINT_RULES, all_rules, rules_by_id

__all__ = ["add_lint_parser", "run_lint"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    """Attach the ``lint`` sub-command to the main CLI's subparsers."""
    lint = subparsers.add_parser(
        "lint",
        help="check the determinism contracts behind the bit-parity guarantees",
        description=(
            "AST-based static analysis of the repo's determinism contracts: "
            "RNG discipline, seed stability, vector-hook completeness, "
            "pickle-boundary safety, durability discipline, and exception "
            "hygiene.  Zero findings means the invariants every bit-parity "
            "guarantee rests on hold structurally."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: "
            + ", ".join(DEFAULT_TARGETS)
            + " under --root)"
        ),
    )
    lint.add_argument(
        "--root",
        default=".",
        help="directory findings are reported relative to (default: cwd)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    lint.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json"],
        help="report format (json is the schema the CI gate and baselines use)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help=(
            "committed baseline JSON to diff against; findings accounted for "
            "there are masked and only new ones fail the run"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline JSON file and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return lint


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id} ({rule.slug}): {rule.summary}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute the ``lint`` sub-command; returns the process exit code."""
    if args.list_rules:
        return _list_rules()

    try:
        rules = (
            rules_by_id([part.strip() for part in args.rules.split(",") if part.strip()])
            if args.rules
            else None
        )
    except ConfigurationError as error:
        print(f"lint: {error}", file=sys.stderr)
        print(f"lint: known rules: {', '.join(LINT_RULES.names())}", file=sys.stderr)
        return 2

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"lint: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2

    if args.paths:
        targets: List[Path] = [Path(part) for part in args.paths]
        for target in targets:
            candidate = target if target.is_absolute() else root / target
            if not candidate.exists():
                print(f"lint: path {target} does not exist", file=sys.stderr)
                return 2
    else:
        targets = [root / part for part in DEFAULT_TARGETS if (root / part).exists()]
        if not targets:
            print(
                f"lint: none of the default targets ({', '.join(DEFAULT_TARGETS)}) "
                f"exist under {root}",
                file=sys.stderr,
            )
            return 2

    linter = Linter(rules=rules, root=root)
    report = linter.lint_paths(targets)

    if args.write_baseline:
        destination = write_baseline(report, Path(args.write_baseline))
        print(
            f"lint: wrote baseline with {len(report.diagnostics)} finding(s) "
            f"to {destination}",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"lint: baseline {args.baseline} not found", file=sys.stderr)
            return 2
        try:
            report = apply_baseline(report, load_baseline(baseline_path))
        except (ValueError, KeyError) as error:
            print(f"lint: unreadable baseline {args.baseline}: {error}", file=sys.stderr)
            return 2

    if args.output_format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1
