"""The lint driver: file discovery, zone classification, rule execution.

The engine never imports the code it checks — everything is :mod:`ast` over
source text — so it can lint broken branches, runs with no third-party
dependencies, and is immune to import-time side effects.  A run is two
passes: first every file is parsed and all class definitions are indexed
(cross-file base-class resolution for the vector-hook contract), then each
rule that patrols the file's zone walks its tree.  Findings are filtered
through the file's ``# lint: disable=`` comments and reported in a stable
``(path, line, col, rule)`` order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .diagnostics import Diagnostic, LintReport
from .rule import (
    ClassIndex,
    LintContext,
    Rule,
    ZONE_BENCHMARKS,
    ZONE_EXAMPLES,
    ZONE_PACKAGE,
    ZONE_TESTS,
    all_rules,
)
from .suppressions import collect_suppressions, is_suppressed

# Ensure the built-in rules are registered before all_rules() is consulted.
from . import rules as _builtin_rules  # noqa: F401  (import for side effect)

__all__ = ["Linter", "classify_zone", "DEFAULT_TARGETS", "SYNTAX_RULE_ID"]

#: Directories linted when the CLI is given no explicit paths.
DEFAULT_TARGETS = ("src/repro", "benchmarks", "examples")

#: Pseudo-rule id reported when a file cannot be parsed at all.
SYNTAX_RULE_ID = "SYN000"


def classify_zone(relpath: str) -> str:
    """Map a repo-relative posix path onto the zone the rules reason about."""
    parts = relpath.split("/")
    for index in range(len(parts) - 1):
        if parts[index] == "src" and parts[index + 1] == "repro":
            return ZONE_PACKAGE
    head = parts[0]
    if head == "benchmarks":
        return ZONE_BENCHMARKS
    if head == "examples":
        return ZONE_EXAMPLES
    if head == "tests":
        return ZONE_TESTS
    return "other"


@dataclass
class _FileEntry:
    relpath: str
    zone: str
    source: str
    tree: Optional[ast.Module]
    error: Optional[SyntaxError]


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    yield from sorted(p for p in path.rglob("*.py") if p.is_file())


class Linter:
    """Runs a rule set over files or in-memory sources.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to every registered rule.
    root:
        Directory paths are resolved and reported relative to; defaults to
        the current working directory.  Files outside ``root`` are reported
        with their absolute path (and land in zone ``"other"``, which no
        shipped rule patrols).
    """

    def __init__(
        self, rules: Optional[Sequence[Rule]] = None, root: Optional[Path] = None
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.root = (root or Path.cwd()).resolve()

    # -- entry points -------------------------------------------------------

    def lint_paths(self, paths: Sequence[Path]) -> LintReport:
        """Lint every ``.py`` file under ``paths`` (files or directories)."""
        sources: Dict[str, str] = {}
        for path in paths:
            resolved = Path(path)
            if not resolved.is_absolute():
                resolved = self.root / resolved
            for file_path in _iter_python_files(resolved):
                sources[self._relpath(file_path)] = file_path.read_text(
                    encoding="utf-8"
                )
        return self.lint_sources(sources)

    def lint_sources(self, sources: Mapping[str, str]) -> LintReport:
        """Lint in-memory ``{relpath: source}`` pairs (fixture-friendly)."""
        entries: List[_FileEntry] = []
        index = ClassIndex()
        for relpath in sorted(sources):
            source = sources[relpath]
            zone = classify_zone(relpath)
            try:
                tree = ast.parse(source, filename=relpath)
            except SyntaxError as error:
                entries.append(_FileEntry(relpath, zone, source, None, error))
                continue
            entries.append(_FileEntry(relpath, zone, source, tree, None))
            if zone == ZONE_PACKAGE:
                index.add_tree(tree, relpath)

        report = LintReport(files_checked=len(entries))
        for entry in entries:
            report.diagnostics.extend(self._lint_entry(entry, index, report))
        report.diagnostics.sort()
        return report

    # -- internals ----------------------------------------------------------

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def _lint_entry(
        self, entry: _FileEntry, index: ClassIndex, report: LintReport
    ) -> List[Diagnostic]:
        if entry.error is not None:
            return [
                Diagnostic(
                    path=entry.relpath,
                    line=entry.error.lineno or 1,
                    col=entry.error.offset or 1,
                    rule=SYNTAX_RULE_ID,
                    message=f"file does not parse: {entry.error.msg}",
                    hint="fix the syntax error; no rule ran on this file",
                )
            ]
        assert entry.tree is not None
        ctx = LintContext(
            relpath=entry.relpath,
            zone=entry.zone,
            tree=entry.tree,
            source=entry.source,
            classes=index,
        )
        suppressions = collect_suppressions(entry.source)
        findings: List[Diagnostic] = []
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            for diagnostic in rule.check(ctx):
                if is_suppressed(diagnostic.rule, diagnostic.line, suppressions):
                    report.suppressed += 1
                else:
                    findings.append(diagnostic)
        return findings
