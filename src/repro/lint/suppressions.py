"""Parsing of ``# lint: disable=RULE-ID`` suppression comments.

Grammar (whitespace-tolerant)::

    # lint: disable=SEED001
    # lint: disable=SEED001,DUR001 -- reason the violation is deliberate
    # lint: disable=all -- escape hatch, suppresses every rule on the line

A suppression masks findings **on its own line**; a comment that stands alone
on a line (nothing but whitespace before the ``#``) instead masks the next
line that holds code, so multi-clause statements can carry an explanation
above rather than a trailing comment squeezed past the line-length limit.

Comments are located with :mod:`tokenize` rather than string search, so a
``"# lint: disable=..."`` inside a string literal is never treated as a
suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

__all__ = ["collect_suppressions", "is_suppressed", "SUPPRESS_ALL"]

#: Token accepted in place of a rule id to suppress every rule.
SUPPRESS_ALL = "all"

_DIRECTIVE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_*,\s-]+?)(?:\s+--\s+(?P<reason>.*))?$"
)


def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number to the rule ids suppressed on that line."""
    suppressions: Dict[int, Set[str]] = {}
    pending: Dict[int, Set[str]] = {}  # own-line directives awaiting their target
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions

    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if not match:
            continue
        ids = {
            part.strip()
            for part in match.group(1).replace("*", SUPPRESS_ALL).split(",")
            if part.strip()
        }
        if not ids:
            continue
        row, col = token.start
        before = lines[row - 1][:col] if row - 1 < len(lines) else ""
        if before.strip():
            suppressions.setdefault(row, set()).update(ids)
        else:
            pending.setdefault(row, set()).update(ids)

    # Own-line directives attach to the next line carrying actual code.
    for row in sorted(pending):
        target = row + 1
        while target <= len(lines):
            stripped = lines[target - 1].strip()
            if stripped and not stripped.startswith("#"):
                break
            target += 1
        suppressions.setdefault(target, set()).update(pending[row])
    return suppressions


def is_suppressed(rule_id: str, line: int, suppressions: Dict[int, Set[str]]) -> bool:
    """True if ``rule_id`` is masked at ``line``."""
    active = suppressions.get(line)
    if not active:
        return False
    return rule_id in active or SUPPRESS_ALL in active
