"""Diagnostic records and report rendering for the determinism linter.

A :class:`Diagnostic` pins one contract violation to an exact source
location (``path:line:col``), names the rule that fired, and carries a fix
hint so the finding is actionable without opening the rule's documentation.
Reports render either as human-readable text (one line per finding, the
``file:line:col: RULE-ID message`` shape editors and CI annotations parse)
or as a stable JSON document (``schema_version`` gated, used by the CI gate
and by ``--baseline`` files).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

__all__ = [
    "LINT_SCHEMA_VERSION",
    "Diagnostic",
    "LintReport",
    "render_text",
    "render_json",
    "parse_report",
    "sorted_diagnostics",
]

#: Version stamp of the JSON report format (and therefore of baseline files).
#: Bump on any backwards-incompatible change to the document shape.
LINT_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, what is wrong, and how to fix it.

    Ordering is lexicographic on ``(path, line, col, rule)`` so reports are
    deterministic regardless of rule execution order.
    """

    path: str  #: repo-relative posix path of the offending file
    line: int  #: 1-based source line
    col: int  #: 1-based source column
    rule: str  #: rule id, e.g. ``"SEED001"``
    message: str
    hint: str = ""

    def render(self) -> str:
        """The canonical one-line text form: ``path:line:col: RULE message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Diagnostic":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            rule=str(payload["rule"]),
            message=str(payload.get("message", "")),
            hint=str(payload.get("hint", "")),
        )


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0  #: findings masked by ``# lint: disable=`` comments
    baselined: int = 0  #: findings masked by a ``--baseline`` file

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def counts(self) -> Dict[str, int]:
        """Findings per rule id, sorted by id."""
        counter = Counter(diag.rule for diag in self.diagnostics)
        return {rule: counter[rule] for rule in sorted(counter)}

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "clean": self.clean,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "counts": self.counts(),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }


def render_text(report: LintReport) -> str:
    """Human-readable report: one diagnostic per line plus a summary line."""
    lines = [diag.render() for diag in report.diagnostics]
    if report.clean:
        summary = f"clean: {report.files_checked} file(s), no findings"
    else:
        per_rule = ", ".join(
            f"{rule} x{count}" for rule, count in report.counts().items()
        )
        summary = (
            f"{len(report.diagnostics)} finding(s) in "
            f"{report.files_checked} file(s) ({per_rule})"
        )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += f" [{', '.join(extras)}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report (also the ``--write-baseline`` format)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=False)


def parse_report(text: str) -> LintReport:
    """Parse a JSON report produced by :func:`render_json` (baseline loading)."""
    payload = json.loads(text)
    version = payload.get("schema_version")
    if version != LINT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report schema_version {version!r} "
            f"(this build reads version {LINT_SCHEMA_VERSION})"
        )
    report = LintReport(
        diagnostics=[
            Diagnostic.from_dict(entry) for entry in payload.get("diagnostics", [])
        ],
        files_checked=int(payload.get("files_checked", 0)),
        suppressed=int(payload.get("suppressed", 0)),
        baselined=int(payload.get("baselined", 0)),
    )
    report.diagnostics.sort()
    return report


def sorted_diagnostics(diags: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Diagnostics in canonical report order."""
    return sorted(diags)
