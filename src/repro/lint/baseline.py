"""Baseline files: land new rules warn-first without blocking CI.

A baseline is simply a committed JSON lint report (the exact document
``repro lint --format json`` prints, written by ``--write-baseline``).  When
a run is given ``--baseline file.json``, findings already accounted for in
the baseline are masked and only the *excess* fails the gate, so a freshly
added rule with pre-existing violations can ship enforcing "no new
violations" while the backlog is burned down.

Matching is per ``(path, rule)`` count rather than per exact line: edits
above a known violation move its line number, and a line-keyed baseline
would misreport that drift as one new finding plus one fixed.  Within a
``(path, rule)`` group the *first* ``n`` findings in line order are masked —
if the group's count grows, the report shows the trailing (newest-looking)
locations.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .diagnostics import Diagnostic, LintReport, parse_report, render_json

__all__ = ["load_baseline", "apply_baseline", "write_baseline"]

BaselineCounts = Counter  # (path, rule) -> allowed findings


def load_baseline(path: Path) -> "Counter[Tuple[str, str]]":
    """Per-``(path, rule)`` allowance counts from a committed baseline file."""
    report = parse_report(Path(path).read_text(encoding="utf-8"))
    counts: Counter = Counter()
    for diagnostic in report.diagnostics:
        counts[(diagnostic.path, diagnostic.rule)] += 1
    return counts


def apply_baseline(
    report: LintReport, counts: "Counter[Tuple[str, str]]"
) -> LintReport:
    """Mask baselined findings; only the excess remains in the report."""
    grouped: Dict[Tuple[str, str], List[Diagnostic]] = {}
    for diagnostic in report.diagnostics:  # already in (path, line) order
        grouped.setdefault((diagnostic.path, diagnostic.rule), []).append(diagnostic)
    kept: List[Diagnostic] = []
    masked = 0
    for key, diagnostics in grouped.items():
        allowed = counts.get(key, 0)
        masked += min(allowed, len(diagnostics))
        kept.extend(diagnostics[allowed:])
    kept.sort()
    return LintReport(
        diagnostics=kept,
        files_checked=report.files_checked,
        suppressed=report.suppressed,
        baselined=report.baselined + masked,
    )


def write_baseline(report: LintReport, path: Path) -> Path:
    """Write ``report`` as the new committed baseline; returns the path."""
    destination = Path(path)
    destination.write_text(render_json(report) + "\n", encoding="utf-8")
    return destination
