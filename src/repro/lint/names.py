"""Import-alias tracking and dotted-name resolution for lint rules.

Several rules ban *modules* (``random``, ``numpy.random``) or *callables*
(``time.time``, ``datetime.datetime.now``) rather than syntactic spellings,
so a call site must be resolved through whatever aliases the file's imports
introduced: ``import numpy as np`` makes ``np.random.default_rng(...)`` a
``numpy.random`` use, ``from time import time as now`` makes ``now()`` a
``time.time`` use.  :class:`ImportMap` records those bindings and
:func:`resolve_call_name` turns a call's function expression back into the
fully-qualified dotted name the rules match against.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["ImportMap", "dotted_parts", "resolve_call_name"]


class ImportMap:
    """Mapping of locally-bound names to the dotted origin they refer to."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def collect(self, tree: ast.AST) -> "ImportMap":
        """Record every import binding in ``tree`` (at any nesting depth)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        # ``import numpy.random as nr`` binds nr -> numpy.random
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *root* name numpy
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never reach the banned stdlib names
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"
        return self

    def resolve(self, parts: List[str]) -> str:
        """Expand the leading segment of ``parts`` through the alias table."""
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])


def dotted_parts(node: ast.expr) -> Optional[List[str]]:
    """The ``["a", "b", "c"]`` chain of an ``a.b.c`` expression, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def resolve_call_name(call: ast.Call, imports: ImportMap) -> Optional[str]:
    """Fully-qualified dotted name of ``call``'s function, when resolvable."""
    parts = dotted_parts(call.func)
    if parts is None:
        return None
    return imports.resolve(parts)
