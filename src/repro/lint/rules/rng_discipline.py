"""RNG001 — all randomness must flow through ``RandomSource`` / ``derive_seed``.

Invariant: every stochastic draw in the simulator comes from a named child
stream of the master seed (:mod:`repro.core.rng`), so a run is a pure
function of ``(seed, parameters)`` and adding draws in one component cannot
perturb another.  Direct use of ``random``, ``numpy.random``, ``os.urandom``,
``secrets``, or ``uuid`` creates entropy outside that tree and silently
breaks batch/parallel/resume bit-parity.  ``core/rng.py`` is the one module
allowed to touch the underlying generators.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..names import ImportMap, resolve_call_name
from ..rule import (
    ZONE_BENCHMARKS,
    ZONE_EXAMPLES,
    ZONE_PACKAGE,
    LintContext,
    Rule,
    register_rule,
)

__all__ = ["RngDisciplineRule"]

#: Modules whose import alone is a finding (their whole API is off-limits).
_BANNED_MODULES = {"random", "secrets", "uuid"}

#: Dotted prefixes whose *calls* are findings.
_BANNED_PREFIXES = ("random.", "numpy.random.", "secrets.", "uuid.")

#: Exact dotted callables that are findings.
_BANNED_CALLS = {"os.urandom"}

#: The one module allowed to construct generators.
_EXEMPT_FILES = {"src/repro/core/rng.py"}


@register_rule
class RngDisciplineRule(Rule):
    id = "RNG001"
    slug = "rng-discipline"
    summary = (
        "all randomness flows through RandomSource/derive_seed; direct "
        "random/numpy.random/os.urandom/secrets/uuid use breaks bit-parity"
    )
    hint = (
        "draw from a RandomSource child stream (rng.spawn(label)) or derive a "
        "seed with repro.core.rng.derive_seed; only core/rng.py touches "
        "numpy.random directly"
    )
    zones = frozenset({ZONE_PACKAGE, ZONE_BENCHMARKS, ZONE_EXAMPLES})

    def applies_to(self, ctx: LintContext) -> bool:
        return super().applies_to(ctx) and ctx.relpath not in _EXEMPT_FILES

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        imports = ImportMap().collect(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"import of {alias.name!r} bypasses the "
                            "RandomSource seed discipline",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue
                root = node.module.split(".")[0]
                if root in _BANNED_MODULES or node.module == "numpy.random":
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"import from {node.module!r} bypasses the "
                        "RandomSource seed discipline",
                    )
                else:
                    for alias in node.names:
                        full = f"{node.module}.{alias.name}"
                        if full == "numpy.random":
                            yield self.diagnostic(
                                ctx,
                                node,
                                "import of numpy.random bypasses the "
                                "RandomSource seed discipline",
                            )
                        elif full == "os.urandom":
                            yield self.diagnostic(
                                ctx,
                                node,
                                "import of os.urandom draws OS entropy outside "
                                "the seed tree",
                            )
            elif isinstance(node, ast.Call):
                name = resolve_call_name(node, imports)
                if name is None:
                    continue
                if name in _BANNED_CALLS or name.startswith(_BANNED_PREFIXES):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"call to {name}() draws randomness outside the "
                        "RandomSource stream tree",
                    )
