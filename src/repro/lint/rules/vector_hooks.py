"""VEC001 — capability flags must come with their ``vector_*`` hook methods.

Invariant: the vectorized engines trust three opt-in class flags.
``supports_vectorized = True`` promises the bulk decision hooks
(``vector_fanout`` / ``vector_wants_push`` / ``vector_wants_pull``) agree
node-for-node with the scalar ones; ``uses_index_pools = True`` promises at
least one index-pool hook (``vector_push_samplers`` / ``vector_caller_pool``)
actually exists, otherwise the flag silently buys nothing; and
``has_custom_vector_targets = True`` promises a ``vector_call_targets``
implementation.  A flag without its hooks either crashes mid-sweep (the base
class stubs raise) or — worse — runs a different draw sequence than the
scalar engine and breaks parity.  The check is structural, at class
definition level, resolving base classes *by name across the whole linted
file set* so hooks provided by an intermediate base in another module count.

Raising stubs do not count as implementations, and neither does anything
defined on the class that *declares* the flag with a ``False`` default (the
abstract interface, i.e. ``BroadcastProtocol``): the contract must be
discharged below its root.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..rule import ZONE_PACKAGE, LintContext, Rule, register_rule

__all__ = ["VectorHookContractRule"]

#: flag -> (mode, required method names); ``all`` needs every name, ``any``
#: needs at least one.
_CONTRACTS = {
    "supports_vectorized": (
        "all",
        ("vector_fanout", "vector_wants_push", "vector_wants_pull"),
    ),
    "uses_index_pools": (
        "any",
        ("vector_push_samplers", "vector_caller_pool"),
    ),
    "has_custom_vector_targets": ("all", ("vector_call_targets",)),
}


@register_rule
class VectorHookContractRule(Rule):
    id = "VEC001"
    slug = "vector-hook-contract"
    summary = (
        "a class setting supports_vectorized/uses_index_pools/"
        "has_custom_vector_targets must concretely define the matching "
        "vector_* hooks (in itself or a non-abstract base)"
    )
    hint = (
        "implement the missing vector_* hook(s) so the bulk engines run the "
        "same draw sequence as the scalar path, or drop the capability flag"
    )
    zones = frozenset({ZONE_PACKAGE})

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            records = [
                rec
                for rec in ctx.classes.definitions(node.name)
                if rec.relpath == ctx.relpath and rec.lineno == node.lineno
            ]
            if not records:
                continue
            record = records[0]
            for flag, (mode, required) in _CONTRACTS.items():
                declared = record.flags.get(flag)
                if declared is None or declared[0] is not True:
                    continue
                provided = set()
                for ancestor in ctx.classes.ancestry(record, stop_flag=flag):
                    provided.update(
                        name
                        for name, concrete in ancestor.methods.items()
                        if concrete
                    )
                missing = [name for name in required if name not in provided]
                satisfied = (
                    not missing if mode == "all" else len(missing) < len(required)
                )
                if satisfied:
                    continue
                wanted = (
                    " and ".join(missing)
                    if mode == "all"
                    else " or ".join(required)
                )
                _, lineno, col = declared
                yield self.diagnostic(
                    ctx,
                    node,
                    f"class {node.name} sets {flag} = True but defines no "
                    f"concrete {wanted}",
                    line=lineno,
                    col=col,
                )
