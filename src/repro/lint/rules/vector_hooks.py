"""VEC001 — capability flags must come with their ``vector_*`` hook methods.

Invariant: the vectorized engines trust the opt-in class flags.
``supports_vectorized = True`` on a protocol promises the bulk decision hooks
(``vector_fanout`` / ``vector_wants_push`` / ``vector_wants_pull``) agree
node-for-node with the scalar ones; the *same flag name* on a churn model
(any class descending from ``ChurnModel``) promises the bulk membership hook
``vector_apply`` instead — the rule selects the contract variant by ancestry.
``uses_index_pools = True`` promises at least one index-pool hook
(``vector_push_samplers`` / ``vector_caller_pool``) actually exists,
otherwise the flag silently buys nothing; and
``has_custom_vector_targets = True`` promises a ``vector_call_targets``
implementation.  A flag without its hooks either crashes mid-sweep (the base
class stubs raise) or — worse — runs a different draw sequence than the
scalar engine and breaks parity.  The check is structural, at class
definition level, resolving base classes *by name across the whole linted
file set* so hooks provided by an intermediate base in another module count.

Raising stubs do not count as implementations, and neither does anything
defined on the class that *declares* the flag with a ``False`` default (the
abstract interface, i.e. ``BroadcastProtocol`` or ``ChurnModel``): the
contract must be discharged below its root.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..rule import ZONE_PACKAGE, LintContext, Rule, register_rule

__all__ = ["VectorHookContractRule"]

#: flag -> (mode, required method names); ``all`` needs every name, ``any``
#: needs at least one.
_CONTRACTS = {
    "supports_vectorized": (
        "all",
        ("vector_fanout", "vector_wants_push", "vector_wants_pull"),
    ),
    "uses_index_pools": (
        "any",
        ("vector_push_samplers", "vector_caller_pool"),
    ),
    "has_custom_vector_targets": ("all", ("vector_call_targets",)),
}

#: Contract variants keyed by the ancestor class that re-scopes the flag.
#: ``supports_vectorized`` on a churn model opts into the vectorized
#: engine's *membership* surface, whose only hook is ``vector_apply``.
_SCOPED_CONTRACTS = {
    "ChurnModel": {
        "supports_vectorized": ("all", ("vector_apply",)),
    },
}


def _descends_from(ctx: LintContext, record, root_name: str) -> bool:
    """True if ``record`` (or any name-resolvable ancestor) is ``root_name``."""
    seen = set()
    queue = [record]
    while queue:
        current = queue.pop(0)
        key = (current.relpath, current.name, current.lineno)
        if key in seen:
            continue
        seen.add(key)
        if current.name == root_name:
            return True
        for base in current.bases:
            if base == root_name:
                return True
            queue.extend(ctx.classes.definitions(base))
    return False


@register_rule
class VectorHookContractRule(Rule):
    id = "VEC001"
    slug = "vector-hook-contract"
    summary = (
        "a class setting supports_vectorized/uses_index_pools/"
        "has_custom_vector_targets must concretely define the matching "
        "vector_* hooks (in itself or a non-abstract base)"
    )
    hint = (
        "implement the missing vector_* hook(s) so the bulk engines run the "
        "same draw sequence as the scalar path, or drop the capability flag"
    )
    zones = frozenset({ZONE_PACKAGE})

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            records = [
                rec
                for rec in ctx.classes.definitions(node.name)
                if rec.relpath == ctx.relpath and rec.lineno == node.lineno
            ]
            if not records:
                continue
            record = records[0]
            contracts = dict(_CONTRACTS)
            for root_name, overrides in _SCOPED_CONTRACTS.items():
                if _descends_from(ctx, record, root_name):
                    contracts.update(overrides)
            for flag, (mode, required) in contracts.items():
                declared = record.flags.get(flag)
                if declared is None or declared[0] is not True:
                    continue
                provided = set()
                for ancestor in ctx.classes.ancestry(record, stop_flag=flag):
                    provided.update(
                        name
                        for name, concrete in ancestor.methods.items()
                        if concrete
                    )
                missing = [name for name in required if name not in provided]
                satisfied = (
                    not missing if mode == "all" else len(missing) < len(required)
                )
                if satisfied:
                    continue
                wanted = (
                    " and ".join(missing)
                    if mode == "all"
                    else " or ".join(required)
                )
                _, lineno, col = declared
                yield self.diagnostic(
                    ctx,
                    node,
                    f"class {node.name} sets {flag} = True but defines no "
                    f"concrete {wanted}",
                    line=lineno,
                    col=col,
                )
