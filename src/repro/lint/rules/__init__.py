"""The shipped determinism-contract rules.

Importing this package registers every built-in rule in
:data:`repro.lint.rule.LINT_RULES`; adding a rule is one module with a
``@register_rule`` class plus an import line here (and a docs subsection —
``tests/test_lint.py`` asserts the registry and ``docs/API.md`` §11 agree).
"""

from __future__ import annotations

from .durability_discipline import DurabilityDisciplineRule
from .exception_hygiene import ExceptionHygieneRule
from .pickle_boundary import PickleBoundaryRule
from .rng_discipline import RngDisciplineRule
from .seed_stability import SeedStabilityRule
from .vector_hooks import VectorHookContractRule

__all__ = [
    "DurabilityDisciplineRule",
    "ExceptionHygieneRule",
    "PickleBoundaryRule",
    "RngDisciplineRule",
    "SeedStabilityRule",
    "VectorHookContractRule",
]
