"""EXC001 — failure paths keep typed exceptions; nothing is silently swallowed.

Invariant: the fault-tolerance machinery (``repro.dist``) is a contract
about *which* exceptions mean what — ``PointFailure`` records carry the
original type name, ``BrokenExecutor`` triggers pool restarts,
``SinkFullError`` / ``SweepInterrupted`` map to specific exit codes, and the
torn-tail recovery distinguishes checksum failures from I/O errors.  A bare
``except:`` (which also eats ``KeyboardInterrupt`` / ``SystemExit`` and
breaks the clean-shutdown path) or an ``except Exception: pass`` in that
subsystem erases exactly the type information the recovery semantics are
built on.

The rule flags bare ``except:`` clauses everywhere it patrols, and —
inside ``src/repro/dist/`` — ``except Exception`` / ``except BaseException``
handlers whose body does nothing but ``pass`` / ``continue`` / ``...``.
Deliberate best-effort teardown sites (e.g. terminating an already-dead
worker process) carry ``# lint: disable=EXC001 -- reason`` annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..rule import (
    ZONE_BENCHMARKS,
    ZONE_EXAMPLES,
    ZONE_PACKAGE,
    LintContext,
    Rule,
    register_rule,
)

__all__ = ["ExceptionHygieneRule"]

_RECOVERY_PREFIX = "src/repro/dist/"
_BROAD_TYPES = {"Exception", "BaseException"}


def _is_broad(annotation: ast.expr) -> bool:
    """True if the handler catches Exception/BaseException (incl. in tuples)."""
    if isinstance(annotation, ast.Name):
        return annotation.id in _BROAD_TYPES
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _BROAD_TYPES
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True if the handler body only passes/continues (no record, no re-raise)."""
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring / ellipsis
        return False
    return True


@register_rule
class ExceptionHygieneRule(Rule):
    id = "EXC001"
    slug = "exception-hygiene"
    summary = (
        "no bare except:, and no swallowed except Exception in the "
        "repro.dist recovery paths — typed failures are the contract"
    )
    hint = (
        "catch the specific exception type the contract names, or record the "
        "failure; deliberate best-effort teardown needs "
        "'# lint: disable=EXC001 -- reason'"
    )
    zones = frozenset({ZONE_PACKAGE, ZONE_BENCHMARKS, ZONE_EXAMPLES})

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        in_recovery_path = ctx.relpath.startswith(_RECOVERY_PREFIX)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt and "
                    "hides the failure type",
                )
            elif in_recovery_path and _is_broad(node.type) and _swallows(node):
                caught = (
                    node.type.id
                    if isinstance(node.type, ast.Name)
                    else "a broad exception"
                )
                yield self.diagnostic(
                    ctx,
                    node,
                    f"except {caught} that only passes swallows the typed "
                    "failure the executor/sink recovery contract relies on",
                )
