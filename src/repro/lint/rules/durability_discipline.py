"""DUR001 — writes under ``repro.dist`` go through the durability helpers.

Invariant: the crash-safety story (kill -9 at any byte offset resumes
bit-identically) holds because every durable artefact — checkpoints, sink
manifests — reaches disk via ``dist/durability.py``'s
``atomic_write_text`` / ``fsync_fileobj`` / ``fsync_dir`` triple: temp-file
fsync, atomic rename, directory fsync.  A stray ``open(path, "w")`` or bare
``os.replace`` in the subsystem can leave a torn or vanished file after a
crash, and the parity tripwires only catch it when a crash actually lands
there.  The streaming sink's raw segment appends are the one *designed*
exception (they fsync on their own cadence and carry CRC framing); those
sites carry explicit ``# lint: disable=DUR001 -- reason`` annotations.

The rule flags, inside ``src/repro/dist/`` (except ``durability.py``
itself): ``open()`` / ``.open()`` with a write-capable literal mode,
``Path.write_text`` / ``write_bytes``, and ``os.rename`` / ``os.replace`` /
``shutil.move``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..diagnostics import Diagnostic
from ..names import ImportMap, resolve_call_name
from ..rule import ZONE_PACKAGE, LintContext, Rule, register_rule

__all__ = ["DurabilityDisciplineRule"]

_SUBSYSTEM_PREFIX = "src/repro/dist/"
_EXEMPT_FILES = {"src/repro/dist/durability.py"}

_RENAME_CALLS = {"os.rename", "os.replace", "shutil.move"}
_WRITE_ATTRS = {"write_text", "write_bytes"}


def _literal_mode(call: ast.Call, position: int) -> Optional[str]:
    """The literal ``mode`` argument of an open-style call, when present."""
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            return value if isinstance(value, str) else None
    if len(call.args) > position and isinstance(call.args[position], ast.Constant):
        value = call.args[position].value
        return value if isinstance(value, str) else None
    return None


def _writes(mode: Optional[str]) -> bool:
    return mode is not None and any(ch in mode for ch in "wax+")


@register_rule
class DurabilityDisciplineRule(Rule):
    id = "DUR001"
    slug = "durability-discipline"
    summary = (
        "file writes under src/repro/dist go through the durability.py "
        "atomic-rename/fsync helpers (crash-safety depends on it)"
    )
    hint = (
        "use repro.dist.durability.atomic_write_text (or fsync_fileobj + "
        "fsync_dir); a designed raw append needs "
        "'# lint: disable=DUR001 -- reason'"
    )
    zones = frozenset({ZONE_PACKAGE})

    def applies_to(self, ctx: LintContext) -> bool:
        return (
            super().applies_to(ctx)
            and ctx.relpath.startswith(_SUBSYSTEM_PREFIX)
            and ctx.relpath not in _EXEMPT_FILES
        )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        imports = ImportMap().collect(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                if _writes(_literal_mode(node, position=1)):
                    yield self.diagnostic(
                        ctx,
                        node,
                        "direct open() for writing bypasses the durability "
                        "helpers' fsync/atomic-rename contract",
                    )
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr == "open" and _writes(
                    _literal_mode(node, position=0)
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        "direct .open() for writing bypasses the durability "
                        "helpers' fsync/atomic-rename contract",
                    )
                    continue
                if node.func.attr in _WRITE_ATTRS:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f".{node.func.attr}() writes without fsync or atomic "
                        "rename; a crash can leave a torn file",
                    )
                    continue
            name = resolve_call_name(node, imports)
            if name in _RENAME_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{name}() outside durability.py skips the directory "
                    "fsync that makes renames crash-durable",
                )
