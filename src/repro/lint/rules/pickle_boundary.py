"""PKL001 — nothing unpicklable crosses the ``repro.dist`` process boundary.

Invariant: parallel sweeps rebuild every task in the worker from serialized
single-point specs; the submit path (``executor.submit`` / ``apply_async`` /
pool initializers / ``Process(target=...)``) therefore only ever carries
module-level callables and plain data.  A lambda, a function defined inside
another function, or a lock object pickles either not at all or — with
forked interpreters — into subtle non-determinism, and the failure surfaces
only when the pool first dispatches, deep inside a long sweep.

The rule flags lambdas, locally-defined (nested) functions, and freshly
constructed ``threading`` / ``multiprocessing`` lock primitives appearing as
arguments at those boundary call sites.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..diagnostics import Diagnostic
from ..names import ImportMap, dotted_parts, resolve_call_name
from ..rule import ZONE_PACKAGE, LintContext, Rule, register_rule

__all__ = ["PickleBoundaryRule"]

#: Method names whose every argument must be picklable.
_BOUNDARY_METHODS = {
    "submit",
    "apply_async",
    "map_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
}

#: Constructors whose named kwargs carry callables into child processes.
_BOUNDARY_CONSTRUCTORS = {
    "ProcessPoolExecutor": ("initializer",),
    "Pool": ("initializer",),
    "Process": ("target",),
}

#: Lock-like primitives that must never ride in a submitted payload.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "multiprocessing.Condition",
    "multiprocessing.Semaphore",
    "multiprocessing.Event",
}


class _ScopeVisitor(ast.NodeVisitor):
    """Walks the module tracking which names are nested-function bindings."""

    def __init__(self, rule: "PickleBoundaryRule", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.imports = ImportMap().collect(ctx.tree)
        self.nested_names: List[Set[str]] = []  # one frame per enclosing function
        self.findings: List[Diagnostic] = []

    # -- scope bookkeeping -------------------------------------------------

    def _enter_function(self, node) -> None:
        frame = {
            child.name
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node
        }
        self.nested_names.append(frame)
        self.generic_visit(node)
        self.nested_names.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    def _is_nested_function(self, name: str) -> bool:
        return any(name in frame for frame in self.nested_names)

    # -- boundary detection ------------------------------------------------

    def _offence(self, value: ast.expr) -> Optional[str]:
        """Why ``value`` cannot cross the process boundary, or ``None``."""
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name) and self._is_nested_function(value.id):
            return f"nested function {value.id!r}"
        if isinstance(value, ast.Call):
            name = resolve_call_name(value, self.imports)
            if name in _LOCK_FACTORIES:
                return f"a {name}() lock primitive"
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                reason = self._offence(element)
                if reason:
                    return reason
        return None

    def visit_Call(self, node: ast.Call) -> None:
        checked: List[ast.expr] = []
        where = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BOUNDARY_METHODS
        ):
            checked = list(node.args) + [kw.value for kw in node.keywords if kw.arg]
            where = f".{node.func.attr}()"
        else:
            parts = dotted_parts(node.func)
            tail = parts[-1] if parts else None
            if tail in _BOUNDARY_CONSTRUCTORS:
                wanted = _BOUNDARY_CONSTRUCTORS[tail]
                checked = [
                    kw.value for kw in node.keywords if kw.arg in wanted
                ]
                where = f"{tail}(...)"
        for value in checked:
            reason = self._offence(value)
            if reason:
                self.findings.append(
                    self.rule.diagnostic(
                        self.ctx,
                        value,
                        f"{reason} passed through the process boundary at "
                        f"{where} cannot be pickled deterministically",
                    )
                )
        self.generic_visit(node)


@register_rule
class PickleBoundaryRule(Rule):
    id = "PKL001"
    slug = "pickle-boundary"
    summary = (
        "only module-level callables and plain data may cross the repro.dist "
        "process boundary (no lambdas, nested functions, or locks)"
    )
    hint = (
        "hoist the callable to module level (workers re-import it by "
        "qualified name) and pass state as plain serialisable data"
    )
    zones = frozenset({ZONE_PACKAGE})

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _ScopeVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
