"""SEED001 — seeds and labels must be process-stable functions of the master seed.

Invariant: every run seed is ``derive_seed(master_seed, *labels)`` where the
labels are stable strings, so re-running a point — in another process, on
another worker, after a crash — re-derives bit-identical streams.  Builtin
``hash()`` is randomised per process (``PYTHONHASHSEED``), ``id()`` is a
memory address, and wall-clock reads differ across runs by construction;
none of them may feed seeds, labels, or result payloads.  This is the exact
bug class PR 3 removed from experiment E5, which seeded replications with
``hash(f"E5-{n}-{i}")`` and quietly produced different streams in every
worker process.

The rule flags *any* use of the banned callables in simulator code: a
legitimate non-seed use (e.g. a wall-clock provenance timestamp) must carry
a ``# lint: disable=SEED001 -- <why this never feeds a seed>`` annotation,
which is the documentation the next reader needs anyway.  Monotonic timing
(``time.perf_counter``, ``time.monotonic``) is not flagged — durations are
not identity.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..names import ImportMap, resolve_call_name
from ..rule import (
    ZONE_BENCHMARKS,
    ZONE_EXAMPLES,
    ZONE_PACKAGE,
    LintContext,
    Rule,
    register_rule,
)

__all__ = ["SeedStabilityRule"]

#: Builtins that are unstable across processes / runs.
_BANNED_BUILTINS = {
    "hash": "builtin hash() is randomised per process (PYTHONHASHSEED); "
    "values derived from it differ between workers and runs",
    "id": "id() is a memory address; it differs between processes and runs",
}

#: Wall-clock callables (resolved through import aliases).
_BANNED_CALLS = {
    "time.time": "wall-clock time.time() differs on every run",
    "time.time_ns": "wall-clock time.time_ns() differs on every run",
    "datetime.datetime.now": "wall-clock datetime.now() differs on every run",
    "datetime.datetime.utcnow": "wall-clock datetime.utcnow() differs on every run",
    "datetime.datetime.today": "wall-clock datetime.today() differs on every run",
    "datetime.date.today": "wall-clock date.today() differs on every run",
}


@register_rule
class SeedStabilityRule(Rule):
    id = "SEED001"
    slug = "seed-stability"
    summary = (
        "seeds/labels are derive_seed(master_seed, *labels) only; builtin "
        "hash(), id(), and wall-clock reads are process-unstable (the E5 bug)"
    )
    hint = (
        "derive seeds with repro.core.rng.derive_seed(master_seed, *labels); "
        "a deliberate non-seed use needs '# lint: disable=SEED001 -- reason'"
    )
    zones = frozenset({ZONE_PACKAGE, ZONE_BENCHMARKS, ZONE_EXAMPLES})

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        imports = ImportMap().collect(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id in _BANNED_BUILTINS:
                yield self.diagnostic(ctx, node, _BANNED_BUILTINS[node.func.id])
                continue
            name = resolve_call_name(node, imports)
            if name in _BANNED_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{_BANNED_CALLS[name]}; it must never feed seeds, "
                    "labels, or result payloads",
                )
