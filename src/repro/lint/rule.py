"""The lint rule interface, per-file context, and the pluggable rule registry.

Rules are registered in ``LINT_RULES`` — the same :class:`repro.core.registry.
Registry` mechanism that backs protocols, graph families, and failure models —
so discovery (``repro lint --list-rules``), selection (``--rules SEED001``),
and docs cross-checking all run off one table.  Each rule declares:

* ``id`` — the stable diagnostic id (``RNG001``) printed in findings and
  accepted by suppression comments and ``--rules``;
* ``zones`` — which parts of the repo it patrols (``package`` is
  ``src/repro``, plus ``benchmarks`` / ``examples`` / ``tests``);
* ``check(ctx)`` — an AST pass yielding :class:`Diagnostic` records.

Class-level contracts (the vector-hook rule) need visibility *across* files,
so the engine hands every rule a :class:`ClassIndex` of all class definitions
in the linted file set, with enough structure to walk base-class chains that
span modules.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

from ..core.registry import Registry
from .diagnostics import Diagnostic

__all__ = [
    "LINT_RULES",
    "register_rule",
    "all_rules",
    "rules_by_id",
    "Rule",
    "LintContext",
    "ClassIndex",
    "ClassRecord",
    "ZONE_PACKAGE",
    "ZONE_BENCHMARKS",
    "ZONE_EXAMPLES",
    "ZONE_TESTS",
]

ZONE_PACKAGE = "package"  #: files under src/repro
ZONE_BENCHMARKS = "benchmarks"
ZONE_EXAMPLES = "examples"
ZONE_TESTS = "tests"


# -- cross-file class visibility ------------------------------------------------


@dataclass
class ClassRecord:
    """Structure of one ``class`` statement relevant to contract rules.

    ``flags`` holds class-body boolean assignments (``supports_vectorized =
    True``) as ``name -> (value, lineno, col)``; ``methods`` maps each method
    defined in the body to whether it is *concrete* — i.e. its body does
    something beyond a docstring plus ``raise`` / ``pass`` / ``...`` — so
    raising stub declarations on an abstract interface do not count as
    implementations of the contract they declare.
    """

    name: str
    relpath: str
    lineno: int
    col: int
    bases: Tuple[str, ...]
    methods: Dict[str, bool] = field(default_factory=dict)
    flags: Dict[str, Tuple[bool, int, int]] = field(default_factory=dict)


def _is_concrete(function: ast.FunctionDef) -> bool:
    """True if the method body is more than a docstring-and-raise stub."""
    body = list(function.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        if isinstance(body[0].value.value, str):
            body = body[1:]
    if not body:
        return False
    for statement in body:
        if isinstance(statement, (ast.Raise, ast.Pass)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # bare ellipsis / stray constant
        return True
    return False


def _base_name(base: ast.expr) -> Optional[str]:
    """Last segment of a base-class expression (``pkg.Base`` -> ``Base``)."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _record_class(node: ast.ClassDef, relpath: str) -> ClassRecord:
    record = ClassRecord(
        name=node.name,
        relpath=relpath,
        lineno=node.lineno,
        col=node.col_offset + 1,
        bases=tuple(
            name for name in (_base_name(base) for base in node.bases) if name
        ),
    )
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record.methods[statement.name] = _is_concrete(statement)
        else:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                target, value = statement.target, statement.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, bool)
            ):
                record.flags[target.id] = (
                    value.value,
                    statement.lineno,
                    statement.col_offset + 1,
                )
    return record


class ClassIndex:
    """All class definitions across the linted file set, by class name.

    Name-based resolution is deliberate: the linter never imports the code it
    checks, so base classes are matched by their final name segment.  When a
    name is defined more than once every definition is considered (a base
    chain is satisfied if *any* same-named definition provides the method),
    which errs on the quiet side for ambiguous names.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, List[ClassRecord]] = {}

    def add_tree(self, tree: ast.AST, relpath: str) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._by_name.setdefault(node.name, []).append(
                    _record_class(node, relpath)
                )

    def definitions(self, name: str) -> List[ClassRecord]:
        return self._by_name.get(name, [])

    def ancestry(self, record: ClassRecord, stop_flag: str) -> Iterator[ClassRecord]:
        """``record`` plus resolvable ancestors, pruned at the contract root.

        The walk yields ``record`` itself, then base classes breadth-first by
        name.  A class whose body declares ``stop_flag = False`` is the
        abstract interface that *introduces* the contract — its stub methods
        and defaults must not satisfy it — so such classes (and anything
        above them) are pruned from the walk.
        """
        seen = set()
        queue: List[ClassRecord] = [record]
        first = True
        while queue:
            current = queue.pop(0)
            key = (current.relpath, current.name, current.lineno)
            if key in seen:
                continue
            seen.add(key)
            if not first:
                flag = current.flags.get(stop_flag)
                if flag is not None and flag[0] is False:
                    continue  # contract root: prune this branch
            first = False
            yield current
            for base in current.bases:
                queue.extend(self.definitions(base))


# -- per-file context -----------------------------------------------------------


@dataclass
class LintContext:
    """Everything a rule sees about one file."""

    relpath: str  #: posix path relative to the lint root
    zone: str  #: one of the ``ZONE_*`` constants (or ``"other"``)
    tree: ast.Module
    source: str
    classes: ClassIndex


# -- the rule interface ---------------------------------------------------------


class Rule(ABC):
    """One determinism contract, enforced as an AST pass."""

    #: Stable diagnostic id (also the suppression-comment token).
    id: str = ""
    #: Short kebab-case slug used in docs headings.
    slug: str = ""
    #: One-line statement of the invariant, shown by ``--list-rules``.
    summary: str = ""
    #: Default fix hint attached to diagnostics.
    hint: str = ""
    #: Zones the rule patrols.
    zones: frozenset = frozenset({ZONE_PACKAGE})

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.zone in self.zones

    @abstractmethod
    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield a diagnostic for every violation in ``ctx``."""

    def diagnostic(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` (or an explicit location)."""
        return Diagnostic(
            path=ctx.relpath,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=col if col is not None else getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


#: The pluggable rule table; third parties (and tests) may register more.
LINT_RULES = Registry("lint rule")


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to :data:`LINT_RULES` under its id."""
    LINT_RULES.register(cls.id, cls, summary=cls.summary)
    return cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by id."""
    return [LINT_RULES.entry(name).builder() for name in LINT_RULES.names()]


def rules_by_id(ids: List[str]) -> List[Rule]:
    """Instances for ``ids``; unknown ids raise ``ConfigurationError``."""
    return [LINT_RULES.entry(rule_id).builder() for rule_id in ids]
