"""Static enforcement of the determinism contracts behind bit-parity.

Every guarantee this repo advertises — batch rows bit-identical to single
runs, parallel/sharded/resumed sweeps bit-identical to serial, chaos plans
recovering bit-identically — rests on source-level conventions that no unit
test can see until a specific crash or process boundary happens to expose
them: randomness flows through :class:`repro.core.rng.RandomSource`, seeds
are stable functions of ``master_seed`` + label, vectorized protocols
implement the full ``vector_*`` hook contract, nothing unpicklable crosses
the :mod:`repro.dist` boundary, durable writes go through
:mod:`repro.dist.durability`, and recovery paths keep typed exceptions.

``repro.lint`` checks those conventions mechanically over the repo's own
AST (stdlib :mod:`ast` only — the linter never imports what it checks):

>>> from repro.lint import Linter
>>> report = Linter().lint_sources({"src/repro/x.py": "seed = hash('label')"})
>>> report.diagnostics[0].rule
'SEED001'

Command line: ``python -m repro lint [paths] [--rules IDS] [--format
text|json] [--baseline file.json] [--write-baseline file.json]``.  CI runs
it next to the parity tripwires; a finding fails the build unless it carries
a ``# lint: disable=RULE-ID -- reason`` annotation or is covered by the
committed baseline.  See ``docs/API.md`` §11 for the rule catalogue.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .diagnostics import (
    LINT_SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    parse_report,
    render_json,
    render_text,
)
from .engine import DEFAULT_TARGETS, Linter, classify_zone
from .rule import LINT_RULES, Rule, all_rules, register_rule

# Importing the rules package registers every built-in rule.
from . import rules  # noqa: F401

__all__ = [
    "LINT_SCHEMA_VERSION",
    "LINT_RULES",
    "DEFAULT_TARGETS",
    "Diagnostic",
    "LintReport",
    "Linter",
    "Rule",
    "all_rules",
    "apply_baseline",
    "classify_zone",
    "load_baseline",
    "parse_report",
    "register_rule",
    "render_json",
    "render_text",
    "write_baseline",
]
