"""Structural property checks for generated graphs.

The paper's analysis leans on a handful of structural facts about random
regular graphs — connectivity for ``d >= 3``, logarithmic diameter, and edge
expansion via the expander mixing lemma with second eigenvalue at most
``2·sqrt(d-1)·(1+o(1))`` (Friedman's theorem).  This module computes those
quantities for concrete graphs so experiments and tests can verify that the
generated substrates actually have the properties the theory assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import networkx as nx
import numpy as np

from .base import Graph

__all__ = [
    "GraphProfile",
    "is_connected",
    "connected_components",
    "diameter",
    "average_shortest_path_length",
    "degree_histogram",
    "edge_boundary_size",
    "edges_within",
    "profile_graph",
]


@dataclass(frozen=True)
class GraphProfile:
    """Summary of the structural properties of one graph."""

    node_count: int
    edge_count: int
    min_degree: int
    max_degree: int
    is_regular: bool
    is_simple: bool
    is_connected: bool
    diameter: Optional[int]
    second_eigenvalue: Optional[float]
    friedman_bound: Optional[float]

    def satisfies_friedman_bound(self, slack: float = 1.1) -> bool:
        """True if λ₂ ≤ slack · 2√(d−1), the bound used in the lower-bound proof."""
        if self.second_eigenvalue is None or self.friedman_bound is None:
            return False
        return self.second_eigenvalue <= slack * self.friedman_bound


def is_connected(graph: Graph) -> bool:
    """True if the graph has a single connected component."""
    if graph.node_count == 0:
        return True
    return nx.is_connected(graph.to_networkx())


def connected_components(graph: Graph) -> list:
    """The connected components as a list of node-id sets."""
    return [set(c) for c in nx.connected_components(graph.to_networkx())]


def diameter(graph: Graph) -> int:
    """Exact diameter (raises ``networkx.NetworkXError`` if disconnected)."""
    return nx.diameter(graph.to_networkx())


def average_shortest_path_length(graph: Graph) -> float:
    """Average hop distance over all node pairs."""
    return nx.average_shortest_path_length(graph.to_networkx())


def degree_histogram(graph: Graph) -> dict:
    """Mapping of degree value to the number of nodes with that degree."""
    histogram: dict = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def edge_boundary_size(graph: Graph, node_set: Set[int]) -> int:
    """Number of edges between ``node_set`` and its complement.

    This is ``|E(S, S̄)|`` in the paper's notation, the quantity bounded from
    below by the expander mixing lemma in the proof of Theorem 1.
    """
    count = 0
    for node in node_set:
        if node not in graph:
            continue
        for neighbour in graph.neighbors(node):
            if neighbour not in node_set:
                count += 1
    return count


def edges_within(graph: Graph, node_set: Set[int]) -> int:
    """Number of edges with both endpoints inside ``node_set`` ("inner edges").

    Every inner edge contributes exactly two adjacency entries within the set
    (self-loops contribute both of theirs at the same node), so the entry
    count halves to the edge count.
    """
    count = 0
    for node in node_set:
        if node not in graph:
            continue
        for neighbour in graph.neighbors(node):
            if neighbour in node_set:
                count += 1
    return count // 2


def second_largest_adjacency_eigenvalue(graph: Graph) -> float:
    """The second-largest eigenvalue (by value) of the adjacency matrix.

    Computed densely with numpy; intended for the moderate sizes used in
    property tests and profiles, not for the largest benchmark graphs.
    """
    nodes = graph.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    matrix = np.zeros((n, n))
    for u, v in graph.edges():
        if u == v:
            matrix[index[u], index[u]] += 2
        else:
            matrix[index[u], index[v]] += 1
            matrix[index[v], index[u]] += 1
    eigenvalues = np.linalg.eigvalsh(matrix)
    return float(eigenvalues[-2]) if n >= 2 else 0.0


def expander_mixing_bound(d: int, n: int, set_size: int, lam: float) -> float:
    """Lower bound on ``|E(S, S̄)|`` from the expander mixing lemma.

    For a d-regular graph with second eigenvalue ``lam`` and ``|S| = s``:

        |E(S, S̄)| ≥ d·s·(n−s)/n − lam·sqrt(s·(n−s))

    This is the inequality used in the lower-bound proof (Section 2).
    """
    s = set_size
    expected = d * s * (n - s) / n
    deviation = lam * math.sqrt(s * (n - s))
    return max(0.0, expected - deviation)


def profile_graph(graph: Graph, compute_spectrum: bool = True) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``.

    ``compute_spectrum=False`` skips the dense eigenvalue computation (O(n³)),
    which is the right choice above a few thousand nodes.
    """
    degrees = list(graph.degrees().values())
    connected = is_connected(graph)
    graph_diameter = diameter(graph) if connected and graph.node_count > 1 else None
    lam: Optional[float] = None
    friedman: Optional[float] = None
    if compute_spectrum and graph.node_count >= 2:
        lam = second_largest_adjacency_eigenvalue(graph)
        if graph.is_regular() and degrees and degrees[0] >= 2:
            friedman = 2.0 * math.sqrt(degrees[0] - 1)
    return GraphProfile(
        node_count=graph.node_count,
        edge_count=graph.edge_count,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        is_regular=graph.is_regular(),
        is_simple=graph.is_simple(),
        is_connected=connected,
        diameter=graph_diameter,
        second_eigenvalue=lam,
        friedman_bound=friedman,
    )
