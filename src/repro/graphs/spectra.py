"""Spectral estimates that scale to large graphs.

:func:`repro.graphs.properties.second_largest_adjacency_eigenvalue` builds a
dense matrix (O(n²) memory, O(n³) time), which is fine for property tests but
not for profiling the 10⁴–10⁵-node graphs the experiments use.  This module
provides a sparse power-iteration estimate of the second eigenvalue and the
derived spectral expansion quantities the paper's lower-bound proof relies on
(Friedman's bound ``λ₂ ≤ 2√(d−1)(1+o(1))`` and the expander mixing lemma).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import RandomSource
from .base import Graph

__all__ = ["SpectralEstimate", "estimate_second_eigenvalue", "spectral_expansion_profile"]


@dataclass(frozen=True)
class SpectralEstimate:
    """Result of the power-iteration estimate for a d-regular graph."""

    second_eigenvalue: float
    friedman_bound: float
    iterations: int
    converged: bool

    @property
    def relative_to_friedman(self) -> float:
        """λ₂ estimate divided by ``2√(d−1)`` (≈ 1 for near-Ramanujan graphs)."""
        if self.friedman_bound == 0:
            return float("inf")
        return self.second_eigenvalue / self.friedman_bound


def _adjacency_arrays(graph: Graph):
    """Flatten the adjacency lists into (indptr, indices) CSR-style arrays."""
    nodes = graph.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    indices_list = []
    for i, node in enumerate(nodes):
        neighbours = graph.neighbors(node)
        indptr[i + 1] = indptr[i] + len(neighbours)
        indices_list.extend(index[v] for v in neighbours)
    indices = np.array(indices_list, dtype=np.int64)
    return indptr, indices


def _multiply(indptr: np.ndarray, indices: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Sparse adjacency–vector product via a segmented sum."""
    gathered = vector[indices]
    sums = np.add.reduceat(gathered, indptr[:-1])
    # reduceat misbehaves for empty rows (isolated nodes): zero them out.
    empty_rows = indptr[:-1] == indptr[1:]
    if empty_rows.any():
        sums = np.where(empty_rows, 0.0, sums)
    return sums


def estimate_second_eigenvalue(
    graph: Graph,
    iterations: int = 300,
    tolerance: float = 1e-4,
    seed: int = 0,
) -> SpectralEstimate:
    """Estimate λ₂ of a d-regular graph by power iteration on the deflated matrix.

    For a d-regular graph the top eigenvector is the all-ones vector with
    eigenvalue ``d``, so iterating ``A·x`` on vectors kept orthogonal to the
    all-ones vector converges to the eigenvalue that is largest in absolute
    value among the rest — which for random regular graphs is λ₂ (or |λ_min|,
    which obeys the same Friedman bound, so either answer serves the
    expansion estimates).

    Raises :class:`ConfigurationError` for non-regular graphs — the deflation
    step relies on regularity.
    """
    if graph.node_count < 3:
        raise ConfigurationError("need at least 3 nodes for a spectral estimate")
    if not graph.is_regular():
        raise ConfigurationError("estimate_second_eigenvalue requires a regular graph")
    degree = graph.degree(graph.nodes()[0])
    if degree < 2:
        raise ConfigurationError("degree must be at least 2 for a meaningful estimate")

    indptr, indices = _adjacency_arrays(graph)
    n = graph.node_count
    # RandomSource seeds its generator exactly as default_rng(seed) would, so
    # routing through it keeps historical estimates bit-identical.
    rng = RandomSource(seed=seed, name="spectra").generator
    vector = rng.standard_normal(n)
    vector -= vector.mean()
    vector /= np.linalg.norm(vector)

    # Power-iterate on the shifted matrix B = A + d·I.  B is positive
    # semidefinite for a d-regular graph (eigenvalues d + λ_i ≥ 0), so the
    # iteration cannot oscillate between λ₂ and the (similarly sized,
    # negative) smallest eigenvalue; after deflating the all-ones direction
    # its dominant eigenvalue is d + λ₂.
    eigenvalue_shifted = 0.0
    converged = False
    performed = 0
    for performed in range(1, iterations + 1):
        product = _multiply(indptr, indices, vector) + degree * vector
        # Rayleigh quotient of B with the current (unit, mean-free) vector.
        new_eigenvalue = float(vector @ product)
        # Deflate the all-ones direction and renormalise for the next step.
        product -= product.mean()
        norm = np.linalg.norm(product)
        if norm == 0:
            break
        vector = product / norm
        if abs(new_eigenvalue - eigenvalue_shifted) < tolerance:
            eigenvalue_shifted = new_eigenvalue
            converged = True
            break
        eigenvalue_shifted = new_eigenvalue

    return SpectralEstimate(
        second_eigenvalue=max(0.0, eigenvalue_shifted - degree),
        friedman_bound=2.0 * math.sqrt(degree - 1),
        iterations=performed,
        converged=converged,
    )


def spectral_expansion_profile(
    graph: Graph, set_size: Optional[int] = None, seed: int = 0
) -> dict:
    """Expansion quantities used in the lower-bound proof, for one graph.

    Returns the λ₂ estimate, Friedman's bound, and the expander-mixing-lemma
    lower bound on ``|E(S, S̄)|`` for a set of ``set_size`` nodes (default
    ``n/2``), all as a plain dict for easy logging.
    """
    estimate = estimate_second_eigenvalue(graph, seed=seed)
    n = graph.node_count
    degree = graph.degree(graph.nodes()[0])
    size = set_size if set_size is not None else n // 2
    if not 0 < size < n:
        raise ConfigurationError(f"set_size must be in (0, {n}), got {size}")
    expected = degree * size * (n - size) / n
    deviation = estimate.second_eigenvalue * math.sqrt(size * (n - size))
    return {
        "second_eigenvalue": estimate.second_eigenvalue,
        "friedman_bound": estimate.friedman_bound,
        "relative_to_friedman": estimate.relative_to_friedman,
        "mixing_lower_bound": max(0.0, expected - deviation),
        "expected_cut": expected,
        "set_size": size,
    }
