"""The configuration (pairing) model for random d-regular graphs.

This is the exact generative process the paper analyses (Section 1.2): start
with ``n`` nodes carrying ``d`` unmatched stubs each; repeatedly pick two
unmatched stubs uniformly at random and join them with an edge.  The process
may create self-loops and parallel edges; the paper argues it is sufficient to
analyse the algorithm on the (possibly non-simple) outcome because every
simple d-regular graph is produced with equal probability and the failure
probability is small for constant degrees.

Three ways of obtaining a *simple* graph are provided, selectable through the
``strategy`` parameter of :func:`random_regular_graph`:

* ``"rejection"`` — draw pairings until one is simple.  Faithful to the
  textbook description but the acceptance probability decays like
  ``exp(-(d²-1)/4)``, so it is only practical for ``d ≤ 4`` or so.
* ``"repair"`` — draw one pairing and remove self-loops / parallel edges by
  uniform double-edge swaps.  This is the standard practical construction and
  is asymptotically uniform for the degrees used here; it is the default for
  larger ``d``.
* ``"networkx"`` — delegate to :func:`networkx.random_regular_graph`.

``strategy="auto"`` (default) picks rejection when the expected acceptance
probability is reasonable and repair otherwise.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

from ..core.errors import GraphGenerationError
from ..core.rng import RandomSource
from .base import Graph

__all__ = [
    "pairing_multigraph",
    "random_regular_graph",
    "connected_random_regular_graph",
    "validate_regular_parameters",
    "repair_to_simple",
]


def validate_regular_parameters(n: int, d: int) -> None:
    """Validate that an ``n``-node ``d``-regular graph can exist.

    Requirements: ``n >= 2``, ``1 <= d < n``, and ``n * d`` even (handshake
    lemma).  Raises :class:`GraphGenerationError` otherwise.
    """
    if n < 2:
        raise GraphGenerationError(f"need at least two nodes, got n={n}")
    if d < 1:
        raise GraphGenerationError(f"degree must be at least 1, got d={d}")
    if d >= n:
        raise GraphGenerationError(f"degree d={d} must be smaller than n={n}")
    if (n * d) % 2 != 0:
        raise GraphGenerationError(
            f"no d-regular graph exists for odd n*d (n={n}, d={d})"
        )


def _random_pairing(n: int, d: int, rng: RandomSource) -> np.ndarray:
    """A uniformly random perfect matching of the ``n*d`` stubs.

    Returns an array of node indices in which positions ``2i`` and ``2i+1``
    are the endpoints of the ``i``-th edge.  Shuffling the stub array and
    pairing consecutive entries is distributionally identical to the
    sequential "match the next unmatched stub with a uniform unmatched stub"
    description in the paper.
    """
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.generator.shuffle(stubs)
    return stubs


def pairing_multigraph(n: int, d: int, rng: RandomSource) -> Graph:
    """One draw of the pairing process (self-loops / parallel edges allowed).

    Built straight into CSR form without the ``O(m log m)`` stable argsort
    over the ``2m`` stubs that :meth:`Graph.from_edge_array` would perform.
    Because every node owns exactly ``d`` stubs, the CSR layout is known up
    front (node ``v`` occupies slots ``v*d .. v*d+d-1``); drawing the stub
    permutation directly, inverting it with one scatter, and sorting each
    node's ``d`` positions row-wise recovers the partner of every stub with
    counting-sort-style array passes.

    Bit-parity: ``Generator.permutation(2m)`` consumes the same random stream
    as the previous ``shuffle`` of the stub array, and the row-wise position
    sort reproduces the stable-argsort stub order exactly, so this build
    returns the identical graph (same CSR arrays, same generator state) as
    the edge-array path, about 3x faster at ``n = 10^6``.
    """
    validate_regular_parameters(n, d)
    two_m = n * d
    # int32 keys halve the traffic of the two random-access passes (the
    # inverse scatter and the partner gather), which dominate at this scale.
    dtype = np.int32 if two_m < 2**31 else np.int64
    # pi[p] = original stub at shuffled position p; stubs of node v are the
    # original positions v*d .. v*d+d-1, and shuffled positions p and p^1 are
    # matched (consecutive entries pair up).
    pi = rng.generator.permutation(two_m).astype(dtype, copy=False)
    inverse = np.empty(two_m, dtype=dtype)
    inverse[pi] = np.arange(two_m, dtype=dtype)
    # Each row holds one node's d shuffled positions; ascending order matches
    # the stable grouping sort of the edge-array build.
    positions = np.sort(inverse.reshape(n, d), axis=1)
    partners = pi[positions.ravel() ^ 1] // d
    indptr = np.arange(n + 1, dtype=np.int64) * d
    return Graph.from_csr(n, indptr, partners)


def _pairing_edge_array(n: int, d: int, rng: RandomSource) -> np.ndarray:
    """The pairing as an ``(m, 2)`` edge array (no Graph object yet)."""
    stubs = _random_pairing(n, d, rng)
    return stubs.reshape(-1, 2)


def repair_to_simple(
    edges: np.ndarray, rng: RandomSource, max_passes: int = 200
) -> np.ndarray:
    """Remove self-loops and parallel edges from a pairing by double-edge swaps.

    A *bad* edge (self-loop or duplicate of an earlier edge) is repaired by
    picking a uniformly random partner edge and swapping one endpoint with it,
    which preserves every node's degree.  Each pass is fully array-based:

    1. bad edges are found by sorting the undirected edge keys (a self-loop,
       or any copy of a key after its first occurrence, is bad);
    2. every bad edge proposes a swap with one uniformly drawn partner;
    3. proposals are accepted only when they provably keep the multiset
       simple — the partner is a good edge claimed by no other proposal, the
       swap creates no self-loop, and the two new keys collide neither with
       the surviving good keys nor with any other accepted proposal's keys.

    Rejected proposals simply retry in the next pass with fresh partners, so
    each pass monotonically reduces the bad-edge count; a handful of passes
    suffices in practice because the expected number of bad edges is
    ``O(d²)``, while the per-pass cost is a few ``O(m log m)`` array
    operations instead of a Python scan over all ``m`` edges.

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer array of edge endpoints (modified copy returned).
    rng:
        Randomness source for partner selection.
    max_passes:
        Safety bound on repair sweeps before giving up.

    Raises
    ------
    GraphGenerationError
        If the edge multiset cannot be made simple within ``max_passes``.
    """
    edges = np.array(edges, dtype=np.int64, copy=True)
    m = edges.shape[0]
    if m == 0:
        return edges
    key_base = int(edges.max()) + 1
    generator = rng.generator

    for _ in range(max_passes):
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keys = lo * key_base + hi
        bad = lo == hi
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        duplicate = np.zeros(m, dtype=bool)
        duplicate[1:] = sorted_keys[1:] == sorted_keys[:-1]
        bad[order[duplicate]] = True
        bad_indices = np.flatnonzero(bad)
        if bad_indices.size == 0:
            return edges
        good_keys = keys[~bad]

        partners = generator.integers(0, m, size=bad_indices.size)
        u, v = edges[bad_indices, 0], edges[bad_indices, 1]
        x, y = edges[partners, 0], edges[partners, 1]
        # Swap v and y: (u, v), (x, y) -> (u, y), (x, v).
        key_one = np.minimum(u, y) * key_base + np.maximum(u, y)
        key_two = np.minimum(x, v) * key_base + np.maximum(x, v)
        ok = (u != y) & (x != v) & (key_one != key_two)
        ok &= ~bad[partners]
        ok &= ~np.isin(key_one, good_keys) & ~np.isin(key_two, good_keys)
        accepted = np.flatnonzero(ok)
        if accepted.size:
            # Each good partner may take part in at most one swap per pass.
            _, first = np.unique(partners[accepted], return_index=True)
            accepted = accepted[np.sort(first)]
            # Accepted proposals must also not collide with each other.
            proposal_keys = np.concatenate([key_one[accepted], key_two[accepted]])
            unique_keys, counts = np.unique(proposal_keys, return_counts=True)
            colliding = unique_keys[counts > 1]
            if colliding.size:
                keep = ~np.isin(key_one[accepted], colliding) & ~np.isin(
                    key_two[accepted], colliding
                )
                accepted = accepted[keep]
            edges[bad_indices[accepted], 1] = y[accepted]
            edges[partners[accepted], 1] = v[accepted]
    raise GraphGenerationError(
        f"could not repair pairing to a simple graph within {max_passes} passes"
    )


def _acceptance_probability(d: int) -> float:
    """Approximate probability that a raw pairing is simple (McKay–Wormald)."""
    return math.exp(-(d * d - 1) / 4.0)


def random_regular_graph(
    n: int,
    d: int,
    rng: RandomSource,
    simple: bool = True,
    strategy: str = "auto",
    max_attempts: int = 200,
) -> Graph:
    """Generate a random ``d``-regular graph on ``n`` nodes.

    Parameters
    ----------
    simple:
        If True (default), return a graph without self-loops or parallel
        edges.  If False, return one raw pairing draw (the multigraph model
        the analysis works with directly).
    strategy:
        ``"rejection"``, ``"repair"``, ``"networkx"`` or ``"auto"`` (see the
        module docstring).  Ignored when ``simple`` is False.
    max_attempts:
        Retry budget for the rejection strategy.

    Raises
    ------
    GraphGenerationError
        If the parameters are invalid, the strategy name is unknown, or no
        simple graph could be produced within the budget.
    """
    validate_regular_parameters(n, d)
    if not simple:
        return pairing_multigraph(n, d, rng)

    if strategy == "auto":
        strategy = "rejection" if _acceptance_probability(d) >= 0.05 else "repair"

    if strategy == "rejection":
        for _ in range(max_attempts):
            candidate = pairing_multigraph(n, d, rng)
            if candidate.is_simple():
                return candidate
        raise GraphGenerationError(
            f"failed to generate a simple {d}-regular graph on {n} nodes "
            f"after {max_attempts} pairing attempts; use strategy='repair'"
        )

    if strategy == "repair":
        edges = _pairing_edge_array(n, d, rng)
        edges = repair_to_simple(edges, rng.spawn("repair"))
        return Graph.from_edge_array(n, edges)

    if strategy == "networkx":
        nx_graph = nx.random_regular_graph(d, n, seed=rng.randint(0, 2**31 - 1))
        return Graph.from_networkx(nx_graph)

    raise GraphGenerationError(
        f"unknown generation strategy {strategy!r}; "
        "expected 'auto', 'rejection', 'repair', or 'networkx'"
    )


def connected_random_regular_graph(
    n: int,
    d: int,
    rng: RandomSource,
    simple: bool = True,
    strategy: str = "auto",
    max_attempts: int = 50,
) -> Graph:
    """A random d-regular graph that is connected.

    For ``d >= 3`` a random regular graph is connected with high probability,
    so this almost never retries; it exists so experiments can assume a single
    component without sprinkling connectivity checks everywhere.
    """
    last: Optional[Graph] = None
    for _ in range(max_attempts):
        candidate = random_regular_graph(n, d, rng, simple=simple, strategy=strategy)
        last = candidate
        if nx.is_connected(candidate.to_networkx()):
            return candidate
    raise GraphGenerationError(
        f"could not generate a connected {d}-regular graph on {n} nodes "
        f"after {max_attempts} attempts (last attempt had "
        f"{nx.number_connected_components(last.to_networkx())} components)"
    )
