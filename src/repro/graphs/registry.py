"""The graph-family registry: string ids -> graph generators.

Scenario specs and the CLI refer to topologies by short ids
(``"random-regular"``, ``"complete"``, ``"gnp"``, ...).  Every builder is
registered with an explicit keyword signature, so a spec's graph kwargs can be
validated before any generation work happens, and ``repro-broadcast
list-graphs`` can render per-family parameter help.

Builders that need randomness declare an ``rng`` parameter;
:func:`build_graph` injects the caller's :class:`RandomSource` for those and
omits it for deterministic families (complete graph, hypercube, ring).
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ConfigurationError
from ..core.registry import Registry
from ..core.rng import RandomSource
from .base import Graph
from .configuration_model import (
    connected_random_regular_graph,
    pairing_multigraph,
    random_regular_graph,
)
from .families import (
    complete_graph,
    gnp_graph,
    hypercube_graph,
    regular_product_with_clique,
    ring_graph,
)

__all__ = ["GRAPH_FAMILIES", "build_graph", "available_graph_families", "graph_needs_rng"]


def _random_regular(
    rng: RandomSource, n: int, d: int, simple: bool = True, strategy: str = "auto"
) -> Graph:
    return random_regular_graph(n, d, rng, simple=simple, strategy=strategy)


def _connected_random_regular(
    rng: RandomSource, n: int, d: int, simple: bool = True, strategy: str = "auto"
) -> Graph:
    return connected_random_regular_graph(n, d, rng, simple=simple, strategy=strategy)


def _pairing_multigraph(rng: RandomSource, n: int, d: int) -> Graph:
    return pairing_multigraph(n, d, rng)


def _complete(n: int) -> Graph:
    return complete_graph(n)


def _gnp(rng: RandomSource, n: int, p: float) -> Graph:
    return gnp_graph(n, p, rng)


def _hypercube(dimension: int) -> Graph:
    return hypercube_graph(dimension)


def _ring(n: int) -> Graph:
    return ring_graph(n)


def _regular_product_clique(
    rng: RandomSource, n: int, d: int, clique_size: int = 5
) -> Graph:
    return regular_product_with_clique(n, d, rng, clique_size=clique_size)


#: The shared registry instance for graph families.
GRAPH_FAMILIES = Registry("graph family")

GRAPH_FAMILIES.register(
    "random-regular",
    _random_regular,
    summary="random d-regular graph from the configuration (pairing) model",
    params={
        "n": "number of nodes",
        "d": "degree (n*d must be even)",
        "simple": "repair/reject multigraph outcomes (default true)",
        "strategy": "'auto' | 'rejection' | 'repair' | 'networkx' (default auto)",
    },
)
GRAPH_FAMILIES.register(
    "connected-random-regular",
    _connected_random_regular,
    summary="random d-regular graph, redrawn until connected (experiment default)",
    params={
        "n": "number of nodes",
        "d": "degree (n*d must be even)",
        "simple": "repair/reject multigraph outcomes (default true)",
        "strategy": "'auto' | 'rejection' | 'repair' | 'networkx' (default auto)",
    },
)
GRAPH_FAMILIES.register(
    "pairing-multigraph",
    _pairing_multigraph,
    summary="one raw pairing-model draw (self-loops / parallel edges allowed)",
    params={"n": "number of nodes", "d": "degree (n*d must be even)"},
)
GRAPH_FAMILIES.register(
    "complete",
    _complete,
    summary="complete graph K_n (the Karp et al. setting)",
    params={"n": "number of nodes (>= 2)"},
)
GRAPH_FAMILIES.register(
    "gnp",
    _gnp,
    summary="Erdős–Rényi G(n, p) random graph",
    params={"n": "number of nodes", "p": "edge probability in [0, 1]"},
)
GRAPH_FAMILIES.register(
    "hypercube",
    _hypercube,
    summary="hypercube on 2^dimension nodes (Feige et al. setting)",
    params={"dimension": "hypercube dimension (>= 1)"},
)
GRAPH_FAMILIES.register(
    "ring",
    _ring,
    summary="cycle on n nodes — the classic rumour-spreading worst case",
    params={"n": "number of nodes (>= 3)"},
)
GRAPH_FAMILIES.register(
    "regular-product-clique",
    _regular_product_clique,
    summary="Cartesian product of a random d-regular graph with K_clique_size "
    "(the paper's counterexample)",
    params={
        "n": "nodes of the regular base graph",
        "d": "degree of the base graph",
        "clique_size": "clique factor size (default 5)",
    },
)


def available_graph_families() -> list:
    """The sorted list of registered graph-family ids."""
    return GRAPH_FAMILIES.names()


def graph_needs_rng(family: str) -> bool:
    """True if the family's builder consumes randomness."""
    accepted = GRAPH_FAMILIES.entry(family).accepted_kwargs()
    return accepted is None or "rng" in accepted


def build_graph(family: str, rng: Optional[RandomSource] = None, **kwargs) -> Graph:
    """Build a graph of ``family`` with ``kwargs``, injecting ``rng`` if needed.

    Unknown families and unknown kwargs raise :class:`ConfigurationError`
    naming the offending id or key; randomised families raise if ``rng`` is
    missing.
    """
    GRAPH_FAMILIES.validate_kwargs(family, kwargs, reserved=("rng",))
    builder = GRAPH_FAMILIES.entry(family).builder
    if graph_needs_rng(family):
        if rng is None:
            raise ConfigurationError(
                f"graph family {family!r} is randomised and requires an rng"
            )
        return builder(rng=rng, **kwargs)
    return builder(**kwargs)
