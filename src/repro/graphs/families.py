"""Non-regular graph families used as baselines and counterexamples.

The paper's related-work discussion compares against results on complete
graphs (Karp et al.), Erdős–Rényi ``G(n,p)`` graphs (Elsässer; Elsässer &
Sauerwald), and hypercubes (Feige et al.).  The conclusion also exhibits the
Cartesian product of a random regular graph with ``K5`` as a graph with
similar expansion where the multiple-choice trick does *not* help.  All of
these generators live here so experiments can swap topologies freely.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from ..core.errors import GraphGenerationError
from ..core.rng import RandomSource
from .base import Graph
from .configuration_model import random_regular_graph

__all__ = [
    "complete_graph",
    "gnp_graph",
    "hypercube_graph",
    "ring_graph",
    "regular_product_with_clique",
]


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (the Karp et al. setting).

    Assembled from a bulk edge array (with the CSR cache seeded as a side
    effect) because ``K_n`` has ``n(n-1)/2`` edges and per-edge construction
    dominates profile time in the pull/push-pull experiments.
    """
    if n < 2:
        raise GraphGenerationError(f"complete graph needs n >= 2, got {n}")
    rows, cols = np.triu_indices(n, k=1)
    return Graph.from_edge_array(n, np.column_stack([rows, cols]))


def gnp_graph(n: int, p: float, rng: RandomSource) -> Graph:
    """An Erdős–Rényi ``G(n, p)`` graph."""
    if n < 1:
        raise GraphGenerationError(f"G(n,p) needs n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphGenerationError(f"edge probability must be in [0, 1], got {p}")
    nx_graph = nx.fast_gnp_random_graph(n, p, seed=rng.randint(0, 2**31 - 1))
    graph = Graph(range(n))
    for u, v in nx_graph.edges():
        graph.add_edge(u, v)
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes."""
    if dimension < 1:
        raise GraphGenerationError(f"hypercube dimension must be >= 1, got {dimension}")
    n = 2**dimension
    graph = Graph(range(n))
    for node in range(n):
        for bit in range(dimension):
            neighbour = node ^ (1 << bit)
            if neighbour > node:
                graph.add_edge(node, neighbour)
    return graph


def ring_graph(n: int) -> Graph:
    """A cycle on ``n`` nodes — the classic worst case for rumour spreading."""
    if n < 3:
        raise GraphGenerationError(f"ring needs n >= 3, got {n}")
    graph = Graph(range(n))
    for node in range(n):
        graph.add_edge(node, (node + 1) % n)
    return graph


def regular_product_with_clique(
    n: int, d: int, rng: RandomSource, clique_size: int = 5
) -> Graph:
    """Cartesian product of a random d-regular graph with ``K_clique_size``.

    This is the paper's closing counterexample: a graph with expansion and
    connectivity similar to a random regular graph on which the
    multiple-choice modification gives no notable improvement, because each
    node's "local clique" keeps being re-called.

    Node ``(v, i)`` of the product is encoded as ``v * clique_size + i``.
    """
    if clique_size < 2:
        raise GraphGenerationError(f"clique size must be >= 2, got {clique_size}")
    base = random_regular_graph(n, d, rng)
    graph = Graph(range(n * clique_size))
    # Edges inside each copy of the clique.
    for v in range(n):
        for i, j in itertools.combinations(range(clique_size), 2):
            graph.add_edge(v * clique_size + i, v * clique_size + j)
    # One edge per base edge within each clique layer.
    for u, v in base.edges():
        for i in range(clique_size):
            graph.add_edge(u * clique_size + i, v * clique_size + i)
    return graph
