"""A small adjacency-list graph tailored to the broadcast simulator.

The simulator needs fast neighbour sampling, support for multigraphs (the
configuration model can produce self-loops and parallel edges, and the paper
explicitly analyses the process on such graphs), and cheap node insertion and
removal for churn experiments.  ``networkx`` is great for analysis but its
per-call overhead dominates at the scale of millions of neighbour lookups, so
the core simulator uses this dedicated structure and converts to ``networkx``
only for structural property computations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

__all__ = ["Graph"]


def csr_index_dtype(n: int, stub_count: int) -> np.dtype:
    """The narrowest index dtype that can address a CSR view of this size.

    ``int32`` halves the memory traffic of every stub gather in the bulk
    engines (and the resident size of million-node graphs); ``int64`` is used
    only when the stub count or node count could overflow 32-bit indexing.
    """
    if max(int(n) + 1, int(stub_count)) < 2**31:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class Graph:
    """An undirected (multi)graph stored as adjacency lists.

    Parallel edges are represented by repeated entries in the adjacency list;
    self-loops by a node appearing in its own list (once per loop).  The
    broadcast protocols sample *distinct stubs*, so a parallel edge genuinely
    raises the chance of calling that neighbour — exactly the semantics of the
    configuration model in the paper.
    """

    def __init__(self, nodes: Iterable[int] = ()) -> None:
        self._adjacency: Dict[int, List[int]] = {node: [] for node in nodes}
        self._edge_count = 0
        self._csr_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # When set, the graph was bulk-constructed and the adjacency dict has
        # not been materialised yet: node ids are 0.._lazy_n-1 and the CSR
        # cache is the single source of truth.  Everything the vectorized
        # engines and generators need (csr, degrees, membership, simplicity
        # checks) is answered straight from the arrays; the dict-of-lists is
        # built on first access by a consumer that genuinely needs it.  This
        # is what keeps million-node graph construction in NumPy time instead
        # of list-building time.
        self._lazy_n: Optional[int] = None
        self._csr_stats: Optional[Tuple[bool, Optional[int]]] = None

    def _invalidate_csr(self) -> None:
        self._csr_cache = None
        self._csr_stats = None

    def _materialise(self) -> None:
        """Build the adjacency dict of a bulk-constructed graph on demand."""
        if self._lazy_n is None:
            return
        indptr, indices = self._csr_cache
        stubs = indices.tolist()
        bounds = indptr.tolist()
        self._adjacency = {
            node: stubs[bounds[node] : bounds[node + 1]]
            for node in range(self._lazy_n)
        }
        self._lazy_n = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """Build a graph on nodes ``0..n-1`` from an edge list."""
        graph = cls(range(n))
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_edge_array(cls, n: int, edges: np.ndarray) -> "Graph":
        """Build a graph on nodes ``0..n-1`` from an ``(m, 2)`` endpoint array.

        Bulk counterpart of :meth:`from_edges` used by the graph generators:
        the adjacency lists are assembled with NumPy grouping instead of ``m``
        individual ``add_edge`` calls, and the CSR view is seeded as a side
        effect, so million-node graphs construct in seconds.  Self-loops are
        represented exactly as ``add_edge`` would represent them (two entries
        at the looping node).
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edge array must have shape (m, 2), got {edges.shape}")
        if edges.size == 0:
            return cls(range(n))
        if edges.min() < 0 or edges.max() >= n:
            raise ValueError(f"edge endpoints must lie in [0, {n})")
        # Interleaved stub views: src is the contiguous edge buffer itself,
        # dst the partner of each stub (one copy instead of two concats).
        edges = np.ascontiguousarray(edges)
        src = edges.ravel()
        dst = edges[:, ::-1].ravel()
        order = np.argsort(src, kind="stable")
        dtype = csr_index_dtype(n, src.size)
        grouped = dst[order].astype(dtype, copy=False)
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=dtype)
        np.cumsum(counts, out=indptr[1:])
        graph = cls()
        graph._adjacency = {}
        graph._lazy_n = n
        graph._edge_count = edges.shape[0]
        graph._csr_cache = (indptr, grouped)
        return graph

    @classmethod
    def from_csr(cls, n: int, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Build a graph on nodes ``0..n-1`` directly from a CSR stub view.

        The fastest constructor: generators that can lay out each node's
        adjacency stubs themselves (e.g. the pairing model, where every node
        owns exactly ``d`` stubs) skip the per-edge grouping sort entirely.
        ``indices`` must contain every edge twice (once per endpoint;
        self-loops contribute two entries at the looping node), exactly as
        :meth:`csr` would report it.  The arrays are adopted, not copied, and
        must not be mutated by the caller afterwards.
        """
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        dtype = csr_index_dtype(n, indices.size)
        indptr = indptr.astype(dtype, copy=False)
        indices = indices.astype(dtype, copy=False)
        if indptr.ndim != 1 or indptr.size != n + 1:
            raise ValueError(f"indptr must have shape ({n + 1},), got {indptr.shape}")
        if indices.ndim != 1 or indices.size != int(indptr[-1]):
            raise ValueError(
                f"indices must hold indptr[-1] = {int(indptr[-1])} stubs, "
                f"got {indices.size}"
            )
        if indices.size % 2 != 0:
            raise ValueError("stub count must be even (two stubs per edge)")
        graph = cls()
        graph._adjacency = {}
        graph._lazy_n = n
        graph._edge_count = indices.size // 2
        graph._csr_cache = (indptr, indices)
        return graph

    @classmethod
    def from_networkx(cls, nx_graph: "nx.Graph") -> "Graph":
        """Convert a networkx graph (nodes are relabelled to 0..n-1)."""
        mapping = {node: index for index, node in enumerate(sorted(nx_graph.nodes()))}
        graph = cls(range(len(mapping)))
        for u, v in nx_graph.edges():
            graph.add_edge(mapping[u], mapping[v])
        return graph

    def add_node(self, node_id: int) -> None:
        """Add an isolated node (no-op if already present)."""
        self._materialise()
        if node_id not in self._adjacency:
            self._adjacency[node_id] = []
            self._invalidate_csr()

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge (allows self-loops and parallel edges).

        A self-loop consumes two stubs of its node, exactly as in the
        configuration model, so it appears twice in the adjacency list and
        contributes two to the node's degree.
        """
        self._materialise()
        if u not in self._adjacency or v not in self._adjacency:
            raise KeyError(f"both endpoints must exist before adding edge ({u}, {v})")
        self._adjacency[u].append(v)
        self._adjacency[v].append(u)
        self._edge_count += 1
        self._invalidate_csr()

    def remove_edge(self, u: int, v: int) -> None:
        """Remove one copy of the undirected edge ``(u, v)``."""
        self._materialise()
        self._adjacency[u].remove(v)
        self._adjacency[v].remove(u)
        self._edge_count -= 1
        self._invalidate_csr()

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all its incident edges."""
        self._materialise()
        neighbours = self._adjacency.pop(node_id)
        removed = 0
        for other in set(neighbours):
            if other == node_id:
                removed += neighbours.count(node_id) // 2
                continue
            count = self._adjacency[other].count(node_id)
            self._adjacency[other] = [x for x in self._adjacency[other] if x != node_id]
            removed += count
        self._edge_count -= removed
        self._invalidate_csr()

    # -- queries ---------------------------------------------------------------

    def __contains__(self, node_id: int) -> bool:
        if self._lazy_n is not None:
            return isinstance(node_id, (int, np.integer)) and 0 <= node_id < self._lazy_n
        return node_id in self._adjacency

    def __len__(self) -> int:
        if self._lazy_n is not None:
            return self._lazy_n
        return len(self._adjacency)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self)

    @property
    def edge_count(self) -> int:
        """Number of edges (parallel edges counted with multiplicity)."""
        return self._edge_count

    def nodes(self) -> List[int]:
        """All node ids, sorted."""
        if self._lazy_n is not None:
            return list(range(self._lazy_n))
        return sorted(self._adjacency)

    def iter_nodes(self) -> Iterator[int]:
        """Iterate node ids in insertion order (cheaper than sorting)."""
        if self._lazy_n is not None:
            return iter(range(self._lazy_n))
        return iter(self._adjacency)

    def neighbors(self, node_id: int) -> List[int]:
        """The adjacency list of ``node_id`` (with multiplicity); not a copy."""
        self._materialise()
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        """Degree of ``node_id`` (a self-loop contributes two)."""
        if self._lazy_n is not None:
            if not 0 <= node_id < self._lazy_n:
                raise KeyError(node_id)
            indptr, _ = self._csr_cache
            return int(indptr[node_id + 1] - indptr[node_id])
        return len(self._adjacency[node_id])

    def degrees(self) -> Dict[int, int]:
        """Mapping of node id to degree."""
        if self._lazy_n is not None:
            counts = np.diff(self._csr_cache[0]).tolist()
            return dict(enumerate(counts))
        return {node: len(adj) for node, adj in self._adjacency.items()}

    def edges(self) -> List[Tuple[int, int]]:
        """Every edge once as a ``(min, max)`` pair (with multiplicity)."""
        self._materialise()
        seen: Dict[Tuple[int, int], int] = {}
        for u, adj in self._adjacency.items():
            for v in adj:
                key = (u, v) if u <= v else (v, u)
                seen[key] = seen.get(key, 0) + 1
        result: List[Tuple[int, int]] = []
        for (u, v), count in seen.items():
            # Both endpoints contribute an adjacency entry per edge copy
            # (self-loops contribute two entries at the same node), so every
            # edge is seen exactly twice.
            result.extend([(u, v)] * (count // 2))
        return result

    def has_edge(self, u: int, v: int) -> bool:
        """True if at least one edge joins ``u`` and ``v``."""
        self._materialise()
        return v in self._adjacency.get(u, ())

    def _stub_owners(self) -> np.ndarray:
        """The owning node of each CSR stub (lazy graphs only)."""
        indptr, _ = self._csr_cache
        return np.repeat(
            np.arange(self._lazy_n, dtype=np.int64), np.diff(indptr)
        )

    def has_self_loop(self) -> bool:
        """True if any node has an edge to itself."""
        if self._lazy_n is not None:
            _, indices = self._csr_cache
            return bool((indices == self._stub_owners()).any())
        return any(node in adj for node, adj in self._adjacency.items())

    def has_parallel_edges(self) -> bool:
        """True if any pair of nodes is joined by more than one edge."""
        if self._lazy_n is not None:
            _, indices = self._csr_cache
            owners = self._stub_owners()
            non_loop = indices != owners
            # Owner-major stub keys: duplicates within a node's list land
            # adjacent after a sort, so one pass finds any parallel edge.
            keys = np.sort(owners[non_loop] * self._lazy_n + indices[non_loop])
            return bool((keys[1:] == keys[:-1]).any())
        for node, adj in self._adjacency.items():
            non_loop = [v for v in adj if v != node]
            if len(non_loop) != len(set(non_loop)):
                return True
        return False

    def is_simple(self) -> bool:
        """True if the graph has neither self-loops nor parallel edges."""
        return not self.has_self_loop() and not self.has_parallel_edges()

    def is_regular(self) -> bool:
        """True if every node has the same degree."""
        if self._lazy_n is not None:
            counts = np.diff(self._csr_cache[0])
            return bool(counts.size == 0 or (counts == counts[0]).all())
        degrees = {len(adj) for adj in self._adjacency.values()}
        return len(degrees) <= 1

    # -- bulk (CSR) view ---------------------------------------------------------

    def has_contiguous_ids(self) -> bool:
        """True if the node ids are exactly ``0..n-1`` (CSR requirement)."""
        if self._lazy_n is not None:
            return self._lazy_n > 0
        n = len(self._adjacency)
        if n == 0:
            return False
        return min(self._adjacency) == 0 and max(self._adjacency) == n - 1

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The adjacency structure as cached CSR offset arrays.

        Returns ``(indptr, indices)`` — ``indices[indptr[v]:indptr[v+1]]`` are
        the adjacency stubs of node ``v``, in the same order as
        :meth:`neighbors`, so index-based sampling over either view draws from
        the same distribution (parallel edges and self-loops keep their
        multiplicity).  The arrays are cached until the graph mutates; callers
        must treat them as read-only.

        Raises
        ------
        ValueError
            If the node ids are not contiguous ``0..n-1`` (e.g. after churn).
        """
        if self._csr_cache is None:
            if not self.has_contiguous_ids():
                raise ValueError(
                    "CSR export requires contiguous node ids 0..n-1; "
                    "this graph has been mutated into a sparse id space"
                )
            n = len(self._adjacency)
            counts = np.empty(n, dtype=np.int64)
            for node in range(n):
                counts[node] = len(self._adjacency[node])
            dtype = csr_index_dtype(n, int(counts.sum()))
            indptr = np.zeros(n + 1, dtype=dtype)
            np.cumsum(counts, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=dtype)
            for node in range(n):
                start, end = indptr[node], indptr[node + 1]
                if end > start:
                    indices[start:end] = self._adjacency[node]
            self._csr_cache = (indptr, indices)
        return self._csr_cache

    def degree_array(self) -> np.ndarray:
        """Per-node degrees as an array aligned with the CSR view."""
        indptr, _ = self.csr()
        return np.diff(indptr)

    def csr_stats(self) -> Tuple[bool, Optional[int]]:
        """``(has_self_loops, uniform_degree)`` for the CSR view, cached with it.

        The engines key their fast paths off these two facts (skip the
        self-call filter on loop-free graphs, replace per-sampler degree
        gathers with scalar arithmetic on regular ones).  They are O(m) to
        derive, so they live here next to the CSR cache — computed once per
        graph, invalidated together with it on mutation — instead of being
        recomputed by every engine construction in a per-seed loop.
        """
        if self._csr_stats is None:
            indptr, indices = self.csr()
            degrees = np.diff(indptr)
            owners = np.repeat(
                np.arange(indptr.size - 1, dtype=np.int64), degrees
            )
            has_loops = bool((indices == owners).any())
            uniform = (
                int(degrees[0])
                if degrees.size and (degrees == degrees[0]).all()
                else None
            )
            self._csr_stats = (has_loops, uniform)
        return self._csr_stats

    # -- conversions -------------------------------------------------------------

    def to_networkx(self) -> "nx.Graph":
        """Convert to a networkx ``Graph`` (parallel edges collapse)."""
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self._adjacency)
        for u, v in self.edges():
            nx_graph.add_edge(u, v)
        return nx_graph

    def to_networkx_multigraph(self) -> "nx.MultiGraph":
        """Convert to a networkx ``MultiGraph`` preserving multiplicity."""
        nx_graph = nx.MultiGraph()
        nx_graph.add_nodes_from(self._adjacency)
        for u, v in self.edges():
            nx_graph.add_edge(u, v)
        return nx_graph

    def copy(self) -> "Graph":
        """A deep copy of the graph."""
        clone = Graph()
        if self._lazy_n is not None:
            # Share the immutable CSR arrays; the clone materialises its own
            # adjacency lists the moment anything mutates or reads them.
            clone._lazy_n = self._lazy_n
            clone._csr_cache = self._csr_cache
        else:
            clone._adjacency = {
                node: list(adj) for node, adj in self._adjacency.items()
            }
        clone._edge_count = self._edge_count
        return clone
