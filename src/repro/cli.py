"""Command-line interface.

The sub-commands cover the common workflows:

* ``repro-broadcast simulate`` — one broadcast configuration, printed as a
  small table (per-seed results plus the aggregate).  Internally the flags
  are assembled into a :class:`ScenarioSpec`; ``--dump-spec`` prints that
  spec as JSON instead of running, so every invocation can emit the exact
  record that reproduces it.
* ``repro-broadcast run-spec <file.json>`` — execute a scenario spec file
  (single point or full sweep grid) and print the summary table.
* ``repro-broadcast experiment <id>`` — run one of the registered experiments
  (E1–E13) and print its table.
* ``repro-broadcast list-protocols`` / ``list-graphs`` / ``list-failures`` /
  ``list-churn`` / ``list-experiments`` — discovery, backed by the unified
  registries, including each entry's keyword parameters.
* ``repro-broadcast lint`` — the determinism-contract checker
  (:mod:`repro.lint`); CI gates on it next to the parity tripwires.

The CLI is intentionally a thin veneer over the library; anything it can do is
one or two calls into :mod:`repro`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.errors import ConfigurationError
from .core.metrics import aggregate_runs
from .core.registry import Registry
from .core.rng import RandomSource, derive_seed
from .experiments.registry import available_experiments, run_experiment_by_id
from .experiments.results_io import save_table
from .experiments.tables import Table
from .failures.churn_registry import CHURN_MODELS
from .failures.registry import FAILURE_MODELS
from .graphs.registry import GRAPH_FAMILIES
from .lint.cli import add_lint_parser, run_lint
from .protocols.registry import PROTOCOLS, available_protocols
from .spec.run import ScenarioRun, run_spec
from .spec.scenario import GraphSpec, ProtocolSpec, ScenarioSpec, load_spec, save_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-broadcast",
        description=(
            "Randomised broadcasting in random regular networks "
            "(Berenbrink, Elsässer, Friedetzky — PODC 2008 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run one broadcast configuration and print the results"
    )
    simulate.add_argument("--n", type=int, default=1024, help="number of nodes")
    simulate.add_argument("--d", type=int, default=8, help="degree of the regular graph")
    simulate.add_argument(
        "--protocol",
        default="algorithm1",
        choices=available_protocols(),
        help="protocol to run",
    )
    simulate.add_argument("--seeds", type=int, default=3, help="number of runs")
    simulate.add_argument("--seed", type=int, default=2008, help="master seed")
    simulate.add_argument(
        "--loss", type=float, default=0.0, help="per-transmission loss probability"
    )
    simulate.add_argument(
        "--full-schedule",
        action="store_true",
        help="run the protocol's full schedule instead of stopping at completion",
    )
    simulate.add_argument(
        "--engine",
        default="auto",
        choices=["auto", "scalar", "vectorized"],
        help=(
            "round engine: 'auto' picks the bulk NumPy engine when the "
            "protocol supports it, 'scalar'/'vectorized' force one path"
        ),
    )
    simulate.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "run all seeds as one batched vectorized program when eligible "
            "(bit-identical to per-seed runs; --no-batch forces the per-seed loop)"
        ),
    )
    simulate.add_argument(
        "--save", default=None, help="write the results table to a .json or .csv file"
    )
    simulate.add_argument(
        "--dump-spec",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "emit the ScenarioSpec JSON that reproduces this invocation "
            "(to stdout, or to PATH) instead of running it"
        ),
    )

    run_spec_cmd = subparsers.add_parser(
        "run-spec", help="execute a scenario spec file (JSON) and print the table"
    )
    run_spec_cmd.add_argument("spec_file", help="path to a ScenarioSpec .json file")
    run_spec_cmd.add_argument(
        "--save", default=None, help="write the results table to a .json or .csv file"
    )
    run_spec_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan the sweep's grid points out over N worker processes; the "
            "merged result is bit-identical to the serial run"
        ),
    )
    run_spec_cmd.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help=(
            "run only shard I of K (zero-based contiguous slice of the grid); "
            "for multi-host sweeps give every shard a --checkpoint-dir, "
            "combine the directories, and reassemble with --resume"
        ),
    )
    run_spec_cmd.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "write one checkpoint file per completed grid point to DIR so an "
            "interrupted sweep can be resumed"
        ),
    )
    run_spec_cmd.add_argument(
        "--stream-dir",
        default=None,
        metavar="DIR",
        help=(
            "append every completed grid point to a crash-safe streaming "
            "sink in DIR (checksummed, fsync'd segment files) instead of "
            "holding results in memory; a sweep killed at any byte offset "
            "resumes with --resume from exactly what reached the disk"
        ),
    )
    run_spec_cmd.add_argument(
        "--fsync-every",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fsync the stream sink after every N appended records (default "
            "1: every point durable before the sweep proceeds; larger N "
            "trades a crash window of up to N records for throughput)"
        ),
    )
    run_spec_cmd.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip grid points already durable in --checkpoint-dir and/or "
            "--stream-dir (the directory must belong to this exact spec)"
        ),
    )
    run_spec_cmd.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "print the expanded grid (point index, axis values, label, run "
            "seeds) without running anything; honours --shard"
        ),
    )
    run_spec_cmd.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed grid point (to stderr)",
    )
    run_spec_cmd.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "execution attempts per grid point before it is quarantined and "
            "the sweep continues without it (default 3; quarantined points "
            "are listed in the table notes and provenance)"
        ),
    )
    run_spec_cmd.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point wall-clock budget; a stalled worker is restarted and "
            "the overdue point retried (parallel runs only)"
        ),
    )
    # Deterministic fault injection — test machinery for the resilience
    # layer (see repro.faultinject), deliberately absent from --help.
    run_spec_cmd.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help=argparse.SUPPRESS,
    )

    experiment = subparsers.add_parser(
        "experiment", help="run a registered experiment (E1..E13)"
    )
    experiment.add_argument("experiment_id", help="experiment id, e.g. E1")
    experiment.add_argument(
        "--full",
        action="store_true",
        help="use the full (slow) sweep sizes instead of the quick ones",
    )
    experiment.add_argument("--seed", type=int, default=2008, help="master seed")
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for experiments with a parallel sweep path "
            "(e.g. E1); results are bit-identical to the serial run"
        ),
    )
    experiment.add_argument(
        "--save", default=None, help="write the results table to a .json or .csv file"
    )

    p2p = subparsers.add_parser(
        "p2p", help="run the replicated-database gossip simulation"
    )
    p2p.add_argument("--peers", type=int, default=256, help="number of peers")
    p2p.add_argument("--d", type=int, default=8, help="overlay degree")
    p2p.add_argument(
        "--rule",
        default="algorithm1",
        choices=["push", "push-pull", "algorithm1", "algorithm2"],
        help="per-update gossip rule",
    )
    p2p.add_argument("--updates", type=int, default=2, help="updates created per round")
    p2p.add_argument(
        "--rounds", type=int, default=5, help="rounds during which updates are created"
    )
    p2p.add_argument("--churn", type=float, default=0.0, help="join/leave rate per round")
    p2p.add_argument(
        "--anti-entropy",
        type=int,
        default=0,
        help="anti-entropy repair rounds to run after the gossip phase",
    )
    p2p.add_argument("--seed", type=int, default=2008, help="master seed")

    subparsers.add_parser(
        "list-protocols", help="list available protocols and their parameters"
    )
    subparsers.add_parser(
        "list-graphs", help="list available graph families and their parameters"
    )
    subparsers.add_parser(
        "list-failures", help="list available failure models and their parameters"
    )
    subparsers.add_parser(
        "list-churn", help="list available churn models and their parameters"
    )
    subparsers.add_parser("list-experiments", help="list registered experiments")
    add_lint_parser(subparsers)
    return parser


def _simulate_spec(args: argparse.Namespace) -> ScenarioSpec:
    """The ScenarioSpec equivalent of a ``simulate`` invocation."""
    config = {}
    if args.loss:
        config["message_loss_probability"] = args.loss
    if args.full_schedule:
        config["stop_when_informed"] = False
    return ScenarioSpec(
        name="simulate",
        graph=GraphSpec(
            family="connected-random-regular", params={"n": args.n, "d": args.d}
        ),
        protocol=ProtocolSpec(name=args.protocol),
        repetitions=args.seeds,
        master_seed=args.seed,
        label="simulate-{protocol}",
        engine=args.engine,
        batch=args.batch,
        config=config,
    )


def _render_point_table(title: str, run: ScenarioRun) -> Table:
    """The per-seed simulate table (one row per run plus the aggregate note)."""
    results = run.points[0].results
    table = Table(
        title=title,
        columns=["run", "success", "rounds", "transmissions", "tx_per_node"],
    )
    for index, result in enumerate(results):
        table.add_row(
            run=index,
            success=result.success,
            rounds=(
                result.rounds_to_completion
                if result.rounds_to_completion is not None
                else result.rounds_executed
            ),
            transmissions=result.total_transmissions,
            tx_per_node=result.transmissions_per_node,
        )
    aggregate = aggregate_runs(results)
    engine_note = results[0].metadata.get("engine", "scalar")
    if "batch_size" in results[0].metadata:
        engine_note += f", batched x{results[0].metadata['batch_size']}"
    table.add_note(
        f"aggregate over {aggregate.runs} runs: success rate "
        f"{aggregate.success_rate:.2f}, mean rounds {aggregate.rounds.mean:.1f}, "
        f"mean tx/node {aggregate.transmissions_per_node.mean:.2f} "
        f"[engine: {engine_note}]"
    )
    table.metadata["spec"] = run.spec.to_dict()
    return table


def _run_simulate(args: argparse.Namespace) -> int:
    spec = _simulate_spec(args)
    if args.dump_spec is not None:
        if args.dump_spec == "-":
            print(spec.to_json())
        else:
            destination = save_spec(spec, args.dump_spec)
            print(f"wrote spec to {destination}")
        return 0
    run = run_spec(spec)
    table = _render_point_table(
        f"{args.protocol} on a random {args.d}-regular graph with n = {args.n}",
        run,
    )
    print(table.render())
    if args.save:
        destination = save_table(table, args.save)
        print(f"saved results to {destination}")
    return 0


def _point_node_count(point_spec: ScenarioSpec) -> Optional[int]:
    """The node count a point's graph will have, when known without a build."""
    params = point_spec.graph.params
    if "n" in params:
        return int(params["n"])
    if point_spec.graph.family == "hypercube" and "dimension" in params:
        return 2 ** int(params["dimension"])
    return None


def _predict_point_engine(point_spec: ScenarioSpec, n: Optional[int]) -> str:
    """Predicted engine (and batching) of one grid point, without any compute.

    Replays the protocol/failure-model parts of the vectorized dispatch
    rules on a stub graph; the graph-side requirement (contiguous node ids)
    holds for every registry family, so the prediction matches what
    ``run_spec`` will select unless a custom graph breaks it.
    """
    from .core.engine_vectorized import vectorization_unsupported_reason
    from .graphs.base import Graph

    config = point_spec.simulation_config()
    engine = config.engine if config is not None else point_spec.engine
    if engine == "scalar":
        return "scalar (forced)"
    try:
        protocol = point_spec.protocol.factory()(
            point_spec.protocol.n_estimate or n or 1024
        )
        failure = point_spec.failure.build()
        churn = point_spec.churn.build()
    except Exception as error:  # pragma: no cover - defensive
        return f"unknown ({error})"
    stub = Graph.from_edges(2, [(0, 1)])
    from .core.config import SimulationConfig

    reason = vectorization_unsupported_reason(
        stub,
        protocol,
        config if config is not None else SimulationConfig(),
        failure,
        churn,
    )
    if reason is not None:
        return f"scalar ({reason})"
    if point_spec.repetitions > 1 and point_spec.batch and churn is None:
        return "vectorized (batched)"
    return "vectorized (per-seed)"


def _dry_run_table(spec: ScenarioSpec, shard: Optional[str]) -> Table:
    """The expanded grid as a table: index, axis values, label, run seeds,
    predicted engine, and the batch state shape (R, n) with its estimated
    resident size — enough to predict memory before a million-node launch."""
    from .dist.partition import expand_points, select_indices
    from .experiments.runner import ExperimentRunner

    points = expand_points(spec)
    indices = select_indices(len(points), shard=shard)
    runner = ExperimentRunner.from_spec(spec)
    axis_keys = (
        [axis.label_key for axis in spec.sweep.axes] if spec.sweep is not None else []
    )
    table = Table(
        title=f"dry run: {spec.name} ({len(points)} point(s), "
        f"{spec.repetitions} repetition(s) per point)",
        columns=["point"]
        + axis_keys
        + ["label", "seeds", "batch_shape", "est_state_mb", "engine"],
    )
    #: Bytes per (replication, node) state entry: informed flag (1) +
    #: informed round (int32) + sorted informed-index vector (int32).
    state_bytes = 9
    for index in indices:
        point = points[index]
        seed_label = runner.seed_label_for(point.spec, point.label)
        seeds = (
            ", ".join(str(seed) for seed in runner.run_seeds(seed_label))
            if seed_label is not None
            # Non-regular families key run seeds off the materialised node
            # count; a dry run never builds graphs, so show the rule instead.
            else f"derive_seed({spec.master_seed}, 'run', '{point.label}-<node_count>', i)"
        )
        n = _point_node_count(point.spec)
        engine = _predict_point_engine(point.spec, n)
        rows = point.spec.repetitions if engine == "vectorized (batched)" else 1
        if n is None:
            shape = f"({rows}, ?)"
            est_mb = "?"
        else:
            shape = f"({rows}, {n})"
            est_mb = f"{rows * n * state_bytes / 1e6:.1f}"
        table.add_row(
            **point.values,
            point=index,
            label=point.label,
            seeds=seeds,
            batch_shape=shape,
            est_state_mb=est_mb,
            engine=engine,
        )
    table.add_note(
        "batch_shape is the (R, n) engine state of one point; est_state_mb "
        f"≈ R·n·{state_bytes} bytes (flags + informed rounds + index pools), "
        "sampling scratch adds ~16 bytes per pushing node at peak"
    )
    if shard is not None:
        if indices:
            table.add_note(
                f"shard {shard} selects {len(indices)} of {len(points)} "
                f"point(s): {indices[0]}..{indices[-1]}"
            )
        else:
            table.add_note(
                f"shard {shard} selects no points of this {len(points)}-point grid"
            )
    table.add_note(
        f"master seed {spec.master_seed}; run seeds are "
        "derive_seed(master, 'run', seed_label, i) for i in 0..repetitions-1"
    )
    return table


def _run_run_spec(args: argparse.Namespace) -> int:
    from .dist.progress import print_point_progress
    from .dist.resilience import RetryPolicy, SweepInterrupted
    from .dist.sink import SinkFullError

    if args.resume and args.checkpoint_dir is None and args.stream_dir is None:
        # Fail before any work (or spec parsing) happens: a typo'd resume
        # would otherwise silently re-run the whole sweep from scratch.
        raise ConfigurationError(
            "--resume requires --checkpoint-dir or --stream-dir: resuming "
            "needs the directory that holds the earlier run's durable points"
        )

    spec = load_spec(args.spec_file)
    if args.dry_run:
        print(_dry_run_table(spec, args.shard).render())
        return 0

    retry = None
    if args.max_attempts is not None or args.point_timeout is not None:
        kwargs = {}
        if args.max_attempts is not None:
            kwargs["max_attempts"] = args.max_attempts
        if args.point_timeout is not None:
            kwargs["timeout_seconds"] = args.point_timeout
        retry = RetryPolicy(**kwargs)
    fault_plan = None
    if args.fault_plan is not None:
        from .faultinject import load_plan

        fault_plan = load_plan(args.fault_plan)

    try:
        run = run_spec(
            spec,
            workers=args.workers,
            shard=args.shard,
            checkpoint_dir=args.checkpoint_dir,
            stream_dir=args.stream_dir,
            fsync_every=args.fsync_every,
            resume=args.resume,
            progress=print_point_progress if args.progress else None,
            retry=retry,
            fault_plan=fault_plan,
        )
    except SweepInterrupted as interrupted:
        print(str(interrupted), file=sys.stderr)
        return 130  # conventional exit status for SIGINT-terminated commands
    except SinkFullError as full:
        # Everything appended so far is durable; the sweep is resumable as
        # soon as space is freed — report how, don't stack-trace.
        print(str(full), file=sys.stderr)
        return 75  # EX_TEMPFAIL: transient, retry later
    table = run.to_table()
    print(table.render())
    if args.save:
        destination = save_table(table, args.save)
        print(f"saved results to {destination}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    table = run_experiment_by_id(
        args.experiment_id, quick=not args.full, master_seed=args.seed, **kwargs
    )
    print(table.render())
    if args.save:
        destination = save_table(table, args.save)
        print(f"saved results to {destination}")
    return 0


def _run_p2p(args: argparse.Namespace) -> int:
    from .p2p.gossip_rules import build_gossip_rule
    from .p2p.overlay import Overlay
    from .p2p.replicated_db import ReplicatedDatabase, UpdateWorkload

    rng = RandomSource(seed=derive_seed(args.seed, "cli-p2p"))
    overlay = Overlay(n=args.peers, degree=args.d, rng=rng.spawn("overlay"))
    database = ReplicatedDatabase(
        overlay=overlay,
        rule=build_gossip_rule(args.rule, args.peers),
        rng=rng.spawn("db"),
        join_rate=args.churn,
        leave_rate=args.churn,
    )
    workload = UpdateWorkload(
        updates_per_round=args.updates, injection_rounds=args.rounds
    )
    report = database.run(workload)

    table = Table(
        title=(
            f"replicated database: {args.rule} rule, {args.peers} peers, "
            f"degree {args.d}, churn {args.churn}"
        ),
        columns=["metric", "value"],
    )
    table.add_row(metric="updates created", value=report.updates_created)
    table.add_row(metric="fully replicated", value=report.updates_fully_replicated)
    table.add_row(metric="replication rate", value=report.replication_rate)
    table.add_row(metric="mean convergence rounds", value=report.mean_convergence_rounds)
    table.add_row(
        metric="transmissions / update / peer",
        value=report.transmissions_per_update_per_peer,
    )
    table.add_row(metric="payload KiB", value=report.total_payload_bytes / 1024.0)
    table.add_row(metric="final divergence", value=report.final_divergence)
    table.add_row(metric="replicas agree", value=database.replicas_agree())

    if args.anti_entropy > 0:
        repair = database.anti_entropy(rounds=args.anti_entropy)
        table.add_row(metric="anti-entropy rounds", value=repair.rounds)
        table.add_row(metric="anti-entropy updates moved", value=repair.updates_transferred)
        table.add_row(metric="divergence after repair", value=repair.final_divergence)

    print(table.render())
    return 0


def _print_registry(registry: Registry) -> int:
    for entry in registry:
        print(f"{entry.name}: {entry.summary}" if entry.summary else entry.name)
        for param, help_text in entry.params.items():
            print(f"    {param} — {help_text}")
    return 0


def _run_list_experiments() -> int:
    for experiment_id, description in available_experiments().items():
        print(f"{experiment_id}: {description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "run-spec":
        return _run_run_spec(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "p2p":
        return _run_p2p(args)
    if args.command == "list-protocols":
        return _print_registry(PROTOCOLS)
    if args.command == "list-graphs":
        return _print_registry(GRAPH_FAMILIES)
    if args.command == "list-failures":
        return _print_registry(FAILURE_MODELS)
    if args.command == "list-churn":
        return _print_registry(CHURN_MODELS)
    if args.command == "list-experiments":
        return _run_list_experiments()
    if args.command == "lint":
        return run_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
