"""Peers and database updates for the replicated-database application.

The paper's motivating application (following Demers et al.) is keeping
replicas of a database consistent by broadcasting updates through the overlay.
A :class:`Peer` holds a key–value store with per-key versions; an
:class:`Update` is one write that must reach every replica.  Conflict
resolution is last-writer-wins on ``(version, origin)``, which is determined
entirely by the update itself so that replicas converge regardless of the
order in which gossip delivers updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

__all__ = ["Update", "Peer"]


@dataclass(frozen=True, order=True)
class Update:
    """One replicated-database write travelling through the gossip layer.

    Ordering is by ``(key, version, origin)`` so that last-writer-wins
    resolution is deterministic across replicas even for concurrent writes of
    the same key and version.
    """

    key: str
    version: int
    origin: int
    created_round: int
    value: str = ""
    size: int = 64

    @property
    def update_id(self) -> tuple:
        """A globally unique identifier for the update."""
        return (self.key, self.version, self.origin)

    def age(self, current_round: int) -> int:
        """Rounds elapsed since the update was created."""
        return current_round - self.created_round

    def supersedes(self, other: Optional["Update"]) -> bool:
        """Last-writer-wins: True if this update should replace ``other``."""
        if other is None:
            return True
        if self.key != other.key:
            return False
        return (self.version, self.origin) > (other.version, other.origin)


@dataclass
class Peer:
    """One replica: a key–value store plus the set of updates it has heard of."""

    peer_id: int
    store: Dict[str, Update] = field(default_factory=dict)
    known_updates: Set[tuple] = field(default_factory=set)
    joined_round: int = 0

    def knows(self, update: Update) -> bool:
        """True if the peer has already received this exact update."""
        return update.update_id in self.known_updates

    def apply(self, update: Update) -> bool:
        """Record ``update``; apply it to the store if it wins LWW.

        Returns True if the update was new to this peer (regardless of
        whether it won the write conflict), which is what gossip accounting
        cares about.
        """
        if self.knows(update):
            return False
        self.known_updates.add(update.update_id)
        current = self.store.get(update.key)
        if update.supersedes(current):
            self.store[update.key] = update
        return True

    def value_of(self, key: str) -> Optional[str]:
        """The current value of ``key`` at this replica (None if unset)."""
        update = self.store.get(key)
        return update.value if update is not None else None

    def digest(self) -> Dict[str, tuple]:
        """A compact summary of the replica state, used to compare replicas."""
        return {key: (u.version, u.origin, u.value) for key, u in self.store.items()}
