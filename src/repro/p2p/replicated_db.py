"""Replicated-database maintenance over a gossiping P2P overlay.

This is the application the paper motivates in its introduction: replicas of a
database scattered over a peer-to-peer overlay must learn about every update.
The simulation runs many concurrent updates through the phone call model, with
per-update push/pull decisions delegated to a :class:`GossipRule`
(:mod:`repro.p2p.gossip_rules`).  As in the paper's cost model, all updates a
peer wants to push over a channel are combined into one payload, but the
transmission count charges one unit per update per channel (the amortised
accounting of Karp et al.), and payload bytes are tracked separately for the
bandwidth view.

The simulation supports churn through the overlay's join/leave operations, so
experiment E11 can measure convergence while the peer set changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError
from ..core.rng import RandomSource
from .gossip_rules import GossipRule
from .overlay import Overlay
from .peer import Peer, Update

__all__ = ["UpdateWorkload", "ReplicationReport", "ReplicatedDatabase"]


@dataclass(frozen=True)
class UpdateWorkload:
    """How many updates enter the system, where, and for how long.

    Attributes
    ----------
    updates_per_round:
        Number of fresh updates created in each round of the injection window.
    injection_rounds:
        Number of rounds during which updates are created.
    keys:
        Size of the key space; origins and keys are drawn uniformly, so small
        key spaces exercise the last-writer-wins conflict path.
    value_size:
        Abstract payload size per update (bytes) for bandwidth accounting.
    """

    updates_per_round: int = 1
    injection_rounds: int = 1
    keys: int = 16
    value_size: int = 64

    def __post_init__(self) -> None:
        if self.updates_per_round < 0:
            raise ConfigurationError("updates_per_round must be non-negative")
        if self.injection_rounds < 0:
            raise ConfigurationError("injection_rounds must be non-negative")
        if self.keys < 1:
            raise ConfigurationError("keys must be at least 1")

    @property
    def total_updates(self) -> int:
        """Total number of updates the workload will create."""
        return self.updates_per_round * self.injection_rounds


@dataclass
class ReplicationReport:
    """Outcome of one replicated-database simulation."""

    peers: int
    updates_created: int
    updates_fully_replicated: int
    rounds_executed: int
    total_transmissions: int
    total_payload_bytes: int
    total_channels_opened: int
    convergence_rounds: Dict[tuple, int] = field(default_factory=dict)
    divergence_curve: List[float] = field(default_factory=list)
    final_divergence: float = 0.0

    @property
    def replication_rate(self) -> float:
        """Fraction of created updates that reached every live replica."""
        if self.updates_created == 0:
            return 1.0
        return self.updates_fully_replicated / self.updates_created

    @property
    def transmissions_per_update_per_peer(self) -> float:
        """The per-update, per-peer transmission cost (the paper's headline unit)."""
        if self.updates_created == 0 or self.peers == 0:
            return 0.0
        return self.total_transmissions / (self.updates_created * self.peers)

    @property
    def mean_convergence_rounds(self) -> float:
        """Average rounds from creation to full replication (converged updates)."""
        if not self.convergence_rounds:
            return 0.0
        return sum(self.convergence_rounds.values()) / len(self.convergence_rounds)


class ReplicatedDatabase:
    """Simulate replica convergence over a gossiping overlay.

    Parameters
    ----------
    overlay:
        The peer overlay (mutated in place when churn rates are non-zero).
    rule:
        Per-update push/pull decision rule (e.g. ``Algorithm1Rule``).
    rng:
        Randomness source for neighbour choices, workload placement and churn.
    join_rate / leave_rate:
        Expected per-round membership changes as a fraction of the current
        overlay size.  New peers start with empty stores and must catch up via
        gossip, which is the interesting case for convergence.
    """

    def __init__(
        self,
        overlay: Overlay,
        rule: GossipRule,
        rng: RandomSource,
        join_rate: float = 0.0,
        leave_rate: float = 0.0,
    ) -> None:
        for name, rate in (("join_rate", join_rate), ("leave_rate", leave_rate)):
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {rate}")
        self.overlay = overlay
        self.rule = rule
        self.rng = rng
        self.join_rate = join_rate
        self.leave_rate = leave_rate
        self.peers: Dict[int, Peer] = {
            peer_id: Peer(peer_id=peer_id) for peer_id in overlay.peer_ids()
        }
        # Per-peer, per-update age at reception (0 for the originator).
        self._received_age: Dict[int, Dict[tuple, int]] = {
            peer_id: {} for peer_id in self.peers
        }

    # -- internal helpers ----------------------------------------------------------

    def _inject_updates(
        self, round_index: int, workload: UpdateWorkload, updates: Dict[tuple, Update]
    ) -> None:
        if round_index > workload.injection_rounds:
            return
        peer_ids = list(self.peers)
        for _ in range(workload.updates_per_round):
            origin = peer_ids[self.rng.randint(0, len(peer_ids))]
            key = f"key-{self.rng.randint(0, workload.keys)}"
            update = Update(
                key=key,
                version=round_index,
                origin=origin,
                created_round=round_index,
                value=f"v{round_index}@{origin}",
                size=workload.value_size,
            )
            updates[update.update_id] = update
            self.peers[origin].apply(update)
            self._received_age[origin][update.update_id] = 0

    def _apply_churn(self, round_index: int) -> None:
        if self.leave_rate > 0.0:
            departures = self.rng.binomial(self.overlay.size, self.leave_rate)
            for _ in range(departures):
                if self.overlay.size <= self.overlay.degree + 2:
                    break
                peer_id = self.overlay.leave()
                self.peers.pop(peer_id, None)
                self._received_age.pop(peer_id, None)
        if self.join_rate > 0.0:
            arrivals = self.rng.binomial(self.overlay.size, self.join_rate)
            for _ in range(arrivals):
                peer_id = self.overlay.join()
                self.peers[peer_id] = Peer(peer_id=peer_id, joined_round=round_index)
                self._received_age[peer_id] = {}

    def _transferable_updates(
        self,
        peer_id: int,
        round_index: int,
        updates: Dict[tuple, Update],
        direction: str,
    ) -> List[Update]:
        """Updates ``peer_id`` would send in ``direction`` ("push"/"pull") now."""
        result: List[Update] = []
        received = self._received_age[peer_id]
        for update_id, received_age in received.items():
            update = updates[update_id]
            age = update.age(round_index)
            if not self.rule.active(age):
                continue
            if direction == "push" and self.rule.wants_push(age, received_age):
                result.append(update)
            elif direction == "pull" and self.rule.wants_pull(age, received_age):
                result.append(update)
        return result

    def _deliver(
        self,
        recipient: int,
        payload: List[Update],
        round_index: int,
        staged: Dict[int, List[Update]],
    ) -> None:
        if recipient not in self.peers:
            return
        staged.setdefault(recipient, []).extend(payload)

    def _divergence(self, updates: Dict[tuple, Update]) -> float:
        """Average fraction of known updates each live replica is missing."""
        if not updates or not self.peers:
            return 0.0
        total = 0.0
        for peer in self.peers.values():
            missing = sum(1 for uid in updates if uid not in peer.known_updates)
            total += missing / len(updates)
        return total / len(self.peers)

    # -- main loop -------------------------------------------------------------------

    def run(
        self, workload: UpdateWorkload, extra_rounds: Optional[int] = None
    ) -> ReplicationReport:
        """Run the gossip simulation until every update's horizon has passed.

        ``extra_rounds`` overrides the automatic horizon (useful to study
        partially converged states).
        """
        updates: Dict[tuple, Update] = {}
        horizon = workload.injection_rounds + self.rule.horizon() + 1
        if extra_rounds is not None:
            horizon = workload.injection_rounds + max(1, extra_rounds)

        total_transmissions = 0
        total_payload_bytes = 0
        total_channels = 0
        divergence_curve: List[float] = []
        convergence_rounds: Dict[tuple, int] = {}

        for round_index in range(1, horizon + 1):
            self._apply_churn(round_index)
            self._inject_updates(round_index, workload, updates)

            # Open channels: every peer calls `fanout` distinct neighbours.
            channels: List[tuple] = []
            for peer_id in list(self.peers):
                if peer_id not in self.overlay.graph:
                    continue
                neighbours = self.overlay.graph.neighbors(peer_id)
                if not neighbours:
                    continue
                targets = self.rng.sample_distinct(neighbours, self.rule.fanout)
                for target in targets:
                    if target == peer_id:
                        continue
                    channels.append((peer_id, target))
            total_channels += len(channels)

            staged: Dict[int, List[Update]] = {}
            for caller, callee in channels:
                if caller in self.peers:
                    payload = self._transferable_updates(
                        caller, round_index, updates, "push"
                    )
                    if payload:
                        total_transmissions += len(payload)
                        total_payload_bytes += sum(u.size for u in payload)
                        self._deliver(callee, payload, round_index, staged)
                if callee in self.peers:
                    payload = self._transferable_updates(
                        callee, round_index, updates, "pull"
                    )
                    if payload:
                        total_transmissions += len(payload)
                        total_payload_bytes += sum(u.size for u in payload)
                        self._deliver(caller, payload, round_index, staged)

            # Commit deliveries at the end of the round (synchronous model).
            for recipient, payload in staged.items():
                peer = self.peers.get(recipient)
                if peer is None:
                    continue
                for update in payload:
                    if peer.apply(update):
                        self._received_age[recipient][update.update_id] = update.age(
                            round_index
                        )

            # Convergence bookkeeping.
            for update_id, update in updates.items():
                if update_id in convergence_rounds:
                    continue
                if all(update_id in p.known_updates for p in self.peers.values()):
                    convergence_rounds[update_id] = round_index - update.created_round
            divergence_curve.append(self._divergence(updates))

        final_divergence = divergence_curve[-1] if divergence_curve else 0.0
        return ReplicationReport(
            peers=len(self.peers),
            updates_created=len(updates),
            updates_fully_replicated=len(convergence_rounds),
            rounds_executed=horizon,
            total_transmissions=total_transmissions,
            total_payload_bytes=total_payload_bytes,
            total_channels_opened=total_channels,
            convergence_rounds=convergence_rounds,
            divergence_curve=divergence_curve,
            final_divergence=final_divergence,
        )

    # -- repair -------------------------------------------------------------------------

    def anti_entropy(self, rounds: int = 1, exchanges_per_round: int = 1):
        """Run anti-entropy repair over the current replicas.

        Late joiners miss updates whose gossip horizon has passed; a few
        anti-entropy rounds (digest exchange with random neighbours) heal that
        divergence.  Returns the :class:`~repro.p2p.anti_entropy.AntiEntropyReport`.
        """
        from .anti_entropy import AntiEntropySession

        session = AntiEntropySession(
            overlay=self.overlay,
            peers=self.peers,
            rng=self.rng.spawn("anti-entropy"),
            exchanges_per_round=exchanges_per_round,
        )
        return session.run(rounds=rounds)

    # -- inspection ---------------------------------------------------------------------

    def replicas_agree(self) -> bool:
        """True if every live replica has an identical store digest."""
        digests = [peer.digest() for peer in self.peers.values()]
        return all(d == digests[0] for d in digests[1:]) if digests else True
