"""Peer-to-peer application layer: overlay maintenance and replicated databases."""

from .anti_entropy import AntiEntropyReport, AntiEntropySession
from .gossip_rules import (
    Algorithm1Rule,
    Algorithm2Rule,
    GossipRule,
    PushPullRule,
    PushRule,
    build_gossip_rule,
)
from .overlay import Overlay
from .peer import Peer, Update
from .replicated_db import ReplicatedDatabase, ReplicationReport, UpdateWorkload

__all__ = [
    "Peer",
    "Update",
    "Overlay",
    "GossipRule",
    "PushRule",
    "PushPullRule",
    "Algorithm1Rule",
    "Algorithm2Rule",
    "build_gossip_rule",
    "ReplicatedDatabase",
    "ReplicationReport",
    "UpdateWorkload",
    "AntiEntropySession",
    "AntiEntropyReport",
]
