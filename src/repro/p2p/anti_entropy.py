"""Anti-entropy repair for the replicated database.

Rumour mongering (the gossip rules in :mod:`repro.p2p.gossip_rules`) stops
transmitting an update once its age exceeds the rule's horizon, so a peer that
joins after that point never hears about it through gossip alone.  Demers et
al. pair rumour mongering with a slow *anti-entropy* process: periodically a
peer picks a random neighbour, the two exchange digests of their stores, and
each side sends the other every update the digest shows to be missing.  This
module implements that repair pass over an :class:`~repro.p2p.overlay.Overlay`
so the replicated-database experiments can quantify how quickly divergence
introduced by churn is healed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.errors import ConfigurationError
from ..core.rng import RandomSource
from .overlay import Overlay
from .peer import Peer, Update

__all__ = ["AntiEntropySession", "AntiEntropyReport"]


@dataclass(frozen=True)
class AntiEntropyReport:
    """Outcome of one or more anti-entropy rounds."""

    rounds: int
    exchanges: int
    updates_transferred: int
    bytes_transferred: int
    final_divergence: float


class AntiEntropySession:
    """Periodic digest-exchange repair between neighbouring replicas.

    Parameters
    ----------
    overlay:
        The peer overlay whose edges define who may exchange digests.
    peers:
        The replica map (peer id → :class:`Peer`), typically the one owned by
        a :class:`~repro.p2p.replicated_db.ReplicatedDatabase`.
    rng:
        Randomness source for partner selection.
    exchanges_per_round:
        How many digest exchanges each peer initiates per anti-entropy round
        (1 is the classical setting).
    """

    def __init__(
        self,
        overlay: Overlay,
        peers: Dict[int, Peer],
        rng: RandomSource,
        exchanges_per_round: int = 1,
    ) -> None:
        if exchanges_per_round < 1:
            raise ConfigurationError(
                f"exchanges_per_round must be >= 1, got {exchanges_per_round}"
            )
        self.overlay = overlay
        self.peers = peers
        self.rng = rng
        self.exchanges_per_round = exchanges_per_round

    # -- helpers ------------------------------------------------------------------

    def _known_updates(self) -> Dict[tuple, Update]:
        """The union of all updates currently stored at any replica."""
        updates: Dict[tuple, Update] = {}
        for peer in self.peers.values():
            for update in peer.store.values():
                updates[update.update_id] = update
        return updates

    def divergence(self) -> float:
        """Average fraction of globally known updates missing per replica."""
        updates = self._known_updates()
        if not updates or not self.peers:
            return 0.0
        total = 0.0
        for peer in self.peers.values():
            missing = sum(1 for uid in updates if uid not in peer.known_updates)
            total += missing / len(updates)
        return total / len(self.peers)

    def _reconcile(self, left: Peer, right: Peer) -> tuple:
        """Exchange digests between two peers; return (updates, bytes) moved."""
        transferred = 0
        bytes_moved = 0
        left_updates = {u.update_id: u for u in left.store.values()}
        right_updates = {u.update_id: u for u in right.store.values()}
        for update_id, update in left_updates.items():
            if update_id not in right.known_updates:
                right.apply(update)
                transferred += 1
                bytes_moved += update.size
        for update_id, update in right_updates.items():
            if update_id not in left.known_updates:
                left.apply(update)
                transferred += 1
                bytes_moved += update.size
        return transferred, bytes_moved

    # -- main entry point ------------------------------------------------------------

    def run(self, rounds: int = 1) -> AntiEntropyReport:
        """Run ``rounds`` anti-entropy rounds and report what was repaired."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
        exchanges = 0
        transferred = 0
        bytes_moved = 0
        for _ in range(rounds):
            for peer_id in list(self.peers):
                if peer_id not in self.overlay.graph:
                    continue
                neighbours: List[int] = [
                    v for v in self.overlay.graph.neighbors(peer_id) if v in self.peers
                ]
                if not neighbours:
                    continue
                for _ in range(self.exchanges_per_round):
                    partner = neighbours[self.rng.randint(0, len(neighbours))]
                    moved, size = self._reconcile(self.peers[peer_id], self.peers[partner])
                    exchanges += 1
                    transferred += moved
                    bytes_moved += size
        return AntiEntropyReport(
            rounds=rounds,
            exchanges=exchanges,
            updates_transferred=transferred,
            bytes_transferred=bytes_moved,
            final_divergence=self.divergence(),
        )
