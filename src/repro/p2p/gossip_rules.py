"""Age-based gossip rules for multi-update replication.

In the phone call model every node opens its channels each round without
knowing which updates exist, and then decides *per update* whether to send it
via push or pull.  The paper makes this decision depend only on the update's
age (rounds since creation) and on when the node itself received the update —
that is what keeps the protocol address-oblivious and lets many concurrent
updates share the same opened channels.

A :class:`GossipRule` expresses exactly that decision function.  The rules
mirror the single-message protocols:

* :class:`PushRule` / :class:`PushPullRule` — classical epidemics with an
  age-based cut-off (rumour mongering à la Demers et al. / Karp et al.).
* :class:`Algorithm1Rule` / :class:`Algorithm2Rule` — the paper's
  phase-structured algorithms, re-expressed as functions of update age.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..core.errors import ConfigurationError
from ..protocols.schedule import PhaseSchedule, algorithm1_schedule, algorithm2_schedule

__all__ = [
    "GossipRule",
    "PushRule",
    "PushPullRule",
    "Algorithm1Rule",
    "Algorithm2Rule",
    "build_gossip_rule",
]


class GossipRule(ABC):
    """Per-update push/pull decisions as a function of age."""

    #: Number of distinct neighbours each peer calls per round.
    fanout: int = 1

    @abstractmethod
    def horizon(self) -> int:
        """Maximum age (in rounds) after which the update is never sent again."""

    @abstractmethod
    def wants_push(self, age: int, received_age: int) -> bool:
        """Should a peer push an update of this ``age``?

        ``received_age`` is the update's age at the moment this peer first
        received it (0 for the originator), which is how "newly informed" and
        "active" states are expressed without storing per-peer flags.
        """

    @abstractmethod
    def wants_pull(self, age: int, received_age: int) -> bool:
        """Should a peer answer incoming calls with an update of this ``age``?"""

    def active(self, age: int) -> bool:
        """True while the update may still generate traffic."""
        return 0 <= age <= self.horizon()

    def describe(self) -> dict:
        return {"rule": type(self).__name__, "fanout": self.fanout}


class PushRule(GossipRule):
    """Rumour mongering by push only, with an age cut-off of ``c·log₂ n``."""

    def __init__(self, n_estimate: int, fanout: int = 1, horizon_factor: float = 3.0) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        self.fanout = fanout
        self._horizon = max(1, math.ceil(horizon_factor * math.log2(n_estimate)))

    def horizon(self) -> int:
        return self._horizon

    def wants_push(self, age: int, received_age: int) -> bool:
        return 0 <= age <= self._horizon

    def wants_pull(self, age: int, received_age: int) -> bool:
        return False


class PushPullRule(GossipRule):
    """Karp-style push&pull with an age cut-off."""

    def __init__(self, n_estimate: int, fanout: int = 1, horizon_factor: float = 3.0) -> None:
        if n_estimate < 2:
            raise ConfigurationError(f"n_estimate must be >= 2, got {n_estimate}")
        self.fanout = fanout
        self._horizon = max(1, math.ceil(horizon_factor * math.log2(n_estimate)))

    def horizon(self) -> int:
        return self._horizon

    def wants_push(self, age: int, received_age: int) -> bool:
        return 0 <= age <= self._horizon

    def wants_pull(self, age: int, received_age: int) -> bool:
        return 0 <= age <= self._horizon


class _ScheduleRule(GossipRule):
    """Shared machinery for the two schedule-driven rules."""

    def __init__(self, schedule: PhaseSchedule, fanout: int) -> None:
        self.schedule = schedule
        self.fanout = fanout

    def horizon(self) -> int:
        return self.schedule.horizon

    def _phase(self, age: int) -> int:
        # Update age `a` corresponds to schedule round `a` (the update is
        # created at age 0 and decisions start at age 1).
        if age < 1 or age > self.schedule.horizon:
            return 0
        return self.schedule.phase_of(age)


class Algorithm1Rule(_ScheduleRule):
    """The Algorithm 1 phase structure applied per update age."""

    def __init__(self, n_estimate: int, alpha: float = 1.0, fanout: int = 4) -> None:
        super().__init__(algorithm1_schedule(n_estimate, alpha), fanout)
        self.n_estimate = n_estimate
        self.alpha = alpha

    def wants_push(self, age: int, received_age: int) -> bool:
        phase = self._phase(age)
        if phase == 1:
            # Push exactly once: in the round right after receiving the update.
            return age == received_age + 1
        if phase == 2:
            return True
        if phase == 4:
            # "Active" peers are those that first received the update during
            # Phase 3 or Phase 4.
            return received_age > self.schedule.phase2_end
        return False

    def wants_pull(self, age: int, received_age: int) -> bool:
        return self._phase(age) == 3


class Algorithm2Rule(_ScheduleRule):
    """The Algorithm 2 phase structure applied per update age."""

    def __init__(self, n_estimate: int, alpha: float = 1.0, fanout: int = 4) -> None:
        super().__init__(algorithm2_schedule(n_estimate, alpha), fanout)
        self.n_estimate = n_estimate
        self.alpha = alpha

    def wants_push(self, age: int, received_age: int) -> bool:
        phase = self._phase(age)
        if phase == 1:
            return age == received_age + 1
        return phase == 2

    def wants_pull(self, age: int, received_age: int) -> bool:
        return self._phase(age) == 3


def build_gossip_rule(name: str, n_estimate: int, **kwargs) -> GossipRule:
    """Factory used by the replicated-database experiments and the CLI."""
    builders = {
        "push": PushRule,
        "push-pull": PushPullRule,
        "algorithm1": Algorithm1Rule,
        "algorithm2": Algorithm2Rule,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown gossip rule {name!r}; available: {sorted(builders)}"
        ) from None
    return builder(n_estimate, **kwargs)
