"""Random-regular overlay maintenance.

P2P systems that want the properties the paper relies on — connectivity, low
degree, high expansion, small diameter — maintain an (approximately) random
regular overlay by performing local random edge swaps as peers join and leave
(Cooper–Dyer–Greenhill, Mahlmann–Schindelhauer, Feder et al.).  This module
implements:

* :class:`Overlay` — a wrapper around :class:`repro.graphs.Graph` that tracks
  a target degree and exposes join/leave operations;
* the **1-Flipper / edge-swap Markov chain** (:meth:`Overlay.random_swaps`)
  that re-randomises the topology: pick two disjoint edges ``(a, b)``,
  ``(c, d)`` uniformly and replace them with ``(a, d)``, ``(c, b)`` when that
  keeps the graph simple.  The chain preserves every node's degree and its
  stationary distribution is uniform over the realisable degree sequence,
  which is exactly how "random-like" P2P overlays are kept random.

The broadcast experiments build overlays through this class when they need a
network that also changes over time; static experiments use the graph
generators directly.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import ConfigurationError
from ..core.rng import RandomSource
from ..graphs.base import Graph
from ..graphs.configuration_model import random_regular_graph

__all__ = ["Overlay"]


class Overlay:
    """A degree-bounded overlay graph with join, leave, and re-randomisation.

    Parameters
    ----------
    n:
        Initial number of peers.
    degree:
        Target degree of the overlay (the ``d`` of the paper).
    rng:
        Randomness source used for construction and all later mutations.
    """

    def __init__(self, n: int, degree: int, rng: RandomSource) -> None:
        if degree < 3:
            raise ConfigurationError(
                f"overlay degree must be >= 3 for connectivity, got {degree}"
            )
        self.degree = degree
        self._rng = rng
        self.graph: Graph = random_regular_graph(n, degree, rng.spawn("overlay-init"))
        self._next_peer_id = n

    # -- membership -------------------------------------------------------------

    def peer_ids(self) -> List[int]:
        """All current peer ids (sorted)."""
        return self.graph.nodes()

    @property
    def size(self) -> int:
        """Number of peers currently in the overlay."""
        return self.graph.node_count

    def join(self) -> int:
        """Add a new peer and splice it into ``degree // 2`` random edges.

        Splicing replaces edge ``(u, v)`` with ``(u, joiner)`` and
        ``(joiner, v)``; every existing node keeps its degree and the joiner
        ends up with degree ``2·(degree // 2)``.  Returns the new peer id.
        """
        joiner = self._next_peer_id
        self._next_peer_id += 1
        self.graph.add_node(joiner)
        edges = self.graph.edges()
        splices = max(1, self.degree // 2)
        for _ in range(splices):
            if not edges:
                break
            u, v = edges[self._rng.randint(0, len(edges))]
            if u == joiner or v == joiner or u == v or not self.graph.has_edge(u, v):
                continue
            self.graph.remove_edge(u, v)
            self.graph.add_edge(u, joiner)
            self.graph.add_edge(joiner, v)
        return joiner

    def leave(self, peer_id: Optional[int] = None) -> int:
        """Remove a peer (random if unspecified) and patch the hole it leaves.

        The departed peer's neighbours are re-paired with each other (matching
        consecutive entries of its shuffled neighbour list), which keeps their
        degrees unchanged whenever a simple re-pairing exists; leftover odd
        neighbours lose one degree until maintenance restores it.  Returns the
        id of the removed peer.
        """
        peers = self.graph.nodes()
        if len(peers) <= self.degree + 1:
            raise ConfigurationError(
                "refusing to shrink the overlay below degree + 1 peers"
            )
        if peer_id is None:
            peer_id = peers[self._rng.randint(0, len(peers))]
        if peer_id not in self.graph:
            raise ConfigurationError(f"peer {peer_id} is not in the overlay")

        neighbours = [v for v in self.graph.neighbors(peer_id) if v != peer_id]
        self.graph.remove_node(peer_id)
        self._rng.shuffle(neighbours)
        for i in range(0, len(neighbours) - 1, 2):
            a, b = neighbours[i], neighbours[i + 1]
            if a == b or self.graph.has_edge(a, b):
                continue
            if a in self.graph and b in self.graph:
                self.graph.add_edge(a, b)
        return peer_id

    # -- re-randomisation -----------------------------------------------------------

    def random_swaps(self, swaps: int) -> int:
        """Run ``swaps`` steps of the double-edge-swap Markov chain.

        Each step picks two edges uniformly at random and exchanges one
        endpoint when the exchange keeps the graph simple.  Returns the number
        of swaps actually performed (rejected proposals are counted as chain
        steps but not as performed swaps, as usual for Metropolis-style
        chains).
        """
        if swaps < 0:
            raise ConfigurationError(f"swaps must be non-negative, got {swaps}")
        performed = 0
        for _ in range(swaps):
            edges = self.graph.edges()
            if len(edges) < 2:
                break
            first = edges[self._rng.randint(0, len(edges))]
            second = edges[self._rng.randint(0, len(edges))]
            a, b = first
            c, d = second
            if len({a, b, c, d}) < 4:
                continue
            if self.graph.has_edge(a, d) or self.graph.has_edge(c, b):
                continue
            if not self.graph.has_edge(a, b) or not self.graph.has_edge(c, d):
                continue
            self.graph.remove_edge(a, b)
            self.graph.remove_edge(c, d)
            self.graph.add_edge(a, d)
            self.graph.add_edge(c, b)
            performed += 1
        return performed

    # -- health ------------------------------------------------------------------------

    def degree_deficit(self) -> int:
        """Total number of missing stubs relative to the target degree."""
        return sum(
            max(0, self.degree - degree) for degree in self.graph.degrees().values()
        )

    def repair(self, max_edges: int = 1000) -> int:
        """Greedily add edges between under-degree peers; returns edges added."""
        added = 0
        for _ in range(max_edges):
            deficient = [
                node
                for node, degree in self.graph.degrees().items()
                if degree < self.degree
            ]
            if len(deficient) < 2:
                break
            self._rng.shuffle(deficient)
            a, b = deficient[0], deficient[1]
            if a == b or self.graph.has_edge(a, b):
                # Fall back to a swap-style repair through a random edge.
                edges = self.graph.edges()
                if not edges:
                    break
                u, v = edges[self._rng.randint(0, len(edges))]
                if len({a, u, v}) == 3 and self.graph.has_edge(u, v):
                    self.graph.remove_edge(u, v)
                    if not self.graph.has_edge(a, u):
                        self.graph.add_edge(a, u)
                        added += 1
                    if not self.graph.has_edge(a, v):
                        self.graph.add_edge(a, v)
                        added += 1
                continue
            self.graph.add_edge(a, b)
            added += 1
        return added
