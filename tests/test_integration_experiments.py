"""Integration tests for the experiment registry (E1–E12) on tiny inputs.

Each experiment is run with parameters far below its quick defaults so the
whole module stays fast, and the tests assert structural properties of the
returned tables (expected columns, row counts, sane value ranges) plus a few
of the qualitative "shape" claims the experiments exist to demonstrate.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments import available_experiments, run_experiment_by_id
from repro.experiments.exp_choices_ablation import run_experiment as run_choices
from repro.experiments.exp_churn import run_experiment as run_churn
from repro.experiments.exp_degree_sweep import run_experiment as run_degree
from repro.experiments.exp_lower_bound import run_experiment as run_lower_bound
from repro.experiments.exp_message_complexity import run_experiment as run_messages
from repro.experiments.exp_p2p_db import run_experiment as run_p2p
from repro.experiments.exp_phase_dynamics import run_experiment as run_phases
from repro.experiments.exp_push_vs_pull import run_experiment as run_push_pull
from repro.experiments.exp_robustness import run_experiment as run_robustness
from repro.experiments.exp_round_complexity import run_experiment as run_rounds
from repro.experiments.exp_sequential import run_experiment as run_sequential
from repro.experiments.workloads import SweepSizes

TINY = SweepSizes(sizes=[128, 256], repetitions=2)


class TestRegistry:
    def test_all_experiments_registered(self):
        registered = available_experiments()
        assert set(registered) == {f"E{i}" for i in range(1, 14)}

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment_by_id("E42")

    def test_lookup_is_case_insensitive(self):
        table = run_experiment_by_id("e5", quick=True, sizes=[64])
        assert table.rows


class TestRoundAndMessageComplexity:
    def test_e1_structure_and_shape(self):
        table = run_rounds(quick=True, sizes=TINY)
        assert set(table.columns) >= {"protocol", "n", "rounds_mean", "success_rate"}
        assert len(table.rows) == 3 * len(TINY.sizes)
        assert all(row["success_rate"] == 1.0 for row in table.rows)
        # O(log n): the normalised column stays within a small constant.
        assert all(row["rounds_over_log2n"] < 5 for row in table.rows)

    def test_e2_reports_fits(self):
        table = run_messages(quick=True, sizes=TINY)
        assert len(table.rows) == 4 * len(TINY.sizes)
        assert any("best-fitting" in note for note in table.notes)
        assert all(row["tx_per_node"] > 0 for row in table.rows)

    def test_e3_bound_column_follows_formula(self):
        table = run_lower_bound(quick=True, sizes=TINY, degrees=[4, 8])
        degree_rows = [r for r in table.rows if r["sweep"] == "degree"]
        by_degree = {r["d"]: r["bound_per_node"] for r in degree_rows}
        assert by_degree[4] > by_degree[8]
        one_call_rows = [
            r for r in table.rows if r["protocol"] == "push-pull-1" and r["sweep"] == "size"
        ]
        assert all(r["ratio_to_bound"] > 0.5 for r in one_call_rows)


class TestPhaseAndBaselineExperiments:
    def test_e4_phase_profile(self):
        table = run_phases(quick=True, n=256, alphas=[1.0])
        profile_rows = [r for r in table.rows if r["block"] == "profile"]
        phases = {r["phase"] for r in profile_rows}
        assert "phase1" in phases and "phase3" in phases
        phase1 = next(r for r in profile_rows if r["phase"] == "phase1")
        assert phase1["growth_factor"] > 1.2
        assert phase1["transmissions"] <= 4 * 256

    def test_e5_pull_tail_is_shorter_than_push_tail(self):
        table = run_push_pull(quick=True, sizes=[128, 256])
        rows = table.to_records()
        for n in (128, 256):
            push_tail = next(
                r["tail_rounds"] for r in rows if r["protocol"] == "push" and r["n"] == n
            )
            pull_tail = next(
                r["tail_rounds"] for r in rows if r["protocol"] == "pull" and r["n"] == n
            )
            assert pull_tail < push_tail

    def test_e12_degree_sweep_structure(self):
        table = run_degree(quick=True, n=256, degrees=[4, 8])
        assert len(table.rows) == 4
        assert all(row["success_rate"] == 1.0 for row in table.rows)


class TestRobustnessExperiments:
    def test_e6_e7_blocks_present(self):
        table = run_robustness(
            quick=True,
            n=256,
            loss_probabilities=[0.0, 0.2],
            estimate_factors=[0.5, 1.0, 2.0],
        )
        blocks = {row["block"] for row in table.rows}
        assert blocks == {"message-loss", "size-estimate"}
        loss_rows = [r for r in table.rows if r["block"] == "message-loss"]
        assert all(r["success_rate"] == 1.0 for r in loss_rows)
        estimate_rows = [r for r in table.rows if r["block"] == "size-estimate"]
        assert all(r["success_rate"] == 1.0 for r in estimate_rows)

    def test_e8_churn_keeps_survivors_informed(self):
        table = run_churn(quick=True, n=256, churn_rates=[(0.0, 0.0), (0.01, 0.01)])
        algorithm_rows = [r for r in table.rows if r["protocol"] == "algorithm1"]
        assert all(r["informed_fraction"] > 0.95 for r in algorithm_rows)

    def test_e9_single_choice_fails_multi_choice_succeeds(self):
        table = run_choices(quick=True, n=256, fanouts=[1, 4])
        by_fanout = {row["fanout"]: row for row in table.rows}
        assert by_fanout[4]["success_rate"] == 1.0
        assert by_fanout[1]["informed_after_phase1"] < by_fanout[4]["informed_after_phase1"]

    def test_e10_sequential_takes_roughly_four_times_longer(self):
        table = run_sequential(quick=True, sizes=SweepSizes(sizes=[256], repetitions=2))
        rows = {row["protocol"]: row for row in table.rows}
        ratio = (
            rows["algorithm1-sequential"]["rounds_mean"] / rows["algorithm1"]["rounds_mean"]
        )
        assert 2.0 < ratio < 8.0
        assert rows["algorithm1-sequential"]["success_rate"] == 1.0

    def test_e11_replication_converges(self):
        table = run_p2p(quick=True, peers=64, churn_settings=[(0.0, 0.0)])
        assert len(table.rows) == 3
        assert all(row["replication_rate"] == 1.0 for row in table.rows)
        assert all(row["replicas_agree"] for row in table.rows)
