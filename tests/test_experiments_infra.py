"""Unit tests for the experiment infrastructure (tables, runner, workloads)."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner, repeat_broadcast
from repro.experiments.tables import Table
from repro.experiments.workloads import (
    DEFAULT_DEGREE,
    LARGE_DEGREE,
    SweepSizes,
    full_sizes,
    quick_sizes,
)
from repro.failures.churn import UniformChurn
from repro.protocols.push import PushProtocol


class TestTable:
    def test_add_row_and_render(self):
        table = Table(title="T", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a="x")
        output = table.render()
        assert "T" in output
        assert "2.500" in output
        assert output.count("\n") >= 4

    def test_unknown_column_rejected(self):
        table = Table(title="T", columns=["a"])
        with pytest.raises(ExperimentError):
            table.add_row(a=1, z=2)

    def test_column_accessor(self):
        table = Table(title="T", columns=["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2, None]
        with pytest.raises(ExperimentError):
            table.column("missing")

    def test_notes_and_records(self):
        table = Table(title="T", columns=["a"])
        table.add_row(a=True)
        table.add_note("hello")
        assert "hello" in table.render()
        assert "yes" in table.render()
        assert table.to_records() == [{"a": True}]

    def test_empty_table_renders(self):
        table = Table(title="Empty", columns=["only"])
        assert "only" in table.render()


class TestWorkloads:
    def test_quick_and_full_sizes(self):
        quick = quick_sizes()
        full = full_sizes()
        assert max(quick.sizes) < max(full.sizes)
        assert quick.repetitions >= 1

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            SweepSizes(sizes=[])
        with pytest.raises(ValueError):
            SweepSizes(sizes=[10], repetitions=0)

    def test_degree_constants(self):
        assert DEFAULT_DEGREE < LARGE_DEGREE


class TestRepeatBroadcast:
    def test_one_result_per_seed(self, small_regular_graph):
        results = repeat_broadcast(
            graph=small_regular_graph,
            protocol_factory=lambda n: PushProtocol(n_estimate=n),
            n_estimate=64,
            seeds=[1, 2, 3],
        )
        assert len(results) == 3
        assert all(result.n == 64 for result in results)

    def test_churn_runs_do_not_mutate_the_shared_graph(self, medium_regular_graph):
        edge_count = medium_regular_graph.edge_count
        repeat_broadcast(
            graph=medium_regular_graph,
            protocol_factory=lambda n: PushProtocol(n_estimate=n),
            n_estimate=256,
            seeds=[1],
            churn_factory=lambda: UniformChurn(
                leave_rate=0.05, join_rate=0.05, target_degree=8
            ),
        )
        assert medium_regular_graph.edge_count == edge_count

    def test_config_is_honoured(self, small_regular_graph):
        results = repeat_broadcast(
            graph=small_regular_graph,
            protocol_factory=lambda n: PushProtocol(n_estimate=n),
            n_estimate=64,
            seeds=[5],
            config=SimulationConfig(max_rounds=1),
        )
        assert results[0].rounds_executed == 1


class TestExperimentRunner:
    def test_graph_cache_returns_same_object(self):
        runner = ExperimentRunner(master_seed=1, repetitions=2)
        assert runner.regular_graph(64, 4) is runner.regular_graph(64, 4)
        assert runner.regular_graph(64, 4) is not runner.regular_graph(64, 4, instance=1)

    def test_graphs_are_regular_and_connected(self):
        runner = ExperimentRunner(master_seed=1)
        graph = runner.regular_graph(64, 6)
        assert all(degree == 6 for degree in graph.degrees().values())

    def test_run_seeds_are_deterministic_and_distinct(self):
        runner = ExperimentRunner(master_seed=1, repetitions=4)
        seeds_a = runner.run_seeds("label")
        seeds_b = runner.run_seeds("label")
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == 4
        assert runner.run_seeds("other") != seeds_a

    def test_broadcast_and_aggregate(self):
        runner = ExperimentRunner(master_seed=1, repetitions=2)
        aggregate = runner.broadcast_aggregate(
            64, 4, lambda n: PushProtocol(n_estimate=n), label="t"
        )
        assert aggregate.runs == 2
        assert aggregate.n == 64

    def test_repetitions_override(self):
        runner = ExperimentRunner(master_seed=1, repetitions=2)
        results = runner.broadcast(
            64, 4, lambda n: PushProtocol(n_estimate=n), label="t", repetitions=5
        )
        assert len(results) == 5

    def test_engine_knob_forwards_into_runs(self):
        scalar_runner = ExperimentRunner(master_seed=1, repetitions=2, engine="scalar")
        auto_runner = ExperimentRunner(master_seed=1, repetitions=2)
        scalar_results = scalar_runner.broadcast(
            64, 4, lambda n: PushProtocol(n_estimate=n), label="t"
        )
        auto_results = auto_runner.broadcast(
            64, 4, lambda n: PushProtocol(n_estimate=n), label="t"
        )
        assert all(r.metadata["engine"] == "scalar" for r in scalar_results)
        assert all(r.metadata["engine"] == "vectorized" for r in auto_results)

    def test_engine_knob_preserves_caller_config(self):
        runner = ExperimentRunner(master_seed=1, repetitions=1, engine="scalar")
        results = runner.broadcast(
            64,
            4,
            lambda n: PushProtocol(n_estimate=n),
            label="t",
            config=SimulationConfig(collect_round_history=False),
        )
        assert results[0].metadata["engine"] == "scalar"
        assert results[0].history == []

    def test_reproducible_across_runner_instances(self):
        first = ExperimentRunner(master_seed=99, repetitions=2)
        second = ExperimentRunner(master_seed=99, repetitions=2)
        a = first.broadcast_aggregate(64, 4, lambda n: PushProtocol(n_estimate=n), label="x")
        b = second.broadcast_aggregate(64, 4, lambda n: PushProtocol(n_estimate=n), label="x")
        assert a.rounds.mean == b.rounds.mean
        assert a.transmissions.mean == b.transmissions.mean
