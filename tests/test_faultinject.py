"""Chaos suite: deterministic fault injection against the resilient executor.

The cardinal invariant under test: a sweep that survives injected faults —
worker kills, transient exceptions, timeout stalls, torn checkpoint writes —
is **bit-identical, down to per-round history, to the clean serial run**.
Recovery only re-executes points, and the seed = f(master, label) discipline
makes re-execution invisible.

Every fault here is planned data (:class:`repro.faultinject.FaultPlan`), so
each failure mode strikes the same point on the same dispatch in every test
run: no flaky signals, no timing races deciding *what* fails.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.dist import (
    PointFailure,
    RetryPolicy,
    WorkerPoolError,
    backoff_delay,
    merge_runs,
)
from repro.faultinject import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedTransientError,
    bundled_plans,
    load_plan,
    save_plan,
)
from repro.spec import (
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_spec,
)

from test_dist import assert_bit_identical, sweep_spec


#: Retry policy used by the chaos runs: fast backoff so the suite stays
#: quick, and a short per-point budget so stall detection actually triggers.
CHAOS_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_seconds=0.01,
    backoff_max_seconds=0.1,
    timeout_seconds=2.0,
)


@pytest.fixture(scope="module")
def spec():
    return sweep_spec()


@pytest.fixture(scope="module")
def serial(spec):
    return run_spec(spec)


class TestChaosParity:
    """Each survivable bundled plan leaves the results bit-identical."""

    def test_worker_kill_is_survived_bit_identically(self, spec, serial):
        plan = bundled_plans(4)["worker-kill"]
        chaos = run_spec(spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan)
        assert_bit_identical(serial, chaos)
        assert chaos.provenance["pool_restarts"] >= 1
        assert chaos.provenance["failures"] == []

    def test_transient_double_fault_is_retried_bit_identically(self, spec, serial):
        # The same point fails on its first AND second dispatch; the third
        # attempt succeeds inside the default budget of 3.
        plan = bundled_plans(4)["transient-double"]
        chaos = run_spec(spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan)
        assert_bit_identical(serial, chaos)
        assert chaos.provenance["retries"] == 2
        assert chaos.provenance["failures"] == []

    def test_timeout_stall_is_survived_bit_identically(self, spec, serial):
        # One point sleeps far past its wall-clock budget: the pool is
        # restarted, the overdue point is charged one attempt and retried.
        plan = bundled_plans(4)["timeout-stall"]
        chaos = run_spec(spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan)
        assert_bit_identical(serial, chaos)
        assert chaos.provenance["pool_restarts"] >= 1
        assert chaos.provenance["retries"] >= 1
        assert chaos.provenance["failures"] == []

    def test_checkpoint_truncation_recovers_on_resume(self, spec, serial, tmp_path):
        # The torn write corrupts the checkpoint *file*; this run's
        # in-memory results are intact, and the resume quarantines the file
        # and re-runs the point — bit-identically.
        plan = bundled_plans(4)["checkpoint-truncate"]
        chaos = run_spec(
            spec, workers=2, checkpoint_dir=tmp_path,
            retry=CHAOS_RETRY, fault_plan=plan,
        )
        assert_bit_identical(serial, chaos)
        resumed = run_spec(spec, workers=2, checkpoint_dir=tmp_path, resume=True)
        assert_bit_identical(serial, resumed)
        assert list(tmp_path.glob("*.corrupt"))
        assert resumed.provenance["points_resumed"] == 3
        assert resumed.provenance["points_run"] == 1

    def test_inline_path_survives_transient_faults(self, spec, serial):
        # workers=1 exercises the in-process recovery loop.
        plan = bundled_plans(4)["transient-double"]
        chaos = run_spec(spec, workers=1, retry=CHAOS_RETRY, fault_plan=plan)
        assert_bit_identical(serial, chaos)
        assert chaos.provenance["retries"] == 2


class TestQuarantine:
    def test_poison_point_quarantined_others_complete(self, spec, serial):
        # dispatches=() fails the point on *every* attempt: the retry budget
        # runs out, the point is quarantined, and the sweep completes.
        plan = bundled_plans(4)["poison-point"]
        chaos = run_spec(spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan)
        failures = chaos.provenance["failures"]
        assert [f["index"] for f in failures] == [3]
        assert failures[0]["attempts"] == CHAOS_RETRY.max_attempts
        assert failures[0]["error_type"] == "InjectedTransientError"
        assert len(failures[0]["errors"]) == CHAOS_RETRY.max_attempts
        # Every *other* point still matches the serial run exactly.
        surviving = [p for p in serial.points if p.index != 3]
        assert [p.index for p in chaos.points] == [p.index for p in surviving]
        for ours, theirs in zip(chaos.points, surviving):
            assert ours.results == theirs.results
        assert chaos.provenance["points_quarantined"] == 1

    def test_quarantine_surfaces_in_table_notes_and_metadata(self, spec):
        plan = bundled_plans(4)["poison-point"]
        table = run_spec(spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan).to_table()
        assert any("quarantined" in note for note in table.notes)
        assert table.metadata["distributed"]["failures"][0]["index"] == 3

    def test_survivable_runs_add_no_quarantine_note(self, spec, serial):
        plan = bundled_plans(4)["worker-kill"]
        chaos_table = run_spec(
            spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan
        ).to_table()
        assert chaos_table.rows == serial.to_table().rows
        assert not any("quarantined" in note for note in chaos_table.notes)

    def test_quarantined_progress_event_emitted(self, spec):
        events = []
        plan = bundled_plans(4)["poison-point"]
        run_spec(
            spec, workers=2, retry=CHAOS_RETRY, fault_plan=plan,
            progress=events.append,
        )
        quarantined = [e for e in events if e.source == "quarantined"]
        assert [e.index for e in quarantined] == [3]
        assert quarantined[0].attempt == CHAOS_RETRY.max_attempts

    def test_merge_accepts_shard_with_quarantined_point(self, spec, serial):
        plan = bundled_plans(4)["poison-point"]
        poisoned = run_spec(
            spec, shard=(1, 2), workers=2, retry=CHAOS_RETRY, fault_plan=plan
        )
        clean = run_spec(spec, shard=(0, 2))
        merged = merge_runs([clean, poisoned])
        assert [f["index"] for f in merged.provenance["failures"]] == [3]
        assert [p.index for p in merged.points] == [0, 1, 2]
        with pytest.raises(ConfigurationError, match="missing point"):
            # Without the failure record the gap is still an error.
            merge_runs([clean, run_spec(spec, points=[2])])


class TestGracefulDegradation:
    def test_repeated_pool_death_falls_back_to_serial(self, spec, serial):
        # worker_point=1 kills every worker on its first point — including
        # every replacement worker — so the pool can never make progress and
        # the executor must degrade to in-process execution.
        plan = FaultPlan(rules=(FaultRule(kind="kill-worker", worker_point=1),))
        chaos = run_spec(
            spec, workers=2,
            retry=RetryPolicy(max_pool_restarts=1, backoff_seconds=0.01),
            fault_plan=plan,
        )
        assert_bit_identical(serial, chaos)
        assert chaos.provenance["serial_fallback"] is True
        assert chaos.provenance["pool_restarts"] == 2
        assert chaos.provenance["failures"] == []

    def test_disabled_fallback_raises_worker_pool_error(self, spec):
        from repro.dist import ParallelScenarioExecutor

        plan = FaultPlan(rules=(FaultRule(kind="kill-worker", worker_point=1),))
        executor = ParallelScenarioExecutor(
            workers=2,
            retry=RetryPolicy(
                max_pool_restarts=0, serial_fallback=False, backoff_seconds=0.01
            ),
            fault_plan=plan,
        )
        with pytest.raises(WorkerPoolError, match="serial fallback is disabled"):
            executor.run(spec)


class TestFaultPlanModel:
    def test_plan_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="transient-error", index=2, dispatches=(1, 2)),
                FaultRule(kind="stall", index=0, duration=3.5),
                FaultRule(kind="kill-worker", worker_point=2),
                FaultRule(kind="truncate-checkpoint", index=1),
            ),
            seed=99,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path) == plan
        json.loads(path.read_text())  # plain JSON on disk

    def test_sample_is_deterministic_in_the_seed(self):
        a = FaultPlan.sample(point_count=10, seed=5, faults=3)
        b = FaultPlan.sample(point_count=10, seed=5, faults=3)
        c = FaultPlan.sample(point_count=10, seed=6, faults=3)
        assert a == b
        assert a != c
        assert len(a.rules) == 3
        assert all(rule.dispatches == (1,) for rule in a.rules)
        assert all(0 <= rule.index < 10 for rule in a.rules)

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultRule(kind="meteor-strike", index=0)
        with pytest.raises(ConfigurationError, match="1-based"):
            FaultRule(kind="transient-error", index=0, dispatches=(0,))
        with pytest.raises(ConfigurationError, match="worker_point"):
            FaultRule(kind="stall", index=0, duration=1.0, worker_point=1)
        with pytest.raises(ConfigurationError, match="duration"):
            FaultRule(kind="stall", index=0)
        with pytest.raises(ConfigurationError, match="index"):
            FaultRule(kind="transient-error")

    def test_rule_matching_semantics(self):
        once = FaultRule(kind="transient-error", index=4, dispatches=(1,))
        assert once.matches(4, 1) and not once.matches(4, 2)
        assert not once.matches(5, 1)
        always = FaultRule(kind="transient-error", index=4, dispatches=())
        assert always.matches(4, 1) and always.matches(4, 7)

    def test_bundled_plans_cover_the_failure_modes(self):
        plans = bundled_plans(8)
        assert set(plans) == {
            "worker-kill",
            "transient-double",
            "timeout-stall",
            "checkpoint-truncate",
            "poison-point",
        }
        kinds = {kind for plan in plans.values() for kind in plan.kinds()}
        assert kinds == {
            "kill-worker", "transient-error", "stall", "truncate-checkpoint"
        }

    def test_disk_fault_rules_round_trip_through_json(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="torn-write", index=3, offset=7),
                FaultRule(kind="torn-write", index=4),  # offset=None: half
                FaultRule(kind="enospc", index=1),
                FaultRule(kind="fsync-error", index=2),
                FaultRule(kind="kill-after-records", records=2),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        path = save_plan(plan, tmp_path / "disk-plan.json")
        loaded = load_plan(path)
        assert loaded == plan
        assert loaded.rules[0].offset == 7
        assert loaded.rules[1].offset is None
        assert loaded.rules[4].records == 2

    def test_disk_fault_rule_validation(self):
        with pytest.raises(ConfigurationError, match="offset"):
            FaultRule(kind="enospc", index=0, offset=5)
        with pytest.raises(ConfigurationError, match="offset"):
            FaultRule(kind="torn-write", index=0, offset=0)
        with pytest.raises(ConfigurationError, match="records"):
            FaultRule(kind="kill-after-records")
        with pytest.raises(ConfigurationError, match="records"):
            FaultRule(kind="kill-after-records", records=0)
        with pytest.raises(ConfigurationError, match="records"):
            FaultRule(kind="enospc", index=0, records=2)
        with pytest.raises(ConfigurationError, match="index"):
            FaultRule(kind="torn-write")

    def test_bundled_stream_plans_cover_the_disk_faults(self):
        from repro.faultinject import bundled_stream_plans

        plans = bundled_stream_plans(8)
        assert set(plans) == {"torn-write", "enospc", "fsync-error"}
        lethal = bundled_stream_plans(8, include_kill=True)
        assert set(lethal) == {"torn-write", "enospc", "fsync-error", "kill-9"}
        assert lethal["kill-9"].rules[0].records == 2
        for plan in lethal.values():  # all serialisable for the CLI flag
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_fault_kinds_frozen(self):
        assert FAULT_KINDS == (
            "transient-error",
            "kill-worker",
            "stall",
            "truncate-checkpoint",
            "interrupt",
            "torn-write",
            "enospc",
            "fsync-error",
            "kill-after-records",
        )


class TestInjectorModes:
    def test_inline_mode_skips_kill_and_stall(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="kill-worker", index=0),
                FaultRule(kind="stall", index=0, duration=60.0),
            )
        )
        injector = FaultInjector(plan, mode="inline")
        injector.before_point(0, 1)  # would os._exit / hang in worker mode

    def test_inline_mode_still_raises_transient_errors(self):
        plan = FaultPlan(rules=(FaultRule(kind="transient-error", index=0),))
        injector = FaultInjector(plan, mode="inline")
        with pytest.raises(InjectedTransientError, match="dispatch 1"):
            injector.before_point(0, 1)
        injector.before_point(0, 2)  # second dispatch: rule spent

    def test_truncation_fires_once_per_rule(self, tmp_path):
        path = tmp_path / "point-000001.json"
        path.write_text('{"index": 1, "payload": "0123456789"}')
        plan = FaultPlan(rules=(FaultRule(kind="truncate-checkpoint", index=1),))
        injector = FaultInjector(plan)
        assert injector.corrupt_checkpoint(1, path) is True
        damaged = path.read_text()
        path.write_text('{"index": 1, "payload": "0123456789"}')
        assert injector.corrupt_checkpoint(1, path) is False  # spent
        assert len(damaged) < len(path.read_text())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            FaultInjector(FaultPlan(), mode="sideways")


class TestRetryPolicyModel:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_multiplier=2.0, backoff_max_seconds=0.35
        )
        assert backoff_delay(policy, 1) == pytest.approx(0.1)
        assert backoff_delay(policy, 2) == pytest.approx(0.2)
        assert backoff_delay(policy, 3) == pytest.approx(0.35)  # capped
        assert backoff_delay(policy, 10) == pytest.approx(0.35)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(ConfigurationError, match="max_pool_restarts"):
            RetryPolicy(max_pool_restarts=-1)
        with pytest.raises(ConfigurationError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.5)

    def test_point_failure_round_trips(self):
        failure = PointFailure(
            index=3,
            label="d-pull",
            attempts=3,
            error_type="InjectedTransientError",
            message="injected",
            errors=(
                {"attempt": 1, "error_type": "InjectedTransientError", "message": "injected"},
            ),
        )
        assert PointFailure.from_dict(failure.to_dict()) == failure
        json.dumps(failure.to_dict())  # JSON-safe


class TestCLIFaultPlan:
    def test_hidden_fault_plan_flag_round_trips(self, tmp_path, capsys):
        from repro.cli import main
        from repro.spec import save_spec

        spec_path = save_spec(sweep_spec(), tmp_path / "spec.json")
        plan_path = save_plan(bundled_plans(4)["transient-double"], tmp_path / "plan.json")
        clean = tmp_path / "clean.json"
        chaos = tmp_path / "chaos.json"
        assert main(["run-spec", str(spec_path), "--save", str(clean)]) == 0
        assert main(
            [
                "run-spec", str(spec_path),
                "--workers", "2",
                "--fault-plan", str(plan_path),
                "--max-attempts", "3",
                "--save", str(chaos),
            ]
        ) == 0
        capsys.readouterr()
        from repro.experiments.results_io import load_table_json

        assert load_table_json(chaos).rows == load_table_json(clean).rows

    def test_fault_plan_flag_hidden_from_help(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-spec", "--help"])
        help_text = capsys.readouterr().out
        assert "--fault-plan" not in help_text
        assert "--max-attempts" in help_text  # the public knobs stay visible
