"""Cross-engine parity suite: scalar vs vectorized round engines.

The vectorized engine promises the scalar engine's *aggregate* semantics —
success, informed-curve shape, transmission and channel accounting identities
— without promising identical per-call draw order.  These tests therefore
check three layers:

1. **dispatch** — ``engine="auto"`` picks the bulk engine exactly when the
   documented preconditions hold, and ``engine="vectorized"`` fails loudly
   otherwise;
2. **exact invariants** — identities that must hold run-for-run on both
   engines (channel accounting, conservation, monotonicity, phase sums);
3. **statistical parity** — distributions over seeds (completion rounds,
   transmissions) agree between the engines within tight tolerances.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.engine_vectorized import (
    VectorizedRoundEngine,
    vectorization_unsupported_reason,
)
from repro.core.errors import SimulationError
from repro.core.node import VectorState
from repro.core.rng import RandomSource
from repro.core.trace import RecordingTracer
from repro.failures.churn import UniformChurn
from repro.failures.message_loss import IndependentLoss
from repro.graphs.base import Graph
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.graphs.families import complete_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.algorithm2 import Algorithm2
from repro.protocols.pull import PullProtocol
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.quasirandom import QuasirandomPushProtocol
from repro.protocols.sequential import SequentialAlgorithm1

PROTOCOL_FACTORIES = {
    "push": lambda n: PushProtocol(n_estimate=n),
    "pull": lambda n: PullProtocol(n_estimate=n),
    "push-pull": lambda n: PushPullProtocol(n_estimate=n),
    "algorithm1": lambda n: Algorithm1(n_estimate=n),
    "algorithm2": lambda n: Algorithm2(n_estimate=n),
    "quasirandom": lambda n: QuasirandomPushProtocol(n_estimate=n),
}

PROTOCOL_FANOUTS = {
    "push": 1,
    "pull": 1,
    "push-pull": 1,
    "algorithm1": 4,
    "algorithm2": 4,
    "quasirandom": 1,
}

#: Protocols whose uninformed nodes open no channels (vector_caller_mask),
#: so the per-round channel charge tracks the informed count instead of the
#: full phone-call constant.
MASKED_CALLER_PROTOCOLS = {"quasirandom"}


@pytest.fixture(scope="module")
def regular_graph():
    return random_regular_graph(256, 8, RandomSource(seed=42), strategy="repair")


@pytest.fixture(scope="module")
def parity_complete_graph():
    return complete_graph(64)


def run_with_engine(graph, protocol, engine, seed, **config_kwargs):
    config = SimulationConfig(engine=engine, **config_kwargs)
    return run_broadcast(graph, protocol, seed=seed, config=config)


# ---------------------------------------------------------------------------
# Dispatch rules
# ---------------------------------------------------------------------------


class TestDispatch:
    def test_auto_uses_vectorized_for_supported_protocol(self, regular_graph):
        result = run_broadcast(regular_graph, PushProtocol(n_estimate=256), seed=1)
        assert result.metadata["engine"] == "vectorized"

    def test_scalar_engine_can_be_forced(self, regular_graph):
        result = run_with_engine(
            regular_graph, PushProtocol(n_estimate=256), "scalar", seed=1
        )
        assert result.metadata["engine"] == "scalar"

    def test_tracer_falls_back_to_scalar(self, regular_graph):
        result = run_broadcast(
            regular_graph,
            PushProtocol(n_estimate=256),
            seed=1,
            tracer=RecordingTracer(),
        )
        assert result.metadata["engine"] == "scalar"

    def test_churn_with_opted_in_model_dispatches_to_vectorized(self, regular_graph):
        result = run_broadcast(
            regular_graph.copy(),
            PushProtocol(n_estimate=256),
            seed=1,
            churn_model=UniformChurn(leave_rate=0.01, join_rate=0.01, target_degree=8),
        )
        assert result.metadata["engine"] == "vectorized"
        assert result.metadata["churn"]["departures"] >= 0

    def test_churn_without_bulk_hook_falls_back_to_scalar(self, regular_graph):
        class ScalarOnlyChurn(UniformChurn):
            supports_vectorized = False

        result = run_broadcast(
            regular_graph.copy(),
            PushProtocol(n_estimate=256),
            seed=1,
            churn_model=ScalarOnlyChurn(
                leave_rate=0.01, join_rate=0.01, target_degree=8
            ),
        )
        assert result.metadata["engine"] == "scalar"

    def test_churn_without_dynamic_protocol_falls_back_to_scalar(self, regular_graph):
        result = run_broadcast(
            regular_graph.copy(),
            QuasirandomPushProtocol(n_estimate=256),
            seed=1,
            churn_model=UniformChurn(leave_rate=0.01, join_rate=0.01, target_degree=8),
        )
        assert result.metadata["engine"] == "scalar"

    def test_unsupported_protocol_falls_back_to_scalar(self, regular_graph):
        result = run_broadcast(
            regular_graph, SequentialAlgorithm1(n_estimate=256), seed=1
        )
        assert result.metadata["engine"] == "scalar"

    def test_quasirandom_now_dispatches_to_vectorized(self, regular_graph):
        result = run_broadcast(
            regular_graph, QuasirandomPushProtocol(n_estimate=256), seed=1
        )
        assert result.metadata["engine"] == "vectorized"

    def test_forcing_vectorized_with_tracer_raises(self, regular_graph):
        with pytest.raises(SimulationError, match="tracer"):
            run_broadcast(
                regular_graph,
                PushProtocol(n_estimate=256),
                seed=1,
                config=SimulationConfig(engine="vectorized"),
                tracer=RecordingTracer(),
            )

    def test_forcing_vectorized_with_unsupported_protocol_raises(self, regular_graph):
        with pytest.raises(SimulationError, match="bulk hooks"):
            run_broadcast(
                regular_graph,
                SequentialAlgorithm1(n_estimate=256),
                seed=1,
                config=SimulationConfig(engine="vectorized"),
            )

    def test_non_contiguous_ids_fall_back_to_scalar(self):
        graph = random_regular_graph(32, 4, RandomSource(seed=3))
        graph.remove_node(7)
        reason = vectorization_unsupported_reason(
            graph, PushProtocol(n_estimate=32), SimulationConfig()
        )
        assert reason is not None and "contiguous" in reason

    def test_independent_loss_is_vectorizable(self, regular_graph):
        result = run_broadcast(
            regular_graph,
            PushProtocol(n_estimate=256),
            seed=1,
            failure_model=IndependentLoss(transmission_loss_probability=0.2),
        )
        assert result.metadata["engine"] == "vectorized"

    def test_constructor_rejects_unsupported_combination(self, regular_graph):
        with pytest.raises(SimulationError):
            VectorizedRoundEngine(
                graph=regular_graph,
                protocol=SequentialAlgorithm1(n_estimate=256),
            )

    def test_overridden_lifecycle_hooks_force_scalar(self, regular_graph):
        # A protocol may opt in to the bulk hooks but still override a
        # StateTable-based lifecycle hook the vectorized engine never calls;
        # dispatch must then fall back to the scalar engine.
        class EagerStart(PushProtocol):
            def on_round_start(self, round_index, states):
                pass

        class EarlyFinish(PushProtocol):
            def finished(self, round_index, states):
                return round_index >= 2

        for protocol in (EagerStart(n_estimate=256), EarlyFinish(n_estimate=256)):
            reason = vectorization_unsupported_reason(
                regular_graph, protocol, SimulationConfig()
            )
            assert reason is not None
            result = run_broadcast(regular_graph, protocol, seed=1)
            assert result.metadata["engine"] == "scalar"


# ---------------------------------------------------------------------------
# Exact invariants, per protocol and graph
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOL_FACTORIES))
@pytest.mark.parametrize("graph_name", ["complete", "regular"])
class TestExactInvariants:
    def _graph(self, graph_name, regular_graph, parity_complete_graph):
        return parity_complete_graph if graph_name == "complete" else regular_graph

    def test_run_invariants_match_scalar_semantics(
        self, protocol_name, graph_name, regular_graph, parity_complete_graph
    ):
        graph = self._graph(graph_name, regular_graph, parity_complete_graph)
        n = graph.node_count
        factory = PROTOCOL_FACTORIES[protocol_name]
        fanout = PROTOCOL_FANOUTS[protocol_name]
        expected_channels_per_round = sum(
            min(fanout, graph.degree(v)) for v in graph.iter_nodes()
        )

        for seed in (1, 2, 3):
            result = run_with_engine(graph, factory(n), "vectorized", seed=seed)
            assert result.success, f"{protocol_name} seed {seed} failed"
            curve = result.informed_curve()
            assert all(a <= b for a, b in zip(curve, curve[1:]))
            assert curve[-1] == n
            if protocol_name in MASKED_CALLER_PROTOCOLS:
                # Only informed nodes call (fanout 0 while uninformed), so
                # the per-round charge equals the informed count at the
                # start of the round (min(1, degree) == 1 on these graphs).
                assert result.total_channels_opened == sum(
                    record.informed_before for record in result.history
                )
            else:
                # Full phone-call model: channel accounting is exact.
                assert (
                    result.total_channels_opened
                    == expected_channels_per_round * result.rounds_executed
                )
            # Conservation: every informed node (except the source) received
            # at least one delivered transmission.
            delivered = result.total_transmissions - result.total_lost_transmissions
            assert result.final_informed - 1 <= delivered

    def test_scalar_and_vectorized_agree_on_success(
        self, protocol_name, graph_name, regular_graph, parity_complete_graph
    ):
        graph = self._graph(graph_name, regular_graph, parity_complete_graph)
        n = graph.node_count
        factory = PROTOCOL_FACTORIES[protocol_name]
        scalar = run_with_engine(graph, factory(n), "scalar", seed=9)
        vectorized = run_with_engine(graph, factory(n), "vectorized", seed=9)
        assert scalar.success == vectorized.success is True
        assert scalar.final_informed == vectorized.final_informed == n


class TestVectorizedDeterminism:
    def test_same_seed_same_run(self, regular_graph):
        a = run_with_engine(regular_graph, Algorithm1(n_estimate=256), "vectorized", seed=5)
        b = run_with_engine(regular_graph, Algorithm1(n_estimate=256), "vectorized", seed=5)
        assert a.informed_curve() == b.informed_curve()
        assert a.total_transmissions == b.total_transmissions
        assert a.rounds_to_completion == b.rounds_to_completion

    def test_different_seeds_usually_differ(self, regular_graph):
        a = run_with_engine(regular_graph, PushProtocol(n_estimate=256), "vectorized", seed=5)
        b = run_with_engine(regular_graph, PushProtocol(n_estimate=256), "vectorized", seed=6)
        assert (
            a.informed_curve() != b.informed_curve()
            or a.total_transmissions != b.total_transmissions
        )

    def test_early_stop_matches_full_schedule_prefix(self, regular_graph):
        early = run_with_engine(regular_graph, PushProtocol(n_estimate=256), "vectorized", seed=8)
        full = run_with_engine(
            regular_graph,
            PushProtocol(n_estimate=256),
            "vectorized",
            seed=8,
            stop_when_informed=False,
        )
        assert early.rounds_to_completion == full.rounds_to_completion
        assert early.informed_curve() == full.informed_curve()[: early.rounds_executed]


class TestAlgorithm1PhaseParity:
    def test_phase_sums_match_totals_on_both_engines(self, regular_graph):
        for engine in ("scalar", "vectorized"):
            result = run_with_engine(
                regular_graph,
                Algorithm1(n_estimate=256),
                engine,
                seed=13,
                stop_when_informed=False,
            )
            phases = result.transmissions_by_phase()
            assert sum(phases.values()) == result.total_transmissions
            # Phase 1: each node pushes at most once over `fanout` channels.
            assert phases.get("phase1", 0) <= 4 * 256
            assert phases.get("phase3", 0) > 0

    def test_active_flag_semantics(self, regular_graph):
        # Phase 4 only re-pushes via nodes informed in phases 3-4; the run
        # must still complete on the full schedule.
        result = run_with_engine(
            regular_graph,
            Algorithm1(n_estimate=256),
            "vectorized",
            seed=21,
            stop_when_informed=False,
        )
        assert result.success
        assert result.rounds_executed == Algorithm1(n_estimate=256).horizon()


# ---------------------------------------------------------------------------
# Unusual graphs
# ---------------------------------------------------------------------------


class TestVectorizedEdgeCases:
    def test_fanout_larger_than_degree_calls_all_neighbours(self):
        graph = random_regular_graph(32, 3, RandomSource(seed=3))
        result = run_with_engine(graph, Algorithm1(n_estimate=32), "vectorized", seed=3)
        assert result.success
        for record in result.history:
            assert record.channels_opened == 3 * 32

    def test_multigraph_with_self_loops(self):
        graph = pairing_multigraph(128, 6, RandomSource(seed=9))
        result = run_with_engine(graph, PushPullProtocol(n_estimate=128), "vectorized", seed=9)
        assert result.final_informed >= 0.9 * 128

    def test_disconnected_graph_never_completes(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        result = run_with_engine(graph, PushPullProtocol(n_estimate=6), "vectorized", seed=2)
        assert not result.success
        assert result.final_informed == 3

    def test_star_graph_with_pull(self):
        star = Graph.from_edges(9, [(0, i) for i in range(1, 9)])
        result = run_with_engine(star, PushPullProtocol(n_estimate=9), "vectorized", seed=4)
        assert result.success

    def test_isolated_node_opens_no_channels(self):
        graph = Graph.from_edges(3, [(0, 1)])
        result = run_with_engine(graph, PushProtocol(n_estimate=3), "vectorized", seed=1)
        assert not result.success
        assert result.final_informed == 2
        # Node 2 has degree 0 and contributes no channels.
        assert all(record.channels_opened == 2 for record in result.history)

    def test_non_zero_source(self, regular_graph):
        result = run_with_engine(
            regular_graph, PushProtocol(n_estimate=256), "vectorized", seed=2
        )
        shifted = run_broadcast(
            regular_graph,
            PushProtocol(n_estimate=256),
            source=200,
            seed=2,
            config=SimulationConfig(engine="vectorized"),
        )
        assert result.success and shifted.success
        assert shifted.source == 200


# ---------------------------------------------------------------------------
# Failure injection parity
# ---------------------------------------------------------------------------


class TestFailureParity:
    def test_total_loss_blocks_broadcast_on_both_engines(self, regular_graph):
        for engine in ("scalar", "vectorized"):
            result = run_with_engine(
                regular_graph,
                PushProtocol(n_estimate=256),
                engine,
                seed=9,
                message_loss_probability=1.0,
            )
            assert not result.success
            assert result.final_informed == 1
            assert result.total_lost_transmissions == result.total_transmissions > 0

    def test_total_channel_failure_blocks_any_transmission(self, regular_graph):
        for engine in ("scalar", "vectorized"):
            result = run_with_engine(
                regular_graph,
                PushProtocol(n_estimate=256),
                engine,
                seed=9,
                channel_failure_probability=1.0,
            )
            assert not result.success
            assert result.total_transmissions == 0

    def test_partial_loss_slows_but_completes(self, regular_graph):
        clean = run_with_engine(regular_graph, PushProtocol(n_estimate=256), "vectorized", seed=9)
        lossy = run_with_engine(
            regular_graph,
            PushProtocol(n_estimate=256),
            "vectorized",
            seed=9,
            message_loss_probability=0.3,
        )
        assert lossy.success
        assert lossy.total_lost_transmissions > 0
        assert lossy.rounds_to_completion >= clean.rounds_to_completion


# ---------------------------------------------------------------------------
# Statistical parity across seeds
# ---------------------------------------------------------------------------


class TestStatisticalParity:
    SEEDS = range(40)

    def _mean(self, values):
        values = list(values)
        return sum(values) / len(values)

    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOL_FACTORIES))
    def test_completion_rounds_distribution_matches(self, protocol_name, regular_graph):
        factory = PROTOCOL_FACTORIES[protocol_name]
        scalar_rounds = [
            run_with_engine(regular_graph, factory(256), "scalar", seed=s).rounds_to_completion
            for s in self.SEEDS
        ]
        vector_rounds = [
            run_with_engine(regular_graph, factory(256), "vectorized", seed=s).rounds_to_completion
            for s in self.SEEDS
        ]
        assert None not in scalar_rounds and None not in vector_rounds
        scalar_mean = self._mean(scalar_rounds)
        vector_mean = self._mean(vector_rounds)
        # Means over 40 seeds agree within 12% of the scalar mean (completion
        # round distributions at n=256 are tightly concentrated).
        assert abs(scalar_mean - vector_mean) <= max(1.0, 0.12 * scalar_mean)

    def test_transmission_totals_match_on_full_schedule(self, regular_graph):
        # On the full schedule the push transmission count is informed-count
        # driven, so the seed-averaged totals must line up closely.
        scalar_tx = [
            run_with_engine(
                regular_graph, PushProtocol(n_estimate=256), "scalar", seed=s,
                stop_when_informed=False,
            ).total_transmissions
            for s in self.SEEDS
        ]
        vector_tx = [
            run_with_engine(
                regular_graph, PushProtocol(n_estimate=256), "vectorized", seed=s,
                stop_when_informed=False,
            ).total_transmissions
            for s in self.SEEDS
        ]
        assert abs(self._mean(scalar_tx) - self._mean(vector_tx)) <= 0.05 * self._mean(scalar_tx)


# ---------------------------------------------------------------------------
# VectorState unit semantics
# ---------------------------------------------------------------------------


class TestVectorState:
    def test_initial_state(self):
        state = VectorState(n=5, source=2)
        assert state.informed_count == 1
        assert state.informed[2]
        assert state.informed_round[2] == 0
        assert not state.all_informed()

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            VectorState(n=3, source=3)

    def test_commit_round_promotes_pending(self):
        state = VectorState(n=4, source=0)
        state.pending[[1, 3]] = True
        newly = state.commit_round(round_index=7)
        assert sorted(newly.tolist()) == [1, 3]
        assert state.informed_count == 3
        assert state.informed_round[1] == state.informed_round[3] == 7
        assert not state.pending.any()

    def test_commit_ignores_already_informed(self):
        state = VectorState(n=3, source=0)
        state.pending[[0, 1]] = True
        newly = state.commit_round(round_index=1)
        assert newly.tolist() == [1]
        assert state.informed_round[0] == 0
        assert state.informed_count == 2
