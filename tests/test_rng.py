"""Unit tests for repro.core.rng."""

from __future__ import annotations

import pytest

from repro.core.rng import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_labels_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_result_is_non_negative(self):
        for seed in (0, 1, 2**40):
            assert derive_seed(seed, "x") >= 0


class TestRandomSourceConstruction:
    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(seed=-1)

    def test_same_seed_same_sequence(self):
        a = RandomSource(seed=7)
        b = RandomSource(seed=7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_different_sequence(self):
        a = RandomSource(seed=7)
        b = RandomSource(seed=8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = RandomSource(seed=5).spawn("child", 1)
        b = RandomSource(seed=5).spawn("child", 1)
        assert a.seed == b.seed

    def test_spawn_labels_matter(self):
        root = RandomSource(seed=5)
        assert root.spawn("x").seed != root.spawn("y").seed

    def test_spawn_does_not_consume_parent_stream(self):
        a = RandomSource(seed=5)
        b = RandomSource(seed=5)
        a.spawn("child")
        assert a.random() == b.random()

    def test_spawn_name_records_lineage(self):
        child = RandomSource(seed=5, name="root").spawn("graph", 8)
        assert "graph" in child.name and "8" in child.name


class TestScalarDraws:
    def test_random_in_unit_interval(self, rng):
        for _ in range(100):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randint_bounds(self, rng):
        values = {rng.randint(3, 7) for _ in range(200)}
        assert values <= {3, 4, 5, 6}
        assert len(values) == 4

    def test_randint_empty_range_rejected(self, rng):
        with pytest.raises(ValueError):
            rng.randint(5, 5)

    def test_bernoulli_extremes(self, rng):
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_bernoulli_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)
        with pytest.raises(ValueError):
            rng.bernoulli(-0.1)

    def test_bernoulli_frequency(self):
        rng = RandomSource(seed=11)
        hits = sum(rng.bernoulli(0.25) for _ in range(4000))
        assert 800 < hits < 1200

    def test_binomial_bounds(self, rng):
        for _ in range(50):
            value = rng.binomial(10, 0.5)
            assert 0 <= value <= 10


class TestCollectionDraws:
    def test_choice_from_singleton(self, rng):
        assert rng.choice([42]) == 42

    def test_choice_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            rng.choice([])

    def test_sample_distinct_returns_k_items(self, rng):
        items = list(range(20))
        sample = rng.sample_distinct(items, 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5
        assert set(sample) <= set(items)

    def test_sample_distinct_k_one_fast_path(self, rng):
        items = list(range(10))
        for _ in range(50):
            (value,) = rng.sample_distinct(items, 1)
            assert value in items

    def test_sample_distinct_k_exceeds_population(self, rng):
        items = [1, 2, 3]
        sample = rng.sample_distinct(items, 10)
        assert sorted(sample) == [1, 2, 3]

    def test_sample_distinct_empty_population(self, rng):
        assert rng.sample_distinct([], 4) == []

    def test_sample_distinct_covers_population(self):
        rng = RandomSource(seed=3)
        seen = set()
        for _ in range(300):
            seen.update(rng.sample_distinct(list(range(6)), 2))
        assert seen == set(range(6))

    def test_shuffle_preserves_elements(self, rng):
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_permutation_is_permutation(self, rng):
        perm = rng.permutation(15)
        assert sorted(perm.tolist()) == list(range(15))
