"""Unit tests for repro.graphs.base.Graph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.base import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.node_count == 0
        assert graph.edge_count == 0
        assert graph.nodes() == []

    def test_from_edges(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_from_networkx_relabels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph = Graph.from_networkx(nx_graph)
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.nodes() == [0, 1, 2]

    def test_add_edge_requires_existing_nodes(self):
        graph = Graph(range(2))
        with pytest.raises(KeyError):
            graph.add_edge(0, 5)


class TestMutation:
    def test_add_and_remove_edge(self):
        graph = Graph(range(3))
        graph.add_edge(0, 1)
        assert graph.edge_count == 1
        graph.remove_edge(0, 1)
        assert graph.edge_count == 0
        assert not graph.has_edge(0, 1)

    def test_parallel_edges_tracked_with_multiplicity(self):
        graph = Graph(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.edge_count == 2
        assert graph.degree(0) == 2
        assert graph.has_parallel_edges()
        assert not graph.is_simple()
        assert graph.edges().count((0, 1)) == 2

    def test_self_loop(self):
        graph = Graph(range(2))
        graph.add_edge(1, 1)
        assert graph.has_self_loop()
        assert not graph.is_simple()
        # A self-loop consumes two stubs, so it contributes two to the degree.
        assert graph.degree(1) == 2
        assert (1, 1) in graph.edges()
        assert graph.edge_count == 1

    def test_remove_node_cleans_incident_edges(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        graph.remove_node(0)
        assert 0 not in graph
        assert graph.edge_count == 2
        assert graph.degree(1) == 1
        assert graph.degree(3) == 1

    def test_remove_node_with_parallel_edges(self):
        graph = Graph(range(3))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.remove_node(0)
        assert graph.edge_count == 1
        assert graph.degree(1) == 1

    def test_add_node_idempotent(self):
        graph = Graph(range(2))
        graph.add_node(1)
        graph.add_node(7)
        assert graph.node_count == 3


class TestQueries:
    def test_degrees_and_regularity(self):
        triangle = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert triangle.degrees() == {0: 2, 1: 2, 2: 2}
        assert triangle.is_regular()
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert not path.is_regular()

    def test_neighbors_with_multiplicity(self):
        graph = Graph(range(3))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert sorted(graph.neighbors(0)) == [1, 1, 2]

    def test_edges_undirected_deduplication(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_contains_and_len(self):
        graph = Graph(range(4))
        assert 3 in graph
        assert 4 not in graph
        assert len(graph) == 4

    def test_is_regular_on_empty_graph(self):
        assert Graph().is_regular()


class TestConversionsAndCopy:
    def test_to_networkx_roundtrip_edge_count(self):
        graph = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 4

    def test_to_networkx_multigraph_preserves_multiplicity(self):
        graph = Graph(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.to_networkx_multigraph().number_of_edges() == 2

    def test_copy_is_independent(self):
        graph = Graph.from_edges(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.edge_count == 1
        assert clone.edge_count == 2
        assert graph.neighbors(1) == [0]
