"""Unit tests for repro.graphs.base.Graph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.base import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.node_count == 0
        assert graph.edge_count == 0
        assert graph.nodes() == []

    def test_from_edges(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_from_networkx_relabels(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph = Graph.from_networkx(nx_graph)
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.nodes() == [0, 1, 2]

    def test_add_edge_requires_existing_nodes(self):
        graph = Graph(range(2))
        with pytest.raises(KeyError):
            graph.add_edge(0, 5)


class TestMutation:
    def test_add_and_remove_edge(self):
        graph = Graph(range(3))
        graph.add_edge(0, 1)
        assert graph.edge_count == 1
        graph.remove_edge(0, 1)
        assert graph.edge_count == 0
        assert not graph.has_edge(0, 1)

    def test_parallel_edges_tracked_with_multiplicity(self):
        graph = Graph(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.edge_count == 2
        assert graph.degree(0) == 2
        assert graph.has_parallel_edges()
        assert not graph.is_simple()
        assert graph.edges().count((0, 1)) == 2

    def test_self_loop(self):
        graph = Graph(range(2))
        graph.add_edge(1, 1)
        assert graph.has_self_loop()
        assert not graph.is_simple()
        # A self-loop consumes two stubs, so it contributes two to the degree.
        assert graph.degree(1) == 2
        assert (1, 1) in graph.edges()
        assert graph.edge_count == 1

    def test_remove_node_cleans_incident_edges(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        graph.remove_node(0)
        assert 0 not in graph
        assert graph.edge_count == 2
        assert graph.degree(1) == 1
        assert graph.degree(3) == 1

    def test_remove_node_with_parallel_edges(self):
        graph = Graph(range(3))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.remove_node(0)
        assert graph.edge_count == 1
        assert graph.degree(1) == 1

    def test_add_node_idempotent(self):
        graph = Graph(range(2))
        graph.add_node(1)
        graph.add_node(7)
        assert graph.node_count == 3


class TestQueries:
    def test_degrees_and_regularity(self):
        triangle = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert triangle.degrees() == {0: 2, 1: 2, 2: 2}
        assert triangle.is_regular()
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert not path.is_regular()

    def test_neighbors_with_multiplicity(self):
        graph = Graph(range(3))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert sorted(graph.neighbors(0)) == [1, 1, 2]

    def test_edges_undirected_deduplication(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_contains_and_len(self):
        graph = Graph(range(4))
        assert 3 in graph
        assert 4 not in graph
        assert len(graph) == 4

    def test_is_regular_on_empty_graph(self):
        assert Graph().is_regular()


class TestConversionsAndCopy:
    def test_to_networkx_roundtrip_edge_count(self):
        graph = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 4

    def test_to_networkx_multigraph_preserves_multiplicity(self):
        graph = Graph(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.to_networkx_multigraph().number_of_edges() == 2

    def test_copy_is_independent(self):
        graph = Graph.from_edges(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.edge_count == 1
        assert clone.edge_count == 2
        assert graph.neighbors(1) == [0]


class TestCSRView:
    def test_csr_matches_adjacency(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        indptr, indices = graph.csr()
        for node in range(4):
            stubs = sorted(indices[indptr[node] : indptr[node + 1]].tolist())
            assert stubs == sorted(graph.neighbors(node))

    def test_csr_preserves_multiplicity_and_self_loops(self):
        graph = Graph(range(2))
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        graph.add_edge(1, 1)
        indptr, indices = graph.csr()
        assert indices[indptr[0] : indptr[1]].tolist() == [1, 1]
        # A self-loop consumes two stubs, exactly as in neighbors().
        assert sorted(indices[indptr[1] : indptr[2]].tolist()) == [0, 0, 1, 1]

    def test_csr_is_cached_until_mutation(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        first = graph.csr()
        assert graph.csr() is first
        graph.add_edge(0, 2)
        second = graph.csr()
        assert second is not first
        assert second[0][-1] == 6

    def test_csr_rejects_non_contiguous_ids(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        graph.remove_node(1)
        assert not graph.has_contiguous_ids()
        with pytest.raises(ValueError):
            graph.csr()

    def test_degree_array_matches_degrees(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        degrees = graph.degree_array()
        assert degrees.tolist() == [graph.degree(v) for v in range(4)]

    def test_from_edge_array_equivalent_to_from_edges(self):
        import numpy as np

        edges = [(0, 1), (1, 2), (2, 0), (2, 2), (0, 1)]
        bulk = Graph.from_edge_array(3, np.array(edges))
        scalar = Graph.from_edges(3, edges)
        assert bulk.node_count == scalar.node_count
        assert bulk.edge_count == scalar.edge_count
        for node in range(3):
            assert sorted(bulk.neighbors(node)) == sorted(scalar.neighbors(node))

    def test_from_edge_array_rejects_out_of_range(self):
        import numpy as np

        with pytest.raises(ValueError):
            Graph.from_edge_array(2, np.array([(0, 5)]))

    def test_from_edge_array_empty(self):
        import numpy as np

        graph = Graph.from_edge_array(3, np.empty((0, 2), dtype=np.int64))
        assert graph.node_count == 3
        assert graph.edge_count == 0

    def test_from_edge_array_rejects_malformed_shape_even_when_empty(self):
        import numpy as np

        with pytest.raises(ValueError):
            Graph.from_edge_array(3, np.empty((0, 7), dtype=np.int64))
        with pytest.raises(ValueError):
            Graph.from_edge_array(3, np.empty(0, dtype=np.int64))


class TestLazyAdjacency:
    """Bulk-constructed graphs answer array queries without building lists."""

    def _lazy_graph(self):
        import numpy as np

        return Graph.from_edge_array(
            4, np.array([(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)])
        )

    def test_bulk_construction_defers_adjacency(self):
        graph = self._lazy_graph()
        assert graph._lazy_n == 4
        # Array-backed queries must not materialise the dict.
        assert graph.node_count == 4
        assert len(graph) == 4
        assert 3 in graph and 4 not in graph
        assert graph.nodes() == [0, 1, 2, 3]
        assert list(graph.iter_nodes()) == [0, 1, 2, 3]
        assert graph.degree(1) == 4  # self-loop counts twice
        assert graph.degrees() == {0: 2, 1: 4, 2: 2, 3: 2}
        assert graph.has_contiguous_ids()
        assert graph.has_self_loop()
        assert not graph.has_parallel_edges()
        assert not graph.is_simple()
        assert not graph.is_regular()
        assert graph._lazy_n == 4

    def test_neighbors_materialises_and_matches_scalar_construction(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]
        import numpy as np

        lazy = Graph.from_edge_array(4, np.array(edges))
        scalar = Graph.from_edges(4, edges)
        for node in range(4):
            assert sorted(lazy.neighbors(node)) == sorted(scalar.neighbors(node))
        assert lazy._lazy_n is None

    def test_mutation_materialises_first(self):
        graph = self._lazy_graph()
        graph.add_edge(0, 2)
        assert graph._lazy_n is None
        assert graph.edge_count == 6
        assert graph.has_edge(0, 2)

    def test_lazy_copy_is_independent(self):
        graph = self._lazy_graph()
        clone = graph.copy()
        clone.add_edge(0, 2)
        assert clone.edge_count == graph.edge_count + 1
        assert not graph.has_edge(0, 2)
        assert sorted(graph.neighbors(0)) == [1, 3]

    def test_lazy_parallel_edge_detection(self):
        import numpy as np

        graph = Graph.from_edge_array(3, np.array([(0, 1), (0, 1), (1, 2)]))
        assert graph.has_parallel_edges()
        assert not graph.has_self_loop()
        assert graph.is_regular() is False

    def test_lazy_regularity(self):
        import numpy as np

        ring = Graph.from_edge_array(4, np.array([(0, 1), (1, 2), (2, 3), (3, 0)]))
        assert ring.is_regular()
        assert ring.is_simple()
