"""Unit tests for repro.core.message."""

from __future__ import annotations

from repro.core.message import Message, Payload


class TestMessage:
    def test_age_at_creation_round_is_zero(self):
        message = Message(message_id=1, origin=0, created_round=5)
        assert message.age(5) == 0

    def test_age_grows_with_rounds(self):
        message = Message(message_id=1, origin=0, created_round=2)
        assert message.age(10) == 8

    def test_messages_are_hashable_and_comparable(self):
        a = Message(message_id=1, origin=0)
        b = Message(message_id=2, origin=0)
        assert a < b
        assert len({a, b, a}) == 2

    def test_default_size(self):
        assert Message(message_id=1, origin=0).size == 1


class TestPayload:
    def test_empty_payload(self):
        payload = Payload()
        assert payload.is_empty()
        assert payload.transmission_count == 0

    def test_of_builds_from_iterable(self):
        payload = Payload.of([1, 2, 2, 3])
        assert payload.transmission_count == 3
        assert not payload.is_empty()

    def test_merged_with_unions_ids(self):
        merged = Payload.of([1, 2]).merged_with(Payload.of([2, 3]))
        assert merged.message_ids == frozenset({1, 2, 3})
        assert merged.transmission_count == 3

    def test_merge_does_not_mutate_operands(self):
        left = Payload.of([1])
        right = Payload.of([2])
        left.merged_with(right)
        assert left.message_ids == frozenset({1})
        assert right.message_ids == frozenset({2})
