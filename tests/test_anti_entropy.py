"""Tests for anti-entropy repair of the replicated database."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.p2p.anti_entropy import AntiEntropySession
from repro.p2p.gossip_rules import Algorithm1Rule, PushRule
from repro.p2p.overlay import Overlay
from repro.p2p.peer import Peer, Update
from repro.p2p.replicated_db import ReplicatedDatabase, UpdateWorkload


def _session(n=32, degree=4, seed=5):
    rng = RandomSource(seed=seed)
    overlay = Overlay(n=n, degree=degree, rng=rng.spawn("overlay"))
    peers = {peer_id: Peer(peer_id=peer_id) for peer_id in overlay.peer_ids()}
    return overlay, peers, rng


class TestAntiEntropySession:
    def test_no_updates_means_zero_divergence(self):
        overlay, peers, rng = _session()
        session = AntiEntropySession(overlay, peers, rng.spawn("ae"))
        report = session.run(rounds=1)
        assert report.final_divergence == 0.0
        assert report.updates_transferred == 0
        assert report.exchanges > 0

    def test_single_seeded_update_spreads_to_everyone(self):
        overlay, peers, rng = _session()
        update = Update(key="k", version=1, origin=0, created_round=0, value="v")
        peers[0].apply(update)
        session = AntiEntropySession(overlay, peers, rng.spawn("ae"))
        # Each anti-entropy round spreads the update along overlay edges; a
        # handful of rounds covers the whole (log-diameter) overlay.
        report = session.run(rounds=10)
        assert report.final_divergence == 0.0
        assert all(peer.knows(update) for peer in peers.values())
        assert report.updates_transferred >= len(peers) - 1
        assert report.bytes_transferred >= report.updates_transferred * update.size // 2

    def test_divergence_decreases_monotonically_in_expectation(self):
        overlay, peers, rng = _session(n=64, degree=6)
        for i in range(5):
            peers[i].apply(Update(key=f"k{i}", version=1, origin=i, created_round=0))
        session = AntiEntropySession(overlay, peers, rng.spawn("ae"))
        before = session.divergence()
        session.run(rounds=2)
        after = session.divergence()
        assert after < before

    def test_invalid_parameters(self):
        overlay, peers, rng = _session()
        with pytest.raises(ConfigurationError):
            AntiEntropySession(overlay, peers, rng, exchanges_per_round=0)
        session = AntiEntropySession(overlay, peers, rng)
        with pytest.raises(ConfigurationError):
            session.run(rounds=-1)

    def test_zero_rounds_is_a_noop(self):
        overlay, peers, rng = _session()
        session = AntiEntropySession(overlay, peers, rng)
        report = session.run(rounds=0)
        assert report.exchanges == 0
        assert report.rounds == 0


class TestReplicatedDatabaseIntegration:
    def test_anti_entropy_heals_late_joiners(self):
        rng = RandomSource(seed=17)
        overlay = Overlay(n=96, degree=6, rng=rng.spawn("overlay"))
        database = ReplicatedDatabase(
            overlay,
            Algorithm1Rule(n_estimate=96),
            rng.spawn("db"),
            join_rate=0.03,
            leave_rate=0.0,
        )
        report = database.run(UpdateWorkload(updates_per_round=2, injection_rounds=3))
        # Joiners that arrived after an update's horizon cannot have heard it
        # through rumour mongering alone.
        if report.final_divergence > 0:
            repair = database.anti_entropy(rounds=12)
            assert repair.final_divergence < report.final_divergence
            assert repair.final_divergence == pytest.approx(0.0, abs=1e-9)
        else:  # pragma: no cover - rare but possible with few joiners
            assert database.replicas_agree()

    def test_anti_entropy_after_push_rule(self):
        rng = RandomSource(seed=18)
        overlay = Overlay(n=64, degree=6, rng=rng.spawn("overlay"))
        database = ReplicatedDatabase(overlay, PushRule(n_estimate=64), rng.spawn("db"))
        database.run(UpdateWorkload(updates_per_round=1, injection_rounds=2))
        report = database.anti_entropy(rounds=3)
        assert report.final_divergence == 0.0
        assert database.replicas_agree()
