"""Unit tests for the baseline graph families."""

from __future__ import annotations

import pytest

from repro.core.errors import GraphGenerationError
from repro.graphs.families import (
    complete_graph,
    gnp_graph,
    hypercube_graph,
    regular_product_with_clique,
    ring_graph,
)
from repro.graphs.properties import is_connected


class TestCompleteGraph:
    def test_edge_count(self):
        graph = complete_graph(10)
        assert graph.edge_count == 45
        assert all(degree == 9 for degree in graph.degrees().values())

    def test_minimum_size(self):
        with pytest.raises(GraphGenerationError):
            complete_graph(1)

    def test_is_simple_and_connected(self):
        graph = complete_graph(6)
        assert graph.is_simple()
        assert is_connected(graph)


class TestGnpGraph:
    def test_extreme_probabilities(self, rng):
        empty = gnp_graph(20, 0.0, rng)
        assert empty.edge_count == 0
        full = gnp_graph(10, 1.0, rng)
        assert full.edge_count == 45

    def test_invalid_probability(self, rng):
        with pytest.raises(GraphGenerationError):
            gnp_graph(10, 1.5, rng)

    def test_edge_count_roughly_matches_expectation(self, rng):
        graph = gnp_graph(200, 0.1, rng)
        expected = 0.1 * 200 * 199 / 2
        assert 0.6 * expected < graph.edge_count < 1.4 * expected


class TestHypercube:
    def test_dimensions(self):
        cube = hypercube_graph(4)
        assert cube.node_count == 16
        assert all(degree == 4 for degree in cube.degrees().values())
        assert cube.edge_count == 16 * 4 // 2

    def test_neighbours_differ_in_one_bit(self):
        cube = hypercube_graph(3)
        for node in cube.nodes():
            for neighbour in cube.neighbors(node):
                assert bin(node ^ neighbour).count("1") == 1

    def test_invalid_dimension(self):
        with pytest.raises(GraphGenerationError):
            hypercube_graph(0)


class TestRing:
    def test_ring_structure(self):
        ring = ring_graph(7)
        assert ring.edge_count == 7
        assert all(degree == 2 for degree in ring.degrees().values())
        assert is_connected(ring)

    def test_minimum_size(self):
        with pytest.raises(GraphGenerationError):
            ring_graph(2)


class TestProductWithClique:
    def test_size_and_degree(self, rng):
        graph = regular_product_with_clique(20, 4, rng, clique_size=5)
        assert graph.node_count == 100
        # Each node: clique_size-1 = 4 intra-clique edges + d = 4 inter-copy edges.
        assert all(degree == 8 for degree in graph.degrees().values())

    def test_connected(self, rng):
        graph = regular_product_with_clique(16, 4, rng, clique_size=3)
        assert is_connected(graph)

    def test_invalid_clique_size(self, rng):
        with pytest.raises(GraphGenerationError):
            regular_product_with_clique(10, 4, rng, clique_size=1)
