"""Unit tests for repro.graphs.properties."""

from __future__ import annotations

import math

import pytest

from repro.core.rng import RandomSource
from repro.graphs.base import Graph
from repro.graphs.configuration_model import random_regular_graph
from repro.graphs.families import complete_graph, ring_graph
from repro.graphs.properties import (
    average_shortest_path_length,
    connected_components,
    degree_histogram,
    diameter,
    edge_boundary_size,
    edges_within,
    expander_mixing_bound,
    is_connected,
    profile_graph,
    second_largest_adjacency_eigenvalue,
)


class TestConnectivity:
    def test_connected_graph(self):
        assert is_connected(ring_graph(6))

    def test_disconnected_graph(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert not is_connected(graph)
        components = connected_components(graph)
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3]]

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())


class TestDistances:
    def test_ring_diameter(self):
        assert diameter(ring_graph(8)) == 4

    def test_complete_graph_average_distance(self):
        assert average_shortest_path_length(complete_graph(5)) == pytest.approx(1.0)

    def test_random_regular_diameter_is_logarithmic(self):
        graph = random_regular_graph(128, 4, RandomSource(seed=2))
        if is_connected(graph):
            assert diameter(graph) <= 4 * math.log2(128)


class TestCutsAndHistograms:
    def test_degree_histogram(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert degree_histogram(graph) == {1: 2, 2: 2}

    def test_edge_boundary_of_half_ring(self):
        ring = ring_graph(8)
        assert edge_boundary_size(ring, {0, 1, 2, 3}) == 2

    def test_edges_within(self):
        ring = ring_graph(8)
        assert edges_within(ring, {0, 1, 2, 3}) == 3

    def test_edges_within_with_self_loop(self):
        graph = Graph(range(2))
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        assert edges_within(graph, {0}) == 1

    def test_boundary_ignores_missing_nodes(self):
        ring = ring_graph(5)
        assert edge_boundary_size(ring, {0, 99}) == 2


class TestSpectra:
    def test_complete_graph_second_eigenvalue(self):
        # K_n has eigenvalues n-1 (once) and -1 (n-1 times).
        assert second_largest_adjacency_eigenvalue(complete_graph(6)) == pytest.approx(
            -1.0, abs=1e-8
        )

    def test_random_regular_respects_friedman_bound(self):
        graph = random_regular_graph(100, 6, RandomSource(seed=3))
        lam = second_largest_adjacency_eigenvalue(graph)
        assert lam <= 1.2 * 2 * math.sqrt(5)

    def test_expander_mixing_bound_properties(self):
        # With d = 16 and lam = 2*sqrt(15) the bound at a half split is
        # non-trivial: d/4 > lam/2.
        bound = expander_mixing_bound(d=16, n=1000, set_size=500, lam=2 * math.sqrt(15))
        assert 0 < bound < 16 * 500
        # A huge eigenvalue gives a vacuous (zero) bound, never negative.
        assert expander_mixing_bound(d=8, n=100, set_size=50, lam=1000) == 0.0


class TestProfile:
    def test_profile_of_regular_graph(self):
        graph = random_regular_graph(64, 4, RandomSource(seed=6))
        profile = profile_graph(graph)
        assert profile.node_count == 64
        assert profile.is_regular
        assert profile.is_simple
        assert profile.min_degree == profile.max_degree == 4
        if profile.is_connected:
            assert profile.diameter is not None
        assert profile.friedman_bound == pytest.approx(2 * math.sqrt(3))
        assert profile.satisfies_friedman_bound(slack=1.3)

    def test_profile_without_spectrum(self):
        profile = profile_graph(ring_graph(10), compute_spectrum=False)
        assert profile.second_eigenvalue is None
        assert not profile.satisfies_friedman_bound()
