"""Vectorized dynamic-membership suite: churn on the bulk NumPy engine.

The vectorized engine's churn mode promises three robustness contracts:

1. **bit-identity across execution shape** — the same (graph, protocol,
   churn model, seed) produces byte-for-byte identical results whether node
   compaction is on or off, whether ``repeat_broadcast`` is asked to batch
   or not, and whether a ScenarioSpec runs serially, across worker
   processes, resumed from checkpoints, or under an injected worker kill;
2. **statistical parity with the scalar engine** — membership is
   represented differently (tombstoned CSR rows vs real graph surgery), so
   scalar and vectorized runs only agree in distribution on the E8
   observables;
3. **lifecycle hygiene** — churn models are reset per run, so reusing a
   model instance (or an engine) can never leak joined-node ids between
   runs.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast, run_broadcast_batch
from repro.core.engine_vectorized import vectorization_unsupported_reason
from repro.core.errors import SimulationError
from repro.core.rng import RandomSource
from repro.experiments.runner import repeat_broadcast
from repro.failures.churn import AdversarialChurn, BurstChurn, FlashCrowd, UniformChurn
from repro.graphs.registry import build_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.quasirandom import QuasirandomPushProtocol
from repro.spec import ScenarioSpec, run_spec

CHURN_FACTORIES = {
    "uniform": lambda: UniformChurn(leave_rate=0.02, join_rate=0.02, target_degree=8),
    "burst": lambda: BurstChurn(at_round=3, fraction=0.3),
    "flash-crowd": lambda: FlashCrowd(at_round=2, fraction=0.4, target_degree=8),
    "adversarial": lambda: AdversarialChurn(leave_rate=0.05),
}

PROTOCOL_FACTORIES = {
    "algorithm1": lambda n: Algorithm1(n_estimate=n),
    "push-pull": lambda n: PushPullProtocol(n_estimate=n),
}


def _graph(n=256, d=8, seed=3):
    return build_graph("random-regular", rng=RandomSource(seed, name="graph"), n=n, d=d)


def fingerprint(result):
    """Everything observable about a run, for bit-identity comparisons."""
    return (
        result.success,
        result.rounds_executed,
        result.rounds_to_completion,
        result.final_informed,
        result.total_push_transmissions,
        result.total_pull_transmissions,
        result.total_channels_opened,
        result.total_lost_transmissions,
        result.history,
        result.metadata.get("churn"),
        result.metadata.get("final_node_count"),
    )


# ---------------------------------------------------------------------------
# Bit-identity across execution shape
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("churn_name", sorted(CHURN_FACTORIES))
    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOL_FACTORIES))
    def test_same_seed_reproduces(self, churn_name, protocol_name):
        graph = _graph()
        cfg = SimulationConfig(engine="vectorized", collect_round_history=True)
        runs = []
        for _ in range(2):
            result = run_broadcast(
                graph=graph,
                protocol=PROTOCOL_FACTORIES[protocol_name](256),
                seed=11,
                config=cfg,
                churn_model=CHURN_FACTORIES[churn_name](),
            )
            assert result.metadata["engine"] == "vectorized"
            runs.append(fingerprint(result))
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("churn_name", sorted(CHURN_FACTORIES))
    def test_node_compaction_on_off_parity(self, churn_name):
        """Compaction renumbers ids mid-run; draws must not notice.

        Every vectorized-churn draw depends only on live positions and
        counts, never raw id values, so switching the node-axis compaction
        off must reproduce the exact same run.
        """
        graph = _graph()
        runs = {}
        for compact in (True, False):
            cfg = SimulationConfig(
                engine="vectorized",
                collect_round_history=True,
                churn_node_compaction=compact,
            )
            result = run_broadcast(
                graph=graph,
                protocol=Algorithm1(n_estimate=256),
                seed=5,
                config=cfg,
                churn_model=CHURN_FACTORIES[churn_name](),
            )
            runs[compact] = fingerprint(result)
            if compact and churn_name == "burst":
                # The 30% burst departure must actually trigger compaction,
                # otherwise this test exercises nothing.
                assert result.metadata["churn"]["node_compactions"] >= 1
        compacted_meta = dict(runs[True][-2])
        uncompacted_meta = dict(runs[False][-2])
        # The compaction counter is the one legitimate difference.
        del compacted_meta["node_compactions"]
        del uncompacted_meta["node_compactions"]
        assert runs[True][:-2] == runs[False][:-2]
        assert compacted_meta == uncompacted_meta
        assert runs[True][-1] == runs[False][-1]

    def test_repeat_broadcast_batch_flag_is_inert_under_churn(self):
        """Churn never batches, so ``batch=`` cannot change results."""
        graph = _graph(n=128)
        seeds = [1, 2, 3]
        runs = {}
        for batch in (True, False):
            results = repeat_broadcast(
                graph=graph,
                protocol_factory=PROTOCOL_FACTORIES["algorithm1"],
                n_estimate=128,
                seeds=seeds,
                config=SimulationConfig(collect_round_history=True),
                churn_factory=CHURN_FACTORIES["uniform"],
                batch=batch,
            )
            assert all(r.metadata["engine"] == "vectorized" for r in results)
            runs[batch] = [fingerprint(r) for r in results]
        assert runs[True] == runs[False]

    def test_run_broadcast_batch_falls_back_per_seed_with_churn(self):
        graph = _graph(n=128)
        batched = run_broadcast_batch(
            graph=graph,
            protocol=Algorithm1(n_estimate=128),
            seeds=[7, 8],
            config=SimulationConfig(collect_round_history=True),
            churn_model=CHURN_FACTORIES["uniform"](),
        )
        single = [
            run_broadcast(
                graph=graph,
                protocol=Algorithm1(n_estimate=128),
                seed=seed,
                config=SimulationConfig(collect_round_history=True),
                churn_model=CHURN_FACTORIES["uniform"](),
            )
            for seed in (7, 8)
        ]
        assert [fingerprint(r) for r in batched] == [fingerprint(r) for r in single]


# ---------------------------------------------------------------------------
# Dispatch rules
# ---------------------------------------------------------------------------


class TestDispatch:
    def test_batched_reason_names_churn(self):
        reason = vectorization_unsupported_reason(
            _graph(n=64, d=4),
            Algorithm1(n_estimate=64),
            SimulationConfig(),
            churn_model=CHURN_FACTORIES["uniform"](),
            batched=True,
        )
        assert reason is not None and "batched engine" in reason

    def test_forced_vectorized_raises_for_non_dynamic_protocol(self):
        with pytest.raises(SimulationError, match="dynamic"):
            run_broadcast(
                graph=_graph(n=64, d=4),
                protocol=QuasirandomPushProtocol(n_estimate=64),
                seed=1,
                config=SimulationConfig(engine="vectorized"),
                churn_model=CHURN_FACTORIES["uniform"](),
            )


# ---------------------------------------------------------------------------
# Lifecycle hygiene (the _next_node_id reuse leak)
# ---------------------------------------------------------------------------


class TestChurnModelLifecycle:
    def test_reset_clears_join_id_counter(self):
        # max_rounds bounds the growth: unchecked 50% joins per round make
        # the broadcast chase an exponentially growing network.
        model = UniformChurn(
            leave_rate=0.0, join_rate=0.5, target_degree=4, max_rounds=3
        )
        run_broadcast(
            graph=_graph(n=32, d=4),
            protocol=Algorithm1(n_estimate=32),
            seed=1,
            config=SimulationConfig(engine="scalar"),
            churn_model=model,
        )
        # Joins happened, so the scalar join-id counter advanced past n.
        assert model._next_node_id is not None and model._next_node_id > 32
        model.reset()
        assert model._next_node_id is None

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_model_instance_reuse_is_bit_identical(self, engine):
        """Regression: a reused model must not leak joined ids between runs.

        Before the ``reset()`` lifecycle hook, ``UniformChurn`` kept its
        join-id counter across runs, so the second run on a fresh graph
        handed out wrong node ids and diverged.
        """
        model = UniformChurn(leave_rate=0.02, join_rate=0.1, target_degree=4)
        runs = []
        for _ in range(2):
            result = run_broadcast(
                graph=_graph(n=64, d=4),
                protocol=Algorithm1(n_estimate=64),
                seed=9,
                config=SimulationConfig(engine=engine, collect_round_history=True),
                churn_model=model,
            )
            runs.append(fingerprint(result))
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Scalar vs vectorized statistical parity on the E8 observables
# ---------------------------------------------------------------------------


class TestScalarStatisticalParity:
    def test_e8_observables_agree(self):
        """Same churn regime, both engines: E8 observables within tolerance.

        Membership is represented differently (graph surgery vs tombstoned
        CSR rows), so per-run equality is out of contract; over seeds the
        surviving-informed fraction and round counts must agree.
        """
        graph = _graph(n=256, d=8)
        seeds = list(range(12))
        stats = {}
        for engine in ("scalar", "vectorized"):
            fractions, rounds = [], []
            for seed in seeds:
                result = run_broadcast(
                    graph=graph.copy() if engine == "scalar" else graph,
                    protocol=Algorithm1(n_estimate=256),
                    seed=seed,
                    config=SimulationConfig(engine=engine),
                    churn_model=UniformChurn(
                        leave_rate=0.01, join_rate=0.01, target_degree=8
                    ),
                )
                survivors = result.metadata["final_node_count"]
                fractions.append(result.final_informed / survivors)
                rounds.append(
                    result.rounds_to_completion
                    if result.rounds_to_completion is not None
                    else result.rounds_executed
                )
            stats[engine] = (
                sum(fractions) / len(fractions),
                sum(rounds) / len(rounds),
            )
        scalar_fraction, scalar_rounds = stats["scalar"]
        vector_fraction, vector_rounds = stats["vectorized"]
        # Limited churn leaves algorithm1 near-complete on both engines.
        assert scalar_fraction > 0.95 and vector_fraction > 0.95
        assert abs(scalar_fraction - vector_fraction) < 0.05
        assert abs(scalar_rounds - vector_rounds) <= 3.0

    def test_churn_metadata_counters_present(self):
        result = run_broadcast(
            graph=_graph(n=128),
            protocol=Algorithm1(n_estimate=128),
            seed=2,
            config=SimulationConfig(engine="vectorized"),
            churn_model=CHURN_FACTORIES["uniform"](),
        )
        churn = result.metadata["churn"]
        assert set(churn) >= {"departures", "arrivals", "node_compactions"}
        assert churn["departures"] >= 0 and churn["arrivals"] >= 0
        assert result.metadata["final_node_count"] == (
            128 - churn["departures"] + churn["arrivals"]
        )


# ---------------------------------------------------------------------------
# ScenarioSpec integration: serial / parallel / resumed / faulted
# ---------------------------------------------------------------------------

SPEC_DATA = {
    "schema": "repro.scenario/1",
    "name": "churn-parity",
    "graph": {
        "family": "connected-random-regular",
        "params": {"n": 64, "d": 4},
        "instance": 0,
    },
    "protocol": {"name": "algorithm1", "params": {}, "n_estimate": None},
    "failure": {"model": "reliable", "params": {}},
    "churn": {
        "model": "uniform",
        "params": {"leave_rate": 0.02, "join_rate": 0.02, "target_degree": 4},
    },
    "sweep": {
        "axes": [
            {
                "path": "churn.params.leave_rate",
                "values": [0.0, 0.02, 0.05],
                "key": "leave_rate",
            }
        ]
    },
    "repetitions": 2,
    "master_seed": 77,
    "label": "churn-{leave_rate}",
}


class TestChurnSpecParity:
    @pytest.fixture(scope="class")
    def serial_table(self):
        return run_spec(ScenarioSpec.from_dict(SPEC_DATA)).to_table()

    def _tables_equal(self, left, right):
        return (
            left.title == right.title
            and left.columns == right.columns
            and left.rows == right.rows
            and left.notes == right.notes
        )

    def test_two_workers_match_serial(self, serial_table):
        parallel = run_spec(
            ScenarioSpec.from_dict(SPEC_DATA), workers=2
        ).to_table()
        assert self._tables_equal(serial_table, parallel)

    def test_checkpoint_resume_matches_serial(self, serial_table):
        spec = ScenarioSpec.from_dict(SPEC_DATA)
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            # First pass runs only the first point, then a resumed full run
            # must pick up the checkpoint and finish identically.
            run_spec(spec, points=[0], checkpoint_dir=checkpoint_dir)
            resumed = run_spec(
                spec, checkpoint_dir=checkpoint_dir, resume=True
            ).to_table()
        assert self._tables_equal(serial_table, resumed)

    def test_worker_kill_fault_plan_matches_serial(self, serial_table):
        from repro.dist import RetryPolicy
        from repro.faultinject import bundled_plans

        spec = ScenarioSpec.from_dict(SPEC_DATA)
        point_count = spec.sweep.size
        plan = bundled_plans(point_count, stall_duration=8.0)["worker-kill"]
        retry = RetryPolicy(
            max_attempts=3,
            backoff_seconds=0.01,
            backoff_max_seconds=0.1,
            timeout_seconds=30.0,
        )
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            chaos = run_spec(
                spec,
                workers=2,
                retry=retry,
                fault_plan=plan,
                checkpoint_dir=checkpoint_dir,
            )
        table = chaos.to_table()
        assert table.metadata["distributed"]["failures"] == []
        assert self._tables_equal(serial_table, table)
